#!/usr/bin/env python3
"""Models@runtime: reflectively evolving a live middleware platform.

The paper leverages "the models@runtime approach, so that application
models can be reflectively modified at runtime with immediate effect"
(Sec. III) — and the middleware itself is a model too.  This example
shows both loops on a running CVM:

* application-level: checkout/edit/submit of the running CML model,
* middleware-level: ``Platform.reflect()`` returns the live middleware
  model; edits (here: a new procedure + a policy preferring it) are
  applied with immediate effect, changing how subsequent commands
  execute — without restarting anything.

Run:  python examples/reflection_models_at_runtime.py
"""

from repro.domains.communication import CmlBuilder, build_cvm
from repro.middleware.metamodel import dumps_json_attr
from repro.sim.network import CommService


def main() -> None:
    service = CommService("net0")
    cvm = build_cvm(service=service, default_case="intent")
    controller = cvm.controller

    # a running application model
    builder = CmlBuilder("support")
    agent = builder.person("agent", role="initiator")
    caller = builder.person("caller")
    call = builder.connection("line1", [agent, caller], media=["audio"])
    cvm.run_model(builder.build())
    print(f"call up; transports available: "
          f"{[p.name for p in controller.repository.candidates_for('comm.stream.transport')]}")

    # ------------------------------------------------------------------
    # middleware-level reflection: add a brand-new transport procedure
    # and a policy that prefers it, while the platform keeps running.
    # ------------------------------------------------------------------
    print("\n-- reflect: install a 'transport_mirrored' procedure "
          "and a policy preferring it --")
    edited = cvm.reflect()
    controller_def = edited.objects_by_class("ControllerLayerDef")[0]

    procedure = edited.create(
        "ProcedureDef",
        name="transport_mirrored",
        classifier="comm.stream.transport",
        description="opens the stream twice for hot-standby mirroring",
    )
    procedure.attributesJson = dumps_json_attr(
        {"cost": 4.0, "reliability": 0.9999, "mirrored": True}
    )
    unit = edited.create("UnitDef", name="main")
    for operands in (
        {"api": "ncb.open_stream",
         "args_expr": {"connection": "connection", "medium": "medium",
                       "kind": "kind", "quality": "quality"},
         "result": "stream"},
        {"api": "ncb.open_stream",
         "args_expr": {"connection": "connection",
                       "medium": "medium + '-mirror'",
                       "kind": "kind", "quality": "'low'"},
         "result": "mirror"},
    ):
        unit.instructions.append(
            edited.create("InstructionDef", opcode="BROKER",
                          operandsJson=dumps_json_attr(operands))
        )
    unit.instructions.append(
        edited.create("InstructionDef", opcode="RETURN",
                      operandsJson=dumps_json_attr({"expr": "stream"}))
    )
    procedure.units.append(unit)
    controller_def.procedures.append(procedure)

    policy = edited.create(
        "PolicyDef", name="prefer-mirrored",
        condition="mirroring == 'on'", appliesTo="comm.stream",
        priority=20,
    )
    policy.weightsJson = dumps_json_attr({"mirrored": 1000.0})
    controller_def.policies.append(policy)

    applied = cvm.apply_reflection(edited)
    print(f"  applied: {applied}")
    print(f"  transports now: "
          f"{[p.name for p in controller.repository.candidates_for('comm.stream.transport')]}")

    # ------------------------------------------------------------------
    # immediate effect: with mirroring on, new streams open twice.
    # ------------------------------------------------------------------
    print("\n-- application edit with mirroring ON --")
    controller.context.set("mirroring", "on")
    app_edit = cvm.ui.checkout()
    app_edit.by_id(call.id).media.append(app_edit.create("Medium", kind="video"))
    marker = len(service.op_log)
    cvm.ui.submit(cvm.ui.put_model(app_edit))
    print(f"  service ops: {service.op_log[marker:]}")
    session = next(iter(service.sessions.values()))
    print(f"  live streams: "
          f"{sorted((m.medium, m.quality) for m in session.streams.values())}")

    print("\n-- and with mirroring OFF, back to a single open --")
    controller.context.set("mirroring", "off")
    app_edit = cvm.ui.checkout()
    video_call = app_edit.by_id(call.id)
    video_call.media.append(app_edit.create("Medium", kind="text"))
    marker = len(service.op_log)
    cvm.ui.submit(cvm.ui.put_model(app_edit))
    print(f"  service ops: {service.op_log[marker:]}")

    cvm.stop()
    print("\nreflection example complete")


if __name__ == "__main__":
    main()
