#!/usr/bin/env python3
"""Communication domain (CML/CVM): an evolving conference call.

Demonstrates the paper's flagship case study (Sec. IV-A): CML models
interpreted by the CVM, with mid-call reconfiguration, policy-driven
transport adaptation under a degrading network, and autonomic failure
recovery at the Broker layer.

Run:  python examples/communication_conference.py
"""

from repro.domains.communication import CmlBuilder, build_cvm, parse_cml
from repro.sim.network import CommService


def main() -> None:
    service = CommService("net0")
    cvm = build_cvm(service=service)
    print(f"CVM up: {cvm.layer_names()}  (UCI/SE/UCM/NCB)")

    # -- establish a conference from a CML model -----------------------
    print("\n-- establish the conference --")
    builder = CmlBuilder("design-review")
    alice = builder.person("alice", role="initiator")
    bob = builder.person("bob")
    carol = builder.person("carol")
    call = builder.connection(
        "review", [alice, bob, carol], media=["audio", ("video", "high")]
    )
    result = cvm.run_model(builder.build())
    print(f"  commands: {result.script.operations()}")
    print(f"  service ops: {service.op_log}")

    # -- mid-call reconfiguration: drop video quality, add screen-share --
    print("\n-- degrade video, share a file stream --")
    edited = cvm.ui.checkout()
    for medium in edited.by_id(call.id).media:
        if medium.kind == "video":
            medium.quality = "low"
    edited.by_id(call.id).media.append(edited.create("Medium", kind="file"))
    cvm.ui.submit(cvm.ui.put_model(edited))
    session = next(iter(service.sessions.values()))
    print(f"  live streams: "
          f"{sorted((m.medium, m.quality) for m in session.streams.values())}")

    # -- network degrades: the reliable transport path takes over ------
    print("\n-- poor network: adaptive transport via dynamic IMs --")
    cvm.controller.context.set("adaptation_mode", "dynamic")
    cvm.controller.context.set("network_quality", "poor")
    edited = cvm.ui.checkout()
    edited.by_id(call.id).media.append(edited.create("Medium", kind="text"))
    marker = len(service.op_log)
    cvm.ui.submit(cvm.ui.put_model(edited))
    print(f"  service ops for this change: {service.op_log[marker:]} "
          f"(probe-first = reliable transport)")
    stats = cvm.controller.generator.stats
    print(f"  IM generator: {stats.generated} generated, "
          f"{stats.cache_hits} cache hits")

    # -- failure injection: the autonomic manager recovers -------------
    print("\n-- session failure and autonomic recovery --")
    session_id = next(iter(service.sessions))
    service.inject_failure(session_id)
    print(f"  session state after failure event: "
          f"{service.sessions[session_id].state}")
    print(f"  broker recoveries: {cvm.broker.state.get('recoveries')}")

    # -- a second scenario from the textual syntax ---------------------
    print("\n-- a second call, written in CML text --")
    cvm.ui.parse(
        """
        scenario support-call
        person dave initiator
        person erin
        connection help dave erin : audio text
        """,
        name="support-call",
    )
    # note: submitting a *different* schema replaces the running model,
    # so the review call tears down and the support call comes up
    result = cvm.ui.submit("support-call")
    print(f"  commands: {result.script.operations()}")

    print(f"\nfinal stats: {cvm.stats()}")
    cvm.stop()
    print("conference example complete")


if __name__ == "__main__":
    main()
