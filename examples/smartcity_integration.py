#!/usr/bin/env python3
"""Smart-city integration: three domain middlewares, bridged.

The paper's opening motivation (Sec. II) is that smart-city sub-systems
— each with its own domain-specific middleware — must integrate into "a
larger smart cities picture".  This example runs three MD-DSM platforms
side by side and wires them with runtime connectors
(:class:`~repro.middleware.bridge.PlatformBridge`, the Sec. VIII
interoperability mechanism):

* a **smart building** (2SVM) managing doors, lamps and badges,
* a **microgrid** (MGridVM) powering the building,
* a **communication** platform (CVM) for operations calls.

Bridges (pure data, installed at runtime):

1. grid overload  ->  building enters power-save (lights dim),
2. after-hours badge entry  ->  a security call is established.

Run:  python examples/smartcity_integration.py
"""

from repro.domains.communication import build_cvm
from repro.domains.microgrid import MGridBuilder, build_mgridvm
from repro.domains.smartspace import SpaceBuilder, TwoSVM
from repro.middleware.bridge import PlatformBridge
from repro.sim.network import CommService
from repro.sim.plant import PlantController


def main() -> None:
    # -- the three platforms -------------------------------------------
    building = TwoSVM(["lobby"])
    space_model = SpaceBuilder("hq")
    space_model.smart_object("lobby-lamp", kind="lamp", node="lobby",
                             settings={"light": 90})
    space_model.smart_object("front-door", kind="door", node="lobby",
                             settings={"locked": False})
    space_model.smart_object("guest-badge", kind="badge", node="lobby")
    building.run_model(space_model.build())

    plant = PlantController("plant0", grid_import_limit=800.0)
    grid = build_mgridvm(plant=plant)
    grid_model = MGridBuilder("hq-grid", grid_import_limit=800.0)
    grid_model.device("hvac", "load", 1500.0, mode="on", priority=1)
    grid_model.device("servers", "load", 400.0, mode="on", priority=9)
    grid_model.device("solar", "generator", 600.0, mode="on")
    grid.run_model(grid_model.build())

    comm_service = CommService("net0")
    comms = build_cvm(service=comm_service)

    print("platforms up:")
    print(f"  building: {building.nodes['lobby'].layer_names()} (per node)")
    print(f"  grid:     {grid.layer_names()}")
    print(f"  comms:    {comms.layer_names()}")

    # -- bridges (runtime connectors, Sec. VIII) -------------------------
    grid_to_building = PlatformBridge(
        grid, building.nodes["lobby"], name="grid->building"
    )
    grid_to_building.rule(
        "power-save-lighting",
        "resource.plant0.overload",
        {"operation": "ss.object.configure",
         "args": {"object": "lobby-lamp", "capability": "light", "value": 20}},
    ).start()

    building_to_comms = PlatformBridge(
        building.nodes["lobby"], comms, name="building->comms"
    )
    building_to_comms.rule(
        "after-hours-security-call",
        "resource.space0.object_entered",
        {"operation": "comm.session.establish",
         "args_expr": {"connection": "'security-' + object"}},
        guard="kind == 'badge'",
        dedup_expr="object",
    ).start()
    print("\nbridges installed:")
    print(f"  {grid_to_building}")
    print(f"  {building_to_comms}")

    # -- scenario ------------------------------------------------------------
    print("\n-- evening: the grid overloads --")
    print(f"  lamp before: "
          f"{building.read_object('lobby-lamp')['capabilities']}")
    plant.op_tick()   # overload: autonomic shed in the grid + bridge rule
    print(f"  grid mitigations: "
          f"{grid.broker.state.get('overload_mitigations')}")
    print(f"  lamp after power-save bridge: "
          f"{building.read_object('lobby-lamp')['capabilities']}")

    print("\n-- later: a badge enters the lobby --")
    building.object_enters("guest-badge")
    print(f"  security sessions: "
          f"{[s.initiator for s in comm_service.sessions.values()]}")
    print(f"  bridge stats: {building_to_comms.stats()}")

    print("\n-- the badge re-enters: deduplicated, no second call --")
    building.object_leaves("guest-badge")
    building.object_enters("guest-badge")
    print(f"  security sessions: {len(comm_service.sessions)}")

    building.stop(); grid.stop(); comms.stop()
    print("\nsmart-city integration example complete")


if __name__ == "__main__":
    main()
