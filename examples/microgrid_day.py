#!/usr/bin/env python3
"""Microgrid domain (MGridML/MGridVM): a day in a smart home.

Demonstrates the second case study (paper Sec. IV-B): an MGridML model
drives the plant configuration; the autonomic manager handles an
overload; and the Case 2 balancing variability point (shed load vs
dispatch storage) flips with the household's comfort preference.

Run:  python examples/microgrid_day.py
"""

from repro.domains.microgrid import MGridBuilder, build_mgridvm
from repro.middleware.synthesis.scripts import Command
from repro.sim.plant import PlantController


def show_balance(plant: PlantController, label: str) -> None:
    balance = plant.op_read_balance()
    print(f"  [{label}] supply={balance['supply']:.0f}W "
          f"demand={balance['demand']:.0f}W "
          f"grid-import={balance['grid_import']:.0f}W")


def main() -> None:
    plant = PlantController("plant0", grid_import_limit=1200.0)
    vm = build_mgridvm(plant=plant)
    print(f"MGridVM up: {vm.layer_names()}  (MUI/MSE/MCM/MHB)")

    # -- morning: configure the home from a model ----------------------
    print("\n-- morning: apply the home configuration model --")
    builder = MGridBuilder("home", grid_import_limit=1200.0)
    builder.device("heat-pump", "load", 800.0, mode="on", priority=2)
    builder.device("fridge", "load", 300.0, mode="on", priority=9)
    ev = builder.device("ev-charger", "load", 3000.0, mode="off", priority=1)
    builder.device("solar", "generator", 1500.0, mode="on")
    battery = builder.device("battery", "storage", 1000.0, mode="charging")
    builder.policy("peak-cap", "peak_shaving", threshold=1200.0)
    result = vm.run_model(builder.build())
    print(f"  commands: {len(result.script)} "
          f"({sorted(set(result.script.operations()))})")
    show_balance(plant, "morning")

    # charge the battery for a few hours
    for _ in range(3):
        plant.op_tick()
    print(f"  battery charged to {plant.devices['battery'].energy:.0f} Wh")

    # -- evening: EV plugs in, the plant overloads ----------------------
    print("\n-- evening: EV charging causes an overload --")
    edited = vm.ui.checkout()
    edited.by_id(ev.id).mode = "on"
    edited.by_id(battery.id).mode = "standby"
    vm.ui.submit(vm.ui.put_model(edited))
    show_balance(plant, "before tick")
    plant.op_tick()   # the overload event fires -> autonomic shed
    show_balance(plant, "after autonomic mitigation")
    print(f"  autonomic mitigations: "
          f"{vm.broker.state.get('overload_mitigations')}")
    print(f"  ev-charger (shed priority 1): "
          f"{plant.devices['ev-charger'].mode}")
    print(f"  heat-pump (priority 2): {plant.devices['heat-pump'].mode}")

    # -- the balancing variability point --------------------------------
    print("\n-- explicit rebalancing: economy vs comfort households --")
    # economy household (default): shed load
    vm.controller.execute_command(Command("grid.balance"))
    print(f"  economy: sheds={vm.broker.state.get('sheds')} "
          f"storage-dispatches={vm.broker.state.get('storage_dispatches')}")
    # comfort household: dispatch the battery instead
    vm.controller.context.set("household_preference", "comfort")
    vm.controller.execute_command(Command("grid.balance"))
    print(f"  comfort: sheds={vm.broker.state.get('sheds')} "
          f"storage-dispatches={vm.broker.state.get('storage_dispatches')}")
    print(f"  battery mode: {plant.devices['battery'].mode}")

    print(f"\nfinal stats: {vm.stats()}")
    vm.stop()
    print("microgrid example complete")


if __name__ == "__main__":
    main()
