#!/usr/bin/env python3
"""Crowdsensing domain (CSML/CSVM): a city air-quality campaign.

Demonstrates the fourth case study (paper Sec. IV-D): sensing queries
as models, dynamically interpreted to drive acquisition across a
device fleet; *on-the-fly* changes to a long-running query; and the
adaptive gathering variability point (full sweeps vs battery-friendly
sampling) flipping with fleet state.

Run:  python examples/crowdsensing_campaign.py
"""

from repro.domains.crowdsensing import CSVM, QueryBuilder
from repro.modeling.serialize import clone_model
from repro.sim.fleet import DeviceFleet


def main() -> None:
    fleet = DeviceFleet("fleet0")
    for index in range(20):
        fleet.op_register_device(
            f"phone-{index:02d}",
            region="downtown" if index < 12 else "suburbs",
        )
    provider = CSVM(fleet=fleet)
    print(f"CSVM provider up: {provider.platform.layer_names()} "
          f"(no UI — models arrive from devices, Sec. IV-D)")

    # -- a device submits the campaign model ---------------------------
    print("\n-- campaign model arrives from a device --")
    builder = QueryBuilder("air-quality")
    temperature = builder.query(
        "downtown-temp", "temperature", region="downtown", aggregate="mean"
    )
    noise = builder.query("city-noise", "noise", aggregate="max")
    campaign_v1 = builder.build()
    result = provider.submit_model(campaign_v1)
    print(f"  commands: {result.script.operations()}")
    print(f"  devices on downtown-temp: "
          f"{sum(1 for d in fleet.devices.values() if temperature.id in d.active_tasks)}")

    # -- collection rounds ------------------------------------------------
    print("\n-- collection rounds (Case 2: dynamic IMs per aggregate) --")
    for _ in range(3):
        mean_temp = provider.collect(temperature)
        max_noise = provider.collect(noise)
        print(f"  downtown mean temp {mean_temp:5.2f} C | "
              f"city max noise {max_noise:5.2f} dB")

    # -- on-the-fly query update -----------------------------------------
    print("\n-- on-the-fly change: temp query switches to noise, "
          "battery floor raised --")
    campaign_v2 = clone_model(campaign_v1)
    campaign_v2.by_id(temperature.id).sensor = "noise"
    campaign_v2.by_id(temperature.id).minBattery = 40.0
    result = provider.submit_model(campaign_v2)
    print(f"  commands: {result.script.operations()}")
    print(f"  round after update: {provider.collect(temperature.id):5.2f}")

    # -- fleet battery collapses: adaptive gathering ----------------------
    print("\n-- fleet battery collapses: battery-friendly sampling --")
    # demonstrate with a count query so the sampling effect is visible
    campaign_v3 = clone_model(campaign_v2)
    counter = campaign_v3.create(
        "SensingQuery", name="coverage", sensor="gps", aggregate="count"
    )
    campaign_v3.roots[0].queries.append(counter)
    provider.submit_model(campaign_v3)
    full_coverage = provider.collect(counter.id)
    provider.platform.controller.context.set("coverage_mode", "eco")
    provider.platform.controller.context.set("fleet_battery", 12.0)
    eco_coverage = provider.collect(counter.id)
    print(f"  readings per round: {full_coverage:.0f} (full sweep) -> "
          f"{eco_coverage:.0f} (sampled)")

    # -- pause the campaign ------------------------------------------------
    print("\n-- pause the noisy query --")
    campaign_v4 = clone_model(campaign_v3)
    campaign_v4.by_id(noise.id).active = False
    result = provider.submit_model(campaign_v4)
    print(f"  commands: {result.script.operations()}")

    generator = provider.platform.controller.generator
    print(f"\nIM generator stats: requests={generator.stats.requests} "
          f"cache-hits={generator.stats.cache_hits} "
          f"generated={generator.stats.generated}")
    print(f"results recorded per task: "
          f"{ {task: len(values) for task, values in provider.results.items()} }")
    provider.stop()
    print("crowdsensing example complete")


if __name__ == "__main__":
    main()
