#!/usr/bin/env python3
"""Quickstart: build a domain-specific middleware platform from a model.

This walks the complete MD-DSM loop for a deliberately tiny domain —
smart irrigation — in one file:

1. define the application-level DSML (a metamodel),
2. describe the middleware *as a model* (instance of the shared,
   domain-independent middleware metamodel),
3. load the middleware model into a running platform over a simulated
   resource,
4. execute application models: submit, edit, resubmit, tear down.

Run:  python examples/quickstart.py
"""

from repro.middleware import DomainKnowledge, MiddlewareModelBuilder, load_platform
from repro.middleware.broker.resource import CallableResource
from repro.modeling import Metamodel, Model


def build_dsml() -> Metamodel:
    """Step 1 — the Irrigation Modeling Language (IrrML)."""
    irrml = Metamodel("irrml")
    garden = irrml.new_class("Garden")
    garden.attribute("name", "string", required=True)
    garden.reference("zones", "Zone", containment=True, many=True)
    zone = irrml.new_class("Zone")
    zone.attribute("name", "string", required=True)
    zone.attribute("litersPerHour", "float", default=2.0)
    zone.attribute("active", "bool", default=True)
    return irrml.resolve()


def build_middleware_model() -> Model:
    """Step 2 — the middleware, described as a model.

    The same metamodel (``repro.middleware.middleware_metamodel()``)
    describes the CVM, MGridVM, 2SVM and CSVM; here it describes a
    two-command irrigation platform.
    """
    builder = MiddlewareModelBuilder("irrigation-mw", "irrigation")
    builder.ui_layer()

    # Synthesis: how IrrML model changes become commands (an LTS per class).
    builder.synthesis_layer().rule(
        "Zone",
        states={"watering": False, "idle": False},
        transitions=[
            {"source": "initial", "label": "add", "target": "watering",
             "guard": "active",
             "commands": [{"operation": "zone.start",
                           "args_expr": {"zone": "obj.id",
                                         "rate": "litersPerHour"}}]},
            {"source": "initial", "label": "add", "target": "idle",
             "guard": "not active", "commands": []},
            {"source": "watering", "label": "set:litersPerHour",
             "target": "watering",
             "commands": [{"operation": "zone.adjust",
                           "args_expr": {"zone": "object_id", "rate": "new"}}]},
            {"source": "watering", "label": "set:active", "target": "idle",
             "guard": "not new",
             "commands": [{"operation": "zone.stop",
                           "args_expr": {"zone": "object_id"}}]},
            {"source": "idle", "label": "set:active", "target": "watering",
             "guard": "new",
             "commands": [{"operation": "zone.start",
                           "args_expr": {"zone": "object_id",
                                         "rate": "obj.litersPerHour"}}]},
            {"source": "watering", "label": "remove", "target": "initial",
             "commands": [{"operation": "zone.stop",
                           "args_expr": {"zone": "object_id"}}]},
            {"source": "idle", "label": "remove", "target": "initial",
             "commands": []},
        ],
    )

    # Controller: predefined actions (Case 1) per command.
    controller = builder.controller_layer()
    controller.action("start", "zone.start",
                      [{"api": "valve.open",
                        "args_expr": {"zone": "zone", "rate": "rate"}}])
    controller.action("adjust", "zone.adjust",
                      [{"api": "valve.rate",
                        "args_expr": {"zone": "zone", "rate": "rate"}}])
    controller.action("stop", "zone.stop",
                      [{"api": "valve.close", "args_expr": {"zone": "zone"}}])

    # Broker: map APIs onto the (simulated) valve controller resource.
    broker = builder.broker_layer()
    broker.requires_resource("valves")
    broker.action("open", "valve.open",
                  [{"resource": "valves", "operation": "open",
                    "args_expr": {"zone": "zone", "rate": "rate"}}])
    broker.action("rate", "valve.rate",
                  [{"resource": "valves", "operation": "set_rate",
                    "args_expr": {"zone": "zone", "rate": "rate"}}])
    broker.action("close", "valve.close",
                  [{"resource": "valves", "operation": "close",
                    "args_expr": {"zone": "zone"}}])
    return builder.build()


def main() -> None:
    irrml = build_dsml()

    # Step 3 — a simulated valve controller and the running platform.
    valves: dict[str, float] = {}

    def open_valve(zone: str, rate: float) -> None:
        valves[zone] = rate
        print(f"  [valves] open {zone} at {rate} L/h")

    def set_rate(zone: str, rate: float) -> None:
        valves[zone] = rate
        print(f"  [valves] adjust {zone} to {rate} L/h")

    def close_valve(zone: str) -> None:
        valves.pop(zone, None)
        print(f"  [valves] close {zone}")

    resource = CallableResource(
        "valves",
        {"open": open_valve, "set_rate": set_rate, "close": close_valve},
    )
    platform = load_platform(
        build_middleware_model(),
        DomainKnowledge(dsml=irrml, resources=[resource]),
    )
    print(f"platform up: {platform}")

    # Step 4 — execute an application model.
    print("\n-- submit the initial garden model --")
    garden_model = Model(irrml, name="backyard")
    garden = garden_model.create_root("Garden", name="backyard")
    roses = garden_model.create("Zone", name="roses", litersPerHour=3.0)
    lawn = garden_model.create("Zone", name="lawn", litersPerHour=8.0)
    garden.zones.extend([roses, lawn])
    result = platform.run_model(garden_model)
    print(f"  synthesized: {result.script.operations()}")

    print("\n-- edit the model: lawn off, roses throttled --")
    edited = platform.ui.checkout()   # models@runtime: edit a live copy
    edited.by_id(lawn.id).active = False
    edited.by_id(roses.id).litersPerHour = 1.5
    result = platform.ui.submit(platform.ui.put_model(edited))
    print(f"  synthesized: {result.script.operations()}")

    print("\n-- tear down --")
    platform.teardown_model()
    assert valves == {}, valves

    print(f"\nstats: {platform.stats()}")
    platform.stop()
    print("quickstart complete")


if __name__ == "__main__":
    main()
