#!/usr/bin/env python3
"""Smart spaces domain (2SML/2SVM): a distributed smart office.

Demonstrates the third case study (paper Sec. IV-C) and the
layer-suppression deployment: the central node runs the top layers
(UI + Synthesis) and dispatches synthesized scripts to object nodes
that run only Controller + Broker.  Ubiquitous-application scripts are
installed *at* the objects and fire on asynchronous presence events
without central involvement.

Run:  python examples/smartspace_office.py
"""

from repro.domains.smartspace import SpaceBuilder, TwoSVM


def main() -> None:
    office = TwoSVM(["meeting-room", "lobby"])
    print("2SVM deployment:")
    print(f"  central node layers: {office.central.layer_names()}")
    for node_id, node in office.nodes.items():
        print(f"  object node {node_id!r} layers: {node.layer_names()}")

    # -- the space model -------------------------------------------------
    print("\n-- submit the office model (synthesized centrally, "
          "dispatched per node) --")
    builder = SpaceBuilder("office")
    lamp = builder.smart_object(
        "ceiling-lamp", kind="lamp", node="meeting-room",
        settings={"light": 0},
    )
    blinds = builder.smart_object(
        "blinds", kind="blinds", node="meeting-room",
        settings={"position": "open"},
    )
    door = builder.smart_object(
        "front-door", kind="door", node="lobby",
        settings={"locked": True},
    )
    badge = builder.smart_object("alice-badge", kind="badge", node="lobby")
    builder.user("alice")
    builder.app(
        "arrival", "object_entered",
        [(lamp, "light", 70), (door, "locked", False)],
    )
    builder.app(
        "departure", "object_left",
        [(lamp, "light", 0), (door, "locked", True),
         (blinds, "position", "closed")],
    )
    office.run_model(builder.build())
    dispatched = office.stats()["scripts_dispatched"]
    print(f"  scripts dispatched to nodes: {dispatched}")
    print(f"  meeting-room objects: "
          f"{sorted(office.spaces['meeting-room'].objects)}")
    print(f"  lobby objects: {sorted(office.spaces['lobby'].objects)}")

    # -- presence events fire installed scripts locally -------------------
    print("\n-- alice arrives (badge enters the lobby) --")
    office.object_enters("alice-badge")
    print(f"  lamp: {office.read_object('ceiling-lamp')['capabilities']}")
    print(f"  door: {office.read_object('front-door')['capabilities']}")

    print("\n-- alice leaves --")
    office.object_leaves("alice-badge")
    print(f"  lamp: {office.read_object('ceiling-lamp')['capabilities']}")
    print(f"  door: {office.read_object('front-door')['capabilities']}")
    print(f"  blinds: {office.read_object('blinds')['capabilities']}")

    # -- runtime model edit: retarget the arrival light level -------------
    print("\n-- edit the app: dimmer arrival lighting --")
    edited = office.central.ui.checkout()
    for reaction in edited.objects_by_class("Reaction"):
        if (reaction.container.name == "arrival"
                and reaction.capability == "light"):
            reaction.value = 40
    # reaction value changes re-install the script remotely
    result = office.central.ui.submit(office.central.ui.put_model(edited))
    office.dispatch(result.script)
    office.object_enters("alice-badge")
    print(f"  lamp after edited app fires: "
          f"{office.read_object('ceiling-lamp')['capabilities']}")

    office.stop()
    print("\nsmart-space example complete")


if __name__ == "__main__":
    main()
