"""E1 — model-based vs handcrafted Broker overhead (paper Sec. VII-A).

Paper: "In terms of raw performance, the model-based version spent, on
average, 17 % more time to execute the scenarios than the original
version," over eight multimedia scenarios, excluding middleware-model
load time.

Regenerates: per-scenario timings for both Brokers plus the average
overhead row.  Shape asserted: overhead strictly positive and within a
generous band around the paper's 17 % (5 %–60 % — our substrate is a
simulator, not the authors' testbed).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ResultTable,
    fresh_handcrafted_broker,
    fresh_model_based_broker,
    measure,
)
from repro.bench.workloads import COMMUNICATION_SCENARIOS


def _model_based_runner():
    broker, _service, runner = fresh_model_based_broker()
    return runner


def _handcrafted_runner():
    _broker, _service, runner = fresh_handcrafted_broker()
    return runner


@pytest.mark.parametrize("scenario", sorted(COMMUNICATION_SCENARIOS))
def test_model_based_scenario(benchmark, scenario):
    """Per-scenario latency of the model-based Broker (load excluded)."""
    steps = COMMUNICATION_SCENARIOS[scenario]

    def run():
        # brokers accumulate session state; fresh broker per round,
        # but construction happens outside the timed section via setup
        runner.run(steps)

    def setup():
        nonlocal runner
        runner = _model_based_runner()

    runner = None
    benchmark.group = f"e1-{scenario}"
    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


@pytest.mark.parametrize("scenario", sorted(COMMUNICATION_SCENARIOS))
def test_handcrafted_scenario(benchmark, scenario):
    steps = COMMUNICATION_SCENARIOS[scenario]
    runner = None

    def run():
        runner.run(steps)

    def setup():
        nonlocal runner
        runner = _handcrafted_runner()

    benchmark.group = f"e1-{scenario}"
    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


def test_e1_average_overhead(benchmark, report):
    """The headline number: average model-based overhead across the
    eight-scenario suite."""
    table = ResultTable(
        "E1: Broker overhead, model-based vs handcrafted "
        "(paper: +17 % on average)",
        ["scenario", "model-based ms", "handcrafted ms", "overhead %"],
    )
    overheads = []

    import time

    def timed_runs(factory, steps, repeat=7):
        """Mean scenario latency with broker construction untimed
        (the paper excludes middleware-model load time)."""
        samples = []
        for _ in range(repeat):
            runner = factory()          # untimed: load/setup
            start = time.perf_counter()
            runner.run(steps)
            samples.append(time.perf_counter() - start)
        samples.sort()
        trimmed = samples[:-2] if len(samples) > 4 else samples
        return sum(trimmed) / len(trimmed)

    def run_suite():
        for scenario, steps in COMMUNICATION_SCENARIOS.items():
            model_ms = timed_runs(_model_based_runner, steps) * 1000
            hand_ms = timed_runs(_handcrafted_runner, steps) * 1000
            overhead = 100.0 * (model_ms / hand_ms - 1.0)
            overheads.append(overhead)
            table.add(scenario, model_ms, hand_ms, overhead)

    benchmark.pedantic(run_suite, rounds=1, iterations=1)
    average = sum(overheads) / len(overheads)
    table.add("AVERAGE", "-", "-", average)
    report.append(table)
    # Shape: model-based is consistently slower, in a band around 17 %.
    assert average > 0.0, "model-based Broker should cost more than handcrafted"
    assert 5.0 < average < 60.0, f"overhead {average:.1f}% outside expected band"
