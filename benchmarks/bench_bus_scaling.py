"""Bus routing scaling — indexed routing vs subscriber population.

The PR-1 tentpole replaced the event bus's per-publish linear scan
with a topic index (exact dict + wildcard trie).  This benchmark
asserts the property the index exists for: per-publish routing cost
must not grow with the number of *non-matching* subscriptions, so the
indexed bus beats a linear-scan reference by a growing margin as cold
subscribers are added.

Regenerates: the ``bus_scaling`` rows of ``BENCH_PR1.json``
(``python -m repro.bench.harness``).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable, bus_scaling_bench
from repro.runtime.events import Event, EventBus
from repro.runtime.metrics import MetricsRegistry


def _quiet_bus(cold_subscribers: int) -> EventBus:
    metrics = MetricsRegistry()
    metrics.enabled = False
    bus = EventBus(name="bench", metrics=metrics)
    for i in range(cold_subscribers):
        bus.subscribe(f"cold.topic.{i}", lambda _s: None)
    bus.subscribe("hot.topic", lambda _s: None)
    bus.subscribe("hot.*", lambda _s: None)
    return bus


@pytest.mark.parametrize("cold", [0, 100, 1000])
def test_publish_latency_by_population(benchmark, cold):
    """Per-publish latency with ``cold`` non-matching subscriptions."""
    bus = _quiet_bus(cold)
    signal = Event(topic="hot.topic")
    benchmark(bus.publish, signal)


def test_routing_inspects_only_matches():
    """Candidate count is flat in the cold population."""
    for cold in (0, 100, 1000):
        bus = _quiet_bus(cold)
        assert bus.publish(Event(topic="hot.topic")) == 2
        assert bus.routing_candidates == 2


def test_indexed_bus_scales_better_than_linear_scan():
    """Speedup over the linear-scan reference grows with population.

    Shape asserted: at 1000 subscribers the indexed bus must win by at
    least 5x, and the speedup at 1000 must exceed the speedup at 10
    (the index's advantage grows with the cold population).
    """
    rows = bus_scaling_bench(subscriber_counts=(10, 1000), publishes=500)
    table = ResultTable(
        "bus routing: indexed vs linear scan",
        ["subscribers", "indexed µs", "linear µs", "speedup"],
    )
    by_count = {}
    for row in rows:
        table.add(
            row["subscribers"], row["indexed_us"],
            row["linear_scan_us"], row["speedup"],
        )
        by_count[row["subscribers"]] = row["speedup"]
    table.print()
    assert by_count[1000] >= 5.0
    assert by_count[1000] > by_count[10]
