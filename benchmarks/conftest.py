"""Shared benchmark configuration.

Every module in this directory regenerates one experiment from
EXPERIMENTS.md.  Absolute timings depend on the host; the assertions
check the *shapes* the paper reports (who wins, by roughly what
factor), with generous tolerance bands.
"""

import pytest


@pytest.fixture(scope="session")
def report():
    """Collects result tables and prints them at the end of the run."""
    tables = []
    yield tables
    for table in tables:
        print("\n" + table.render())
