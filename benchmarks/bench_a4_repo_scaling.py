"""A4 (ablation) — IM generation vs repository size and fan-out.

The structure behind E2's amortization: how the cold generation cycle
scales with the size of the procedure repository and the number of
configurations examined, while the cached steady state stays flat.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import ResultTable
from repro.bench.repo_factory import (
    ROOT_CLASSIFIER,
    build_generator,
    build_repository,
)

SIZES = (24, 50, 100, 200, 400)


def _timed(fn, *args, **kwargs) -> float:
    start = time.perf_counter()
    fn(*args, **kwargs)
    return time.perf_counter() - start


@pytest.mark.parametrize("procedures", SIZES)
def test_cold_generation_scaling(benchmark, procedures):
    repository = build_repository(procedures=procedures)
    generator = build_generator(repository)
    benchmark.group = "a4-cold-by-repo-size"
    benchmark(lambda: generator.generate(ROOT_CLASSIFIER, use_cache=False))


def test_a4_scaling_table(benchmark, report):
    rows: list[tuple[int, float, float]] = []

    def run():
        # Floors (min over repetitions) rather than means: additive box
        # noise in any single window would otherwise flip the
        # cold-grows-with-size shape assertion below.
        rows.clear()
        for procedures in SIZES:
            repository = build_repository(procedures=procedures)
            generator = build_generator(repository)
            generator.generate(ROOT_CLASSIFIER, use_cache=False)  # warm
            cold = min(
                _timed(generator.generate, ROOT_CLASSIFIER, use_cache=False)
                for _ in range(5)
            )
            generator.generate(ROOT_CLASSIFIER)  # prime cache
            start = time.perf_counter()
            for _ in range(1000):
                generator.generate(ROOT_CLASSIFIER)
            cached = (time.perf_counter() - start) / 1000
            rows.append((procedures, cold, cached))

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "A4: generation cycle vs repository size",
        ["procedures", "cold ms", "cached ms"],
    )
    for procedures, cold, cached in rows:
        table.add(procedures, cold * 1000, cached * 1000)
    report.append(table)

    colds = [cold for _, cold, _ in rows]
    cacheds = [cached for _, _, cached in rows]
    # cold generation grows with repository size...
    assert colds[-1] > colds[0]
    # ...while the cached steady state stays essentially flat
    assert max(cacheds) < min(colds)
    assert max(cacheds) / min(cacheds) < 10.0


def test_a4_configuration_budget(benchmark, report):
    """More configurations examined -> better selection, higher cold
    cost; the budget caps the trade-off."""
    repository = build_repository(
        procedures=100, candidates_per_classifier=3
    )
    rows: list[tuple[int, float, float]] = []

    def run():
        rows.clear()
        for budget in (1, 4, 16, 64):
            generator = build_generator(
                repository, max_configurations=budget
            )
            start = time.perf_counter()
            for _ in range(5):
                model = generator.generate(ROOT_CLASSIFIER, use_cache=False)
            cold = (time.perf_counter() - start) / 5
            rows.append((budget, cold, model.score))

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "A4b: configuration budget (examined per request)",
        ["budget", "cold ms", "selected score"],
    )
    for budget, cold, score in rows:
        table.add(budget, cold * 1000, score)
    report.append(table)

    # larger budgets never select a worse configuration
    scores = [score for _, _, score in rows]
    assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
