"""E5 — behavioral equivalence of model-based and handcrafted middleware.

Paper Sec. VII-A: "we were able to validate the behavioral equivalence
(in terms of the sequence of commands that were generated for the
underlying resources as a result of model interpretation) of the
model-based implementations of the middleware and their original,
handcrafted, counterparts."

Regenerates: per-scenario resource-command traces from both Broker
implementations (exact equality asserted on every scenario), plus the
whole-suite replay throughput of each implementation.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ResultTable,
    fresh_handcrafted_broker,
    fresh_model_based_broker,
)
from repro.bench.workloads import COMMUNICATION_SCENARIOS


def test_e5_trace_equivalence(benchmark, report):
    table = ResultTable(
        "E5: resource-command trace equivalence across the 8 scenarios",
        ["scenario", "resource ops", "traces equal"],
    )
    mismatches = []

    def verify_all():
        table.rows.clear()
        for scenario, steps in COMMUNICATION_SCENARIOS.items():
            _mb, model_service, model_runner = fresh_model_based_broker()
            _hb, hand_service, hand_runner = fresh_handcrafted_broker()
            model_runner.run(steps)
            hand_runner.run(steps)
            equal = model_service.op_log == hand_service.op_log
            if not equal:
                mismatches.append(
                    (scenario, model_service.op_log, hand_service.op_log)
                )
            table.add(scenario, len(model_service.op_log), equal)

    benchmark.pedantic(verify_all, rounds=1, iterations=1)
    report.append(table)
    assert mismatches == [], f"trace divergence: {mismatches[:1]}"


def test_e5_model_based_suite_replay(benchmark):
    """Throughput of the full suite on the model-based Broker."""
    benchmark.group = "e5-suite-replay"

    def replay():
        _broker, _service, runner = fresh_model_based_broker()
        for steps in COMMUNICATION_SCENARIOS.values():
            runner.run(steps)

    benchmark.pedantic(replay, rounds=3, iterations=1)


def test_e5_handcrafted_suite_replay(benchmark):
    benchmark.group = "e5-suite-replay"

    def replay():
        _broker, _service, runner = fresh_handcrafted_broker()
        for steps in COMMUNICATION_SCENARIOS.values():
            runner.run(steps)

    benchmark.pedantic(replay, rounds=3, iterations=1)


def test_e5_state_equivalence(benchmark):
    """Beyond traces: the resulting service states agree too."""

    def verify():
        for steps in COMMUNICATION_SCENARIOS.values():
            _mb, model_service, model_runner = fresh_model_based_broker()
            _hb, hand_service, hand_runner = fresh_handcrafted_broker()
            model_runner.run(steps)
            hand_runner.run(steps)
            model_state = sorted(
                (s.state, len(s.parties), len(s.streams))
                for s in model_service.sessions.values()
            )
            hand_state = sorted(
                (s.state, len(s.parties), len(s.streams))
                for s in hand_service.sessions.values()
            )
            assert model_state == hand_state

    benchmark.pedantic(verify, rounds=1, iterations=1)
