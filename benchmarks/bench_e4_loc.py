"""E4 — code-size reduction from DSK/MoE separation (paper Sec. VII-B).

Paper: "due to the separation of domain-specific concerns, we were
able to achieve a reduction in lines of code (from 1402 to 1176)" —
a 16.1 % reduction in the *domain-specific* artifact.

Regenerates: the size comparison between the handcrafted communication
middleware (monolithic synthesis + monolithic controller/broker +
handcrafted NCB) and the model-based DSK module replacing them.

Metric note: the paper counted Java LoC, where statements ≈ physical
lines.  Our DSK is declarative Python data formatted one-key-per-line,
so physical LoC penalizes it for formatting; the formatting-independent
*significant-token* count is the faithful cross-language analog and is
the metric asserted.  Both are reported.
"""

from __future__ import annotations

from repro.bench.harness import ResultTable
from repro.bench.loc import loc_report


def test_e4_loc_reduction(benchmark, report):
    result = benchmark(loc_report)

    table = ResultTable(
        "E4: domain-specific artifact size (paper: 1402 -> 1176 LoC, "
        "-16.1 %)",
        ["metric", "handcrafted", "model-based DSK", "reduction %"],
    )
    loc_pct = 100.0 * result["reduction_loc"] / result["handcrafted_loc"]
    tok_pct = 100.0 * result["reduction_tokens"] / result["handcrafted_tokens"]
    table.add("physical LoC", result["handcrafted_loc"],
              result["model_based_loc"], loc_pct)
    table.add("significant tokens", result["handcrafted_tokens"],
              result["model_based_tokens"], tok_pct)
    report.append(table)

    # Shape: the separated, model-based domain artifact is smaller than
    # the monolith on the formatting-independent metric, by a margin in
    # the paper's ballpark (paper: 16.1 %).
    assert result["reduction_tokens"] > 0
    assert 5.0 < tok_pct < 40.0, f"token reduction {tok_pct:.1f}% off-band"


def test_e4_engine_is_amortized_across_domains(benchmark, report):
    """The mechanism behind the reduction: the dispatch/selection
    machinery lives in shared engine code, written once.  Adding a
    domain costs only its DSK; the handcrafted approach re-pays the
    machinery each time."""
    import repro.domains.communication.dsk as comm_dsk
    import repro.domains.crowdsensing.dsk as cs_dsk
    import repro.domains.microgrid.dsk as grid_dsk
    import repro.domains.smartspace.dsk as ss_dsk
    import repro.middleware.broker.actions
    import repro.middleware.broker.autonomic
    import repro.middleware.broker.layer
    import repro.middleware.broker.resource
    import repro.middleware.broker.state
    import repro.middleware.controller.dsc
    import repro.middleware.controller.handlers
    import repro.middleware.controller.intent
    import repro.middleware.controller.layer
    import repro.middleware.controller.policy
    import repro.middleware.controller.procedure
    import repro.middleware.controller.stackmachine
    from repro.bench.loc import count_module_tokens

    def compute():
        engine_modules = [
            repro.middleware.controller.dsc,
            repro.middleware.controller.procedure,
            repro.middleware.controller.intent,
            repro.middleware.controller.stackmachine,
            repro.middleware.controller.handlers,
            repro.middleware.controller.policy,
            repro.middleware.controller.layer,
            repro.middleware.broker.actions,
            repro.middleware.broker.autonomic,
            repro.middleware.broker.layer,
            repro.middleware.broker.resource,
            repro.middleware.broker.state,
        ]
        engine = sum(count_module_tokens(m) for m in engine_modules)
        dsks = {
            "communication": count_module_tokens(comm_dsk),
            "microgrid": count_module_tokens(grid_dsk),
            "smartspace": count_module_tokens(ss_dsk),
            "crowdsensing": count_module_tokens(cs_dsk),
        }
        return engine, dsks

    engine, dsks = benchmark(compute)
    table = ResultTable(
        "E4b: shared engine vs per-domain DSK (tokens)",
        ["artifact", "tokens"],
    )
    table.add("shared engine (written once)", engine)
    for domain, tokens in dsks.items():
        table.add(f"DSK: {domain}", tokens)
    report.append(table)
    # every DSK is far smaller than the engine it reuses
    assert all(tokens < engine / 2 for tokens in dsks.values())
