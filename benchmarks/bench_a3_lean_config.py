"""A3 (ablation) — leaner middleware-model configurations.

Paper Sec. VII-A: "The flexibility of the model-based approach would
enable us to model leaner configurations for each of the layers,
featuring only the strictly required components, thus contributing to
compensate for the extra overhead."

Regenerates: the eight-scenario suite on the full model-based Broker
vs a lean configuration (autonomic manager and state snapshots
disabled in the middleware model).  Shape asserted: lean is at least
as fast and narrows the gap to the handcrafted baseline.
"""

from __future__ import annotations

import time

from repro.bench.harness import (
    ResultTable,
    ScenarioRunner,
    fresh_handcrafted_broker,
    fresh_model_based_broker,
)
from repro.bench.workloads import COMMUNICATION_SCENARIOS

#: The failure-recovery scenario needs the autonomic path disabled for
#: an apples-to-apples run (recovery is an explicit step in E1 anyway).
SUITE = {
    name: steps for name, steps in COMMUNICATION_SCENARIOS.items()
}


def _suite_time(factory, repeat: int = 7) -> float:
    # Noise-floor estimator (see harness.e1_paired_bench): timing noise
    # on a shared box is strictly additive, so the minimum converges on
    # the true suite cost where a trimmed mean still tracks neighbours.
    samples = []
    for _ in range(repeat):
        _broker, _service, runner = factory()
        start = time.perf_counter()
        for steps in SUITE.values():
            runner.run(steps)
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_full_config_suite(benchmark):
    benchmark.group = "a3-suite"

    def run():
        _b, _s, runner = fresh_model_based_broker(lean=False)
        for steps in SUITE.values():
            runner.run(steps)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_lean_config_suite(benchmark):
    benchmark.group = "a3-suite"

    def run():
        _b, _s, runner = fresh_model_based_broker(lean=True)
        for steps in SUITE.values():
            runner.run(steps)

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_a3_lean_narrows_the_gap(benchmark, report):
    results: dict[str, float] = {}

    def run():
        results["full"] = _suite_time(lambda: fresh_model_based_broker(lean=False))
        results["lean"] = _suite_time(lambda: fresh_model_based_broker(lean=True))
        results["hand"] = _suite_time(fresh_handcrafted_broker)

    benchmark.pedantic(run, rounds=1, iterations=1)

    full_overhead = 100.0 * (results["full"] / results["hand"] - 1.0)
    lean_overhead = 100.0 * (results["lean"] / results["hand"] - 1.0)
    table = ResultTable(
        "A3: lean middleware-model configuration "
        "(paper: leaner configs compensate the overhead)",
        ["configuration", "suite ms", "overhead vs handcrafted %"],
    )
    table.add("model-based (full managers)", results["full"] * 1000,
              full_overhead)
    table.add("model-based (lean)", results["lean"] * 1000, lean_overhead)
    table.add("handcrafted", results["hand"] * 1000, 0.0)
    report.append(table)

    # Shape: lean <= full (it does strictly less per call), and the
    # remaining overhead stays positive (flexibility is not free).
    assert results["lean"] <= results["full"] * 1.05
    assert lean_overhead > 0.0
