"""E2 — Intent Model generation cycle time (paper Sec. VII-B).

Paper: with "metadata of 100 curated procedures aimed at achieving
optimum dependency matching ... the Controller layer was able to
complete a full generation cycle (IM generation, validation, and
selection) in under 120 ms, with the average cycle time quickly
approaching 1 ms as we approached 100 000 cycles."

Regenerates: the cold-cycle latency and the amortized-average series
over N in {1, 10, 1k, 10k, 100k}.  Shape asserted: cold < 120 ms;
average at 100 000 cycles below 1 ms and monotonically non-increasing.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import ResultTable
from repro.bench.repo_factory import ROOT_CLASSIFIER, build_generator, build_repository


@pytest.fixture(scope="module")
def repository():
    return build_repository(procedures=100)


def test_cold_generation_cycle(benchmark, repository):
    """One full cycle (generation, validation, selection), cache off."""
    generator = build_generator(repository)

    result = benchmark(
        lambda: generator.generate(ROOT_CLASSIFIER, use_cache=False)
    )
    assert result.size() >= 1


def test_cached_generation_cycle(benchmark, repository):
    """Steady-state cycle (cache hit) — the 100k-cycle regime."""
    generator = build_generator(repository)
    generator.generate(ROOT_CLASSIFIER)  # warm the cache

    result = benchmark(lambda: generator.generate(ROOT_CLASSIFIER))
    assert result.from_cache


def test_e2_amortization_series(benchmark, report):
    """The paper's series: average cycle time vs number of cycles."""
    repository = build_repository(procedures=100)
    table = ResultTable(
        "E2: IM generation amortization, 100-procedure repository "
        "(paper: cold < 120 ms, avg -> ~1 ms at 100k cycles)",
        ["cycles", "avg ms/cycle", "hit rate"],
    )
    averages: dict[int, float] = {}

    def run_series():
        for cycles in (1, 10, 1_000, 10_000, 100_000):
            generator = build_generator(repository)
            start = time.perf_counter()
            for _ in range(cycles):
                generator.generate(ROOT_CLASSIFIER)
            elapsed = time.perf_counter() - start
            averages[cycles] = elapsed / cycles * 1000
            table.add(cycles, averages[cycles], generator.stats.hit_rate)

    benchmark.pedantic(run_series, rounds=1, iterations=1)
    report.append(table)

    cold_ms = averages[1]
    assert cold_ms < 120.0, f"cold cycle {cold_ms:.1f} ms exceeds paper bound"
    assert averages[100_000] < 1.0, "amortized average should be sub-1ms"
    series = [averages[n] for n in (1, 10, 1_000, 10_000, 100_000)]
    assert all(
        later <= earlier * 1.5  # tolerate timer noise between large Ns
        for earlier, later in zip(series, series[1:])
    ), f"amortized averages should be non-increasing: {series}"
    assert averages[100_000] < cold_ms


def test_e2_context_churn_still_amortizes(benchmark, report):
    """With periodic context changes (every 100 cycles) the cache keeps
    most of the benefit — the regime real deployments see."""
    from repro.middleware.controller.policy import Policy

    repository = build_repository(procedures=100)
    generator = build_generator(repository)
    # A mode-sensitive policy makes 'mode' selection-relevant, so each
    # context change genuinely invalidates the cached configuration.
    generator.policies.add(
        Policy(name="mode-bias", condition="mode == 'm1'",
               weights={"cost": -2.0})
    )
    generator.policies.context.set("mode", "m0")
    table = ResultTable(
        "E2b: amortization under context churn (1 change / 100 cycles)",
        ["cycles", "avg ms/cycle", "regenerations"],
    )

    def run():
        cycles = 10_000
        start = time.perf_counter()
        for index in range(cycles):
            if index % 100 == 0:
                generator.policies.context.set("mode", f"m{index % 3}")
            generator.generate(ROOT_CLASSIFIER)
        elapsed = time.perf_counter() - start
        table.add(cycles, elapsed / cycles * 1000, generator.stats.generated)
        return elapsed / cycles * 1000

    average_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(table)
    assert average_ms < 5.0
