"""A1 (ablation) — Case 1 predefined actions vs Case 2 dynamic IMs.

Paper Sec. VI motivates the coexistence of both approaches: "we may
define a Controller layer that relies solely on predefined action
handlers for domains where efficiency is more important than
flexibility ... In cases where memory footprint needs to be reduced,
dynamic IM generation avoids having to store a large number of
predefined actions for each available command."

Regenerates: per-command latency of the same operation executed via
Case 1 and Case 2 (cold and cached), and the resident-table footprint
trade-off.  Shapes asserted: Case 1 is faster per command; Case 2's
resident footprint is smaller than a full per-command action table.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import ResultTable
from repro.domains.communication.cvm import build_cvm
from repro.middleware.synthesis.scripts import Command
from repro.sim.network import CommService


def _platform(default_case: str):
    platform = build_cvm(
        service=CommService("net0", op_cost=0.5), default_case=default_case
    )
    platform.controller.execute_command(
        Command("comm.session.establish", args={"connection": "c1"})
    )
    return platform


def _stream_command(index: int) -> Command:
    return Command(
        "comm.stream.open",
        args={"connection": "c1", "medium": f"m{index}",
              "kind": "audio", "quality": "standard"},
    )


def test_case1_per_command(benchmark):
    platform = _platform("actions")
    counter = iter(range(10_000))
    benchmark.group = "a1-per-command"
    benchmark(lambda: platform.controller.execute_command(
        _stream_command(next(counter))
    ))
    platform.stop()


def test_case2_per_command(benchmark):
    platform = _platform("intent")
    counter = iter(range(10_000))
    benchmark.group = "a1-per-command"
    benchmark(lambda: platform.controller.execute_command(
        _stream_command(next(counter))
    ))
    platform.stop()


def test_a1_tradeoff(benchmark, report):
    results: dict[str, float] = {}

    def run():
        for case in ("actions", "intent"):
            platform = _platform(case)
            commands = [_stream_command(i) for i in range(100)]
            start = time.perf_counter()
            for command in commands:
                outcome = platform.controller.execute_command(command)
                assert outcome.ok
                assert outcome.case == (
                    "actions" if case == "actions" else "intent"
                )
            results[case] = (time.perf_counter() - start) / len(commands)
            if case == "actions":
                results["action_table"] = (
                    platform.controller.actions.table_size_estimate()
                )
            else:
                # Case 2's resident domain knowledge for this command:
                # the procedures of the generated IM (cached once).
                generator = platform.controller.generator
                results["im_entries"] = generator.cache_entries
            platform.stop()

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "A1: Case 1 (predefined actions) vs Case 2 (dynamic IMs)",
        ["metric", "Case 1", "Case 2"],
    )
    table.add("per-command latency ms",
              results["actions"] * 1000, results["intent"] * 1000)
    table.add("resident entries (action steps vs cached IMs)",
              results["action_table"], results["im_entries"])
    report.append(table)

    # Case 1 is the efficiency-first configuration.
    assert results["actions"] <= results["intent"] * 1.05
    # Case 2 keeps a single cached configuration for a repeated command
    # instead of a full predefined action table.
    assert results["im_entries"] < results["action_table"]
