"""E3 — adaptation response time, adaptive vs non-adaptive Controller.

Paper Sec. VII-B: "while the response time of our Controller layer
architecture was measurably slower than a previous non-adaptive
Controller undertaking the same task, scenarios where adaptability was
beneficial to the task at hand would result in as much as an order of
magnitude improvement in response time for our adaptive Controller
layer (approx. 800 ms for our architecture, compared to approx.
4000 ms for the older non-adaptable architecture)."

Two regimes are regenerated:

* *steady state* — no environment change: the non-adaptive controller
  is FASTER per command (no classification/generation cycle), matching
  "measurably slower" for the adaptive architecture;
* *adaptation scenario* — the environment degrades mid-run and a
  different execution path is required: the adaptive controller
  re-selects in-process while the non-adaptive one must redeploy,
  yielding the paper's ~5x advantage for the adaptive design.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import NonAdaptiveController
from repro.bench.harness import ResultTable
from repro.bench.workloads import adaptation_wiring, adaptation_wiring_reliable
from repro.domains.communication.cvm import build_cvm
from repro.middleware.synthesis.scripts import Command
from repro.sim.network import CommService

#: stream-open commands issued after the environment change.
RESPONSE_BATCH = 40


def _stream_command(index: int) -> Command:
    return Command(
        "comm.stream.open",
        args={"connection": "c1", "medium": f"m{index}",
              "kind": "audio", "quality": "standard"},
    )


def _adaptive_platform():
    platform = build_cvm(service=CommService("net0"))
    controller = platform.controller
    controller.context.set("adaptation_mode", "dynamic")
    controller.execute_command(
        Command("comm.session.establish", args={"connection": "c1"})
    )
    controller.execute_command(_stream_command(999))  # warm path
    return platform


def _nonadaptive_stack():
    platform = build_cvm(service=CommService("net0"))
    controller = NonAdaptiveController(platform.broker, adaptation_wiring())
    controller.execute_command(
        Command("comm.session.establish", args={"connection": "c1"})
    )
    controller.execute_command(_stream_command(999))
    return platform, controller


def adaptive_response() -> float:
    """Seconds to complete the batch after the environment degrades."""
    platform = _adaptive_platform()
    controller = platform.controller
    start = time.perf_counter()
    controller.context.set("network_quality", "poor")  # the change
    for index in range(RESPONSE_BATCH):
        outcome = controller.execute_command(_stream_command(index))
        assert outcome.ok
    elapsed = time.perf_counter() - start
    platform.stop()
    return elapsed


def nonadaptive_response() -> float:
    platform, controller = _nonadaptive_stack()
    start = time.perf_counter()
    controller.redeploy(adaptation_wiring_reliable())  # the only answer
    for index in range(RESPONSE_BATCH):
        controller.execute_command(_stream_command(index))
    elapsed = time.perf_counter() - start
    platform.stop()
    return elapsed


def steady_adaptive() -> float:
    platform = _adaptive_platform()
    controller = platform.controller
    start = time.perf_counter()
    for index in range(RESPONSE_BATCH):
        controller.execute_command(_stream_command(index))
    elapsed = time.perf_counter() - start
    platform.stop()
    return elapsed


def steady_nonadaptive() -> float:
    platform, controller = _nonadaptive_stack()
    start = time.perf_counter()
    for index in range(RESPONSE_BATCH):
        controller.execute_command(_stream_command(index))
    elapsed = time.perf_counter() - start
    platform.stop()
    return elapsed


def test_adaptive_response(benchmark):
    benchmark.group = "e3-adaptation-scenario"
    benchmark.pedantic(adaptive_response, rounds=3, iterations=1)


def test_nonadaptive_response(benchmark):
    benchmark.group = "e3-adaptation-scenario"
    benchmark.pedantic(nonadaptive_response, rounds=3, iterations=1)


def test_e3_shapes(benchmark, report):
    """The headline comparison, both regimes."""
    results: dict[str, float] = {}

    def run():
        results["steady_adaptive"] = min(steady_adaptive() for _ in range(3))
        results["steady_nonadaptive"] = min(
            steady_nonadaptive() for _ in range(3)
        )
        results["adapt_adaptive"] = min(adaptive_response() for _ in range(3))
        results["adapt_nonadaptive"] = min(
            nonadaptive_response() for _ in range(3)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "E3: adaptation response time (paper: ~800 ms adaptive vs "
        "~4000 ms non-adaptive where adaptation helps)",
        ["regime", "adaptive ms", "non-adaptive ms", "adaptive speedup x"],
    )
    steady_ratio = results["steady_nonadaptive"] / results["steady_adaptive"]
    adapt_ratio = results["adapt_nonadaptive"] / results["adapt_adaptive"]
    table.add("steady state", results["steady_adaptive"] * 1000,
              results["steady_nonadaptive"] * 1000, steady_ratio)
    table.add("environment change", results["adapt_adaptive"] * 1000,
              results["adapt_nonadaptive"] * 1000, adapt_ratio)
    report.append(table)

    # Shape 1: in steady state the adaptive architecture is the slower
    # one ("measurably slower than a previous non-adaptive Controller").
    assert steady_ratio < 1.0, (
        f"non-adaptive should win steady state, ratio {steady_ratio:.2f}"
    )
    # Shape 2: when adaptation is needed, the adaptive controller wins
    # by a large factor (paper: ~5x, 'order of magnitude' class).
    assert adapt_ratio > 2.5, (
        f"adaptive advantage {adapt_ratio:.2f}x below expected band"
    )
