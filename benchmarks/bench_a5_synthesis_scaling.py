"""A5 (ablation) — Synthesis-layer scaling with application-model size.

Paper Sec. IX lists performance tuning per domain as open work; the
Synthesis layer's model-comparison approach is the obvious scaling
concern ("comparing two models at runtime", Sec. V-B).  This ablation
measures:

* initial synthesis cost vs model size (every element is an addition),
* *incremental* cost of a single-attribute edit on models of growing
  size — the models@runtime hot path,
* emitted-command counts (proportional to the change, not the model).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import ResultTable
from repro.domains.communication.cml import CmlBuilder, cml_metamodel
from repro.domains.communication.cvm import build_cvm
from repro.modeling.serialize import clone_model
from repro.sim.network import CommService

SIZES = (4, 16, 64, 256)


def _scenario(connections: int):
    """A CML model with ``connections`` two-party audio connections."""
    builder = CmlBuilder(f"scale-{connections}")
    people = [builder.person(f"u{i}") for i in range(connections + 1)]
    media = []
    for index in range(connections):
        connection = builder.connection(
            f"c{index}", [people[index], people[index + 1]], media=["audio"]
        )
        media.append(connection)
    return builder


@pytest.mark.parametrize("connections", SIZES)
def test_initial_synthesis_by_size(benchmark, connections):
    builder = _scenario(connections)
    benchmark.group = "a5-initial-synthesis"

    def run():
        platform = build_cvm(service=CommService("net0", op_cost=0.0))
        platform.run_model(clone_model(builder.build()))
        platform.stop()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_a5_scaling_table(benchmark, report):
    rows = []

    def run():
        rows.clear()
        for connections in SIZES:
            builder = _scenario(connections)
            platform = build_cvm(service=CommService("net0", op_cost=0.0))
            base = builder.build()

            start = time.perf_counter()
            result = platform.run_model(clone_model(base))
            initial = time.perf_counter() - start
            initial_commands = len(result.script)

            # a single-attribute edit on the large running model
            edited = platform.ui.checkout()
            medium = next(iter(edited.objects_by_class("Medium")))
            medium.quality = "high"
            start = time.perf_counter()
            incremental_result = platform.ui.submit(
                platform.ui.put_model(edited)
            )
            incremental = time.perf_counter() - start

            rows.append((
                connections, len(base), initial * 1000, initial_commands,
                incremental * 1000, len(incremental_result.script),
            ))
            platform.stop()

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "A5: synthesis scaling with application-model size",
        ["connections", "model elements", "initial ms", "initial cmds",
         "1-edit ms", "1-edit cmds"],
    )
    for row in rows:
        table.add(*row)
    report.append(table)

    # Emitted commands track the change, not the model: one edit ->
    # exactly one command at every size.
    assert all(row[5] == 1 for row in rows)
    # Incremental cycles stay far below the initial synthesis of the
    # same model (the models@runtime hot path is change-proportional
    # in command work even though comparison is model-proportional).
    largest = rows[-1]
    assert largest[4] < largest[2] / 2
    # Initial synthesis grows with model size (sanity on the harness).
    assert rows[-1][2] > rows[0][2]
