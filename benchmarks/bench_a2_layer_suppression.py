"""A2 (ablation) — layer suppression per node role (paper Secs. IV-C/D).

The 2SVM runs suppressed stacks on its nodes: the central device keeps
the top layers, smart objects keep the bottom two.  This ablation
measures what suppression buys: per-command cost on a bottom-only
object node vs pushing the same work through a full four-layer stack,
and the component-footprint difference.
"""

from __future__ import annotations

import time

from repro.bench.harness import ResultTable
from repro.domains.assembly import assemble_middleware_model
from repro.domains.smartspace import build_object_node
from repro.domains.smartspace import dsk as ss_dsk
from repro.domains.smartspace.ssml import ssml_metamodel
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.synthesis.scripts import Command, ControlScript
from repro.sim.space import SmartSpace


def _full_stack_platform():
    """A smart-space platform with all four layers on one node."""
    model = assemble_middleware_model("2svm-full", "smartspace", ss_dsk)
    space = SmartSpace(ss_dsk.RESOURCE_NAME, op_cost=0.5)
    return load_platform(
        model, DomainKnowledge(dsml=ssml_metamodel(), resources=[space])
    )


def _configure_script(count: int) -> ControlScript:
    script = ControlScript(name="configure")
    for index in range(count):
        script.add(Command(
            "ss.object.configure",
            args={"object": "obj0", "capability": "light",
                  "value": index, "node": "node0"},
        ))
    return script


def _register(platform):
    platform.run_script(ControlScript(commands=[
        Command("ss.object.register",
                args={"object": "obj0", "kind": "lamp",
                      "capabilities": {"light": 0}, "node": "node0"}),
    ]))


def test_suppressed_node_script_execution(benchmark):
    node = build_object_node("bench", space=SmartSpace("space0", op_cost=0.5))
    _register(node)
    script = _configure_script(20)
    benchmark.group = "a2-script"
    benchmark(lambda: node.run_script(script))
    node.stop()


def test_full_stack_script_execution(benchmark):
    platform = _full_stack_platform()
    _register(platform)
    script = _configure_script(20)
    benchmark.group = "a2-script"
    benchmark(lambda: platform.run_script(script))
    platform.stop()


def test_a2_footprint_and_latency(benchmark, report):
    results: dict[str, float] = {}

    def run():
        node = build_object_node(
            "bench", space=SmartSpace("space0", op_cost=0.5)
        )
        _register(node)
        full = _full_stack_platform()
        _register(full)
        script = _configure_script(50)

        start = time.perf_counter()
        node.run_script(script)
        results["suppressed_s"] = time.perf_counter() - start
        start = time.perf_counter()
        full.run_script(script)
        results["full_s"] = time.perf_counter() - start

        results["suppressed_layers"] = len(node.layers)
        results["full_layers"] = len(full.layers)
        node.stop()
        full.stop()

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = ResultTable(
        "A2: layer suppression (2SVM object node vs full stack)",
        ["configuration", "layers", "50-command script ms"],
    )
    table.add("object node (controller+broker)",
              int(results["suppressed_layers"]),
              results["suppressed_s"] * 1000)
    table.add("full 4-layer stack",
              int(results["full_layers"]), results["full_s"] * 1000)
    report.append(table)

    # Footprint: the suppressed node instantiates half the layers.
    assert results["suppressed_layers"] == 2
    assert results["full_layers"] == 4
    # Script execution cost on the shared path is comparable (the
    # suppressed node gives up no throughput by dropping upper layers).
    assert results["suppressed_s"] <= results["full_s"] * 1.25
