"""CSML — the Crowdsensing Modeling Language (paper Sec. IV-D).

CSML models "represent crowdsensing queries, which in turn are
dynamically interpreted to drive the acquisition of sensing data (from
participating devices) and the subsequent processing to produce the
query results" (Melo et al. [17]).  The headline CSVM capability —
"for long running queries, CSVM also allows on-the-fly changes to the
user's model, which dynamically reflect on the execution of the
query" — maps to attribute updates on a running ``SensingQuery``.
"""

from __future__ import annotations

from repro.modeling.constraints import ConstraintRegistry
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject

__all__ = ["csml_metamodel", "csml_constraints", "QueryBuilder"]

_METAMODEL: Metamodel | None = None
_CONSTRAINTS: ConstraintRegistry | None = None


def csml_metamodel() -> Metamodel:
    global _METAMODEL
    if _METAMODEL is not None:
        return _METAMODEL
    mm = Metamodel("csml")
    mm.new_enum("Aggregate", ["mean", "max", "min", "count"])

    campaign = mm.new_class("Campaign")
    campaign.attribute("name", "string", required=True)
    campaign.reference("queries", "SensingQuery", containment=True, many=True)

    query = mm.new_class("SensingQuery")
    query.attribute("name", "string", required=True)
    query.attribute("sensor", "string", required=True)
    query.attribute("region", "string", default="")
    query.attribute("aggregate", "Aggregate", default="mean")
    query.attribute("minBattery", "float", default=0.0)
    query.attribute("active", "bool", default=True)

    _METAMODEL = mm.resolve()
    return _METAMODEL


def csml_constraints() -> ConstraintRegistry:
    global _CONSTRAINTS
    if _CONSTRAINTS is not None:
        return _CONSTRAINTS
    registry = ConstraintRegistry()
    registry.invariant(
        "query-battery-range",
        "SensingQuery",
        "0 <= self.minBattery <= 100",
        message="minBattery must be a percentage",
    )
    registry.invariant(
        "campaign-unique-query-names",
        "Campaign",
        lambda obj, _ctx: len({q.get("name") for q in obj.get("queries")})
        == len(obj.get("queries")),
        message="query names must be unique within a campaign",
    )
    registry.invariant(
        "query-known-sensor",
        "SensingQuery",
        "self.sensor in ('temperature', 'noise', 'gps')",
        message="sensor must be one the simulated fleet provides",
    )
    _CONSTRAINTS = registry
    return _CONSTRAINTS


class QueryBuilder:
    """Fluent construction of CSML campaign models."""

    def __init__(self, name: str) -> None:
        self.model = Model(csml_metamodel(), name=name)
        self.campaign = self.model.create_root("Campaign", name=name)

    def query(
        self,
        name: str,
        sensor: str,
        *,
        region: str = "",
        aggregate: str = "mean",
        min_battery: float = 0.0,
        active: bool = True,
    ) -> MObject:
        query = self.model.create(
            "SensingQuery",
            name=name,
            sensor=sensor,
            region=region,
            aggregate=aggregate,
            minBattery=float(min_battery),
            active=active,
        )
        self.campaign.queries.append(query)
        return query

    def build(self) -> Model:
        return self.model
