"""Mobile crowdsensing domain: CSML (DSML), DSK, and the CSVM provider."""

from repro.domains.crowdsensing.csml import (
    QueryBuilder,
    csml_constraints,
    csml_metamodel,
)
from repro.domains.crowdsensing.csvm import CSVM, build_middleware_model

__all__ = [
    "csml_metamodel", "csml_constraints", "QueryBuilder",
    "CSVM", "build_middleware_model",
]
