"""Domain-specific knowledge for the mobile crowdsensing domain (CSVM).

Queries use their model-object id as the fleet task id, so on-the-fly
model updates address the running task directly.  Collection rounds
are Case 2 (dynamic Intent Models): the aggregation dependency varies
per query (mean/max/min/count) and the *gathering* dependency varies
by fleet battery pressure — the domain's adaptive variability point.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "RESOURCE_NAME",
    "synthesis_rules",
    "dsc_specs",
    "procedure_specs",
    "controller_action_specs",
    "classifier_map",
    "policy_specs",
    "case_override_specs",
    "broker_action_specs",
    "symptom_specs",
    "plan_specs",
]

RESOURCE_NAME = "fleet0"


def synthesis_rules() -> list[dict[str, Any]]:
    query_rule = {
        "class_name": "SensingQuery",
        "states": {"running": False, "paused": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "running",
                "guard": "active",
                "commands": [
                    {
                        "operation": "cs.query.start",
                        "classifier": "cs.query.start",
                        "args_expr": {"task": "obj.id", "sensor": "sensor",
                                      "region": "region",
                                      "min_battery": "minBattery"},
                    }
                ],
            },
            {
                "source": "initial", "label": "add", "target": "paused",
                "guard": "not active",
                "commands": [],
            },
            {
                # On-the-fly update of a long-running query (Sec. IV-D).
                "source": "running", "label": "set:sensor", "target": "running",
                "commands": [
                    {
                        "operation": "cs.query.update",
                        "classifier": "cs.query.update",
                        "args": {"min_battery": None},
                        "args_expr": {"task": "object_id", "sensor": "new"},
                    }
                ],
            },
            {
                "source": "running", "label": "set:minBattery", "target": "running",
                "commands": [
                    {
                        "operation": "cs.query.update",
                        "classifier": "cs.query.update",
                        "args": {"sensor": None},
                        "args_expr": {"task": "object_id", "min_battery": "new"},
                    }
                ],
            },
            {
                "source": "running", "label": "set:aggregate", "target": "running",
                "commands": [],  # aggregation is applied at collect time
            },
            {
                # Region changes re-scope eligibility: restart the task.
                "source": "running", "label": "set:region", "target": "running",
                "commands": [
                    {
                        "operation": "cs.query.stop",
                        "classifier": "cs.query.stop",
                        "args_expr": {"task": "object_id"},
                    },
                    {
                        "operation": "cs.query.start",
                        "classifier": "cs.query.start",
                        "args_expr": {"task": "object_id",
                                      "sensor": "obj.sensor",
                                      "region": "new",
                                      "min_battery": "obj.minBattery"},
                    },
                ],
            },
            {
                "source": "running", "label": "set:active", "target": "paused",
                "guard": "not new",
                "commands": [
                    {
                        "operation": "cs.query.stop",
                        "classifier": "cs.query.stop",
                        "args_expr": {"task": "object_id"},
                    }
                ],
            },
            {
                "source": "paused", "label": "set:active", "target": "running",
                "guard": "new",
                "commands": [
                    {
                        "operation": "cs.query.start",
                        "classifier": "cs.query.start",
                        "args_expr": {"task": "object_id", "sensor": "obj.sensor",
                                      "region": "obj.region",
                                      "min_battery": "obj.minBattery"},
                    }
                ],
            },
            {
                "source": "running", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "cs.query.stop",
                        "classifier": "cs.query.stop",
                        "args_expr": {"task": "object_id"},
                    }
                ],
            },
            {
                "source": "paused", "label": "remove", "target": "initial",
                "commands": [],
            },
        ],
    }
    campaign_rule = {
        "class_name": "Campaign",
        "states": {"active": False},
        "transitions": [
            {"source": "initial", "label": "add", "target": "active",
             "commands": []},
            {"source": "active", "label": "remove", "target": "initial",
             "commands": []},
        ],
    }
    return [query_rule, campaign_rule]


def dsc_specs() -> list[dict[str, Any]]:
    return [
        {"name": "cs", "description": "crowdsensing domain root"},
        {"name": "cs.query", "parent": "cs"},
        {"name": "cs.query.start", "parent": "cs.query"},
        {"name": "cs.query.update", "parent": "cs.query"},
        {"name": "cs.query.stop", "parent": "cs.query"},
        {"name": "cs.collect", "parent": "cs",
         "description": "one collection + aggregation round"},
        {"name": "cs.collect.mean", "parent": "cs.collect"},
        {"name": "cs.collect.max", "parent": "cs.collect"},
        {"name": "cs.collect.min", "parent": "cs.collect"},
        {"name": "cs.collect.count", "parent": "cs.collect"},
        {"name": "cs.gather", "parent": "cs",
         "description": "abstract reading acquisition"},
        {"name": "cs.data", "kind": "data"},
        {"name": "cs.data.readings", "kind": "data", "parent": "cs.data"},
    ]


def procedure_specs() -> list[dict[str, Any]]:
    aggregations = {
        "mean": "sum(values) / len(values)",
        "max": "max(values)",
        "min": "min(values)",
        "count": "len(values)",
    }
    procedures: list[dict[str, Any]] = [
        {
            "name": "start_query",
            "classifier": "cs.query.start",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "csb.distribute",
                                "args_expr": {"task": "task", "sensor": "sensor",
                                              "region": "region",
                                              "min_battery": "min_battery"},
                                "result": "devices"}),
                    ("RETURN", {"expr": "devices"}),
                ]
            },
        },
        {
            "name": "update_query",
            "classifier": "cs.query.update",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "csb.update",
                                "args_expr": {"task": "task", "sensor": "sensor",
                                              "min_battery": "min_battery"}}),
                    ("RETURN", {}),
                ]
            },
        },
        # Reading acquisition: full sweep vs battery-saving sample.
        {
            "name": "gather_all",
            "classifier": "cs.gather",
            "attributes": {"cost": 2.0, "reliability": 0.99, "coverage": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "csb.collect",
                                "args_expr": {"task": "task"},
                                "result": "readings"}),
                    ("RETURN", {"expr": "readings"}),
                ]
            },
        },
        {
            "name": "gather_sampled",
            "classifier": "cs.gather",
            "attributes": {"cost": 1.0, "reliability": 0.95, "coverage": 0.5,
                           "battery_friendly": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "csb.collect",
                                "args_expr": {"task": "task"},
                                "result": "readings"}),
                    ("SET", {"var": "half",
                             "expr": "max(1, len(readings) // 2)"}),
                    ("RETURN", {"expr": "readings[0:half]"}),
                ]
            },
        },
    ]
    for kind, formula in aggregations.items():
        procedures.append(
            {
                "name": f"collect_{kind}",
                "classifier": f"cs.collect.{kind}",
                "dependencies": ["cs.gather"],
                "attributes": {"cost": 1.0, "reliability": 0.99},
                "units": {
                    "main": [
                        ("INVOKE", {"dependency": "cs.gather",
                                    "args_expr": {"task": "task"},
                                    "result": "readings"}),
                        ("SET", {"var": "values",
                                 "expr": "[r['value'] for r in readings]"}),
                        ("GUARD", {"condition": "len(values) > 0"}),
                        ("SET", {"var": "aggregated", "expr": formula}),
                        ("EMIT", {"topic": "controller.cs.result",
                                  "args_expr": {"task": "task",
                                                "value": "aggregated",
                                                "samples": "len(values)"}}),
                        ("RETURN", {"expr": "aggregated"}),
                    ]
                },
            }
        )
    return procedures


def controller_action_specs() -> list[dict[str, Any]]:
    """Case 1 actions cover query lifecycle; collection is Case 2 only."""
    return [
        {
            "name": "act-start-query",
            "pattern": "cs.query.start",
            "steps": [
                {"api": "csb.distribute",
                 "args_expr": {"task": "task", "sensor": "sensor",
                               "region": "region", "min_battery": "min_battery"}},
            ],
        },
        {
            "name": "act-update-query",
            "pattern": "cs.query.update",
            "steps": [
                {"api": "csb.update",
                 "args_expr": {"task": "task", "sensor": "sensor",
                               "min_battery": "min_battery"}},
            ],
        },
        {
            "name": "act-stop-query",
            "pattern": "cs.query.stop",
            "steps": [
                {"api": "csb.revoke", "args_expr": {"task": "task"}},
            ],
        },
    ]


def classifier_map() -> dict[str, str]:
    return {
        "cs.query.start": "cs.query.start",
        "cs.query.update": "cs.query.update",
        "cs.query.stop": "cs.query.stop",
        "cs.query.collect": "cs.collect",
    }


def case_override_specs() -> list[dict[str, Any]]:
    # Collection rounds always use dynamic IM generation.
    return [{"pattern": "cs.query.collect", "case": "intent"}]


def policy_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "baseline-scoring",
            "condition": "True",
            "weights": {"cost": -1.0, "reliability": 5.0},
        },
        {
            # Low fleet battery: prefer the battery-friendly gatherer.
            "name": "battery-saver",
            "condition": "fleet_battery < 30",
            "weights": {"battery_friendly": 50.0},
            "applies_to": "cs.gather",
            "priority": 10,
        },
        {
            # High coverage demanded: prefer full sweeps.
            "name": "coverage-first",
            "condition": "coverage_mode == 'full'",
            "weights": {"coverage": 50.0},
            "applies_to": "cs.gather",
            "priority": 5,
        },
    ]


def broker_action_specs() -> list[dict[str, Any]]:
    fleet = RESOURCE_NAME
    return [
        {
            "name": "csb-distribute",
            "pattern": "csb.distribute",
            "steps": [
                {"resource": fleet, "operation": "distribute_task",
                 "args_expr": {"task": "task", "sensor": "sensor",
                               "region": "region", "min_battery": "min_battery"},
                 "result": "devices",
                 "state_expr": "'task:' + task"},
            ],
        },
        {
            "name": "csb-update",
            "pattern": "csb.update",
            "steps": [
                {"resource": fleet, "operation": "update_task",
                 "args_expr": {"task": "task", "sensor": "sensor",
                               "min_battery": "min_battery"}},
            ],
        },
        {
            "name": "csb-revoke",
            "pattern": "csb.revoke",
            "steps": [
                {"resource": fleet, "operation": "revoke_task",
                 "args_expr": {"task": "task"}},
            ],
        },
        {
            "name": "csb-collect",
            "pattern": "csb.collect",
            "steps": [
                {"resource": fleet, "operation": "collect",
                 "args_expr": {"task": "task"}, "result": "readings"},
            ],
        },
        {
            "name": "csb-status",
            "pattern": "csb.status",
            "steps": [
                {"resource": fleet, "operation": "fleet_status",
                 "result": "status", "state": "fleet_status"},
            ],
        },
    ]


def symptom_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "device-dropout",
            "condition": "True",
            "request_kind": "dropout",
            "on_topic": f"resource.{RESOURCE_NAME}.device_dropped",
        },
    ]


def plan_specs() -> list[dict[str, Any]]:
    return [
        {
            # Track dropouts and refresh fleet status for policies.
            "name": "track-dropouts",
            "request_kind": "dropout",
            "steps": [
                {"set": "dropouts", "expr": "state.get('dropouts', 0) + 1"},
                {"resource": RESOURCE_NAME, "operation": "fleet_status",
                 "result": "status", "state": "fleet_status"},
            ],
        },
    ]
