"""CSVM — the Crowdsensing Virtual Machine (paper Sec. IV-D).

The provider-side CSVM runs the *bottom three* layers (Synthesis,
Controller, Broker): "creation and modification of user models only
happens in the mobile devices", which submit their models to the
provider.  :class:`CSVM` therefore exposes ``submit_model`` (models
arriving from devices) and ``collect`` (periodic query evaluation),
with no UI layer.
"""

from __future__ import annotations

from typing import Any

from repro.domains.assembly import assemble_middleware_model
from repro.domains.crowdsensing import dsk
from repro.domains.crowdsensing.csml import csml_constraints, csml_metamodel
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.platform import Platform
from repro.middleware.synthesis.engine import SynthesisResult
from repro.middleware.synthesis.scripts import Command
from repro.modeling.model import Model, MObject
from repro.runtime.clock import Clock
from repro.sim.fleet import DeviceFleet

__all__ = ["build_middleware_model", "CSVM"]


def build_middleware_model(*, name: str = "csvm") -> Model:
    """The provider-side CSVM middleware model (no UI layer)."""
    return assemble_middleware_model(
        name,
        "crowdsensing",
        dsk,
        description="Mobile crowdsensing provider (CSML/CSVM, Sec. IV-D)",
        with_ui=False,
    )


class CSVM:
    """The provider-side crowdsensing platform."""

    def __init__(
        self,
        *,
        fleet: DeviceFleet | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.fleet = fleet or DeviceFleet(dsk.RESOURCE_NAME)
        if self.fleet.name != dsk.RESOURCE_NAME:
            raise ValueError(
                f"fleet resource must be named {dsk.RESOURCE_NAME!r}"
            )
        knowledge = DomainKnowledge(
            dsml=csml_metamodel(),
            resources=[self.fleet],
            constraints=csml_constraints(),
        )
        self.platform: Platform = load_platform(
            build_middleware_model(), knowledge, clock=clock
        )
        assert self.platform.controller is not None
        self.platform.controller.context.update(
            {"fleet_battery": 100.0, "coverage_mode": "full"}
        )
        #: task id -> latest aggregated result (filled by result events).
        self.results: dict[str, list[dict[str, Any]]] = {}
        self.platform.controller.events.on(
            "controller.cs.result", self._on_result
        )

    # -- model path (models arrive from mobile devices) -----------------

    def submit_model(self, model: Model, **context: Any) -> SynthesisResult:
        """A device submitted a new/updated campaign model."""
        assert self.platform.synthesis is not None
        from repro.modeling.constraints import validate_model

        validate_model(model, csml_constraints()).raise_if_invalid()
        return self.platform.synthesis.synthesize(model, context=context or None)

    def teardown(self) -> SynthesisResult:
        assert self.platform.synthesis is not None
        return self.platform.synthesis.teardown_script()

    # -- collection rounds ------------------------------------------------

    def collect(self, query: MObject | str) -> Any:
        """Run one collection + aggregation round for a query.

        Dynamically generates the Intent Model whose aggregation arm
        matches the query's ``aggregate`` and whose gathering arm is
        chosen by fleet-state policies.
        """
        query_obj = self._resolve_query(query)
        aggregate = query_obj.get("aggregate")
        command = Command(
            operation="cs.query.collect",
            args={"task": query_obj.id},
            classifier=f"cs.collect.{aggregate}",
        )
        assert self.platform.controller is not None
        outcome = self.platform.controller.execute_command(command)
        if outcome.result is not None and outcome.result.status == "guard_failed":
            return None  # no readings this round
        if not outcome.ok:
            error = outcome.result.error if outcome.result else "unknown"
            raise RuntimeError(f"collection round failed: {error}")
        return outcome.result.value if outcome.result else None

    def refresh_fleet_context(self) -> dict[str, Any]:
        """Update controller context from live fleet status (drives the
        battery-saver policy)."""
        status = self.fleet.op_fleet_status()
        assert self.platform.controller is not None
        self.platform.controller.context.set(
            "fleet_battery", status["mean_battery"]
        )
        return status

    # -- internals ------------------------------------------------------------

    def _resolve_query(self, query: MObject | str) -> MObject:
        if isinstance(query, MObject):
            return query
        assert self.platform.synthesis is not None
        runtime = self.platform.synthesis.dispatcher.runtime_model
        if runtime is None:
            raise LookupError("no campaign model is running")
        for candidate in runtime.objects_by_class("SensingQuery"):
            if candidate.id == query or candidate.get("name") == query:
                return candidate
        raise LookupError(f"no running query {query!r}")

    def _on_result(self, _topic: str, payload: dict[str, Any]) -> None:
        self.results.setdefault(payload.get("task", "?"), []).append(payload)

    def stats(self) -> dict[str, Any]:
        return self.platform.stats()

    def stop(self) -> None:
        self.platform.stop()
