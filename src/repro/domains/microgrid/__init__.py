"""Smart microgrid domain: MGridML (DSML), DSK, and the MGridVM platform."""

from repro.domains.microgrid.mgridml import (
    MGridBuilder,
    mgridml_constraints,
    mgridml_metamodel,
)
from repro.domains.microgrid.mgridvm import (
    build_mgridvm,
    build_middleware_model,
    default_context,
)

__all__ = [
    "mgridml_metamodel", "mgridml_constraints", "MGridBuilder",
    "build_mgridvm", "build_middleware_model", "default_context",
]
