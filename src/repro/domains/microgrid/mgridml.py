"""MGridML — the Microgrid Modeling Language (paper Sec. IV-B).

MGridML models express "the configuration requirements of the
microgrid, which may be a home" (Allison et al. [11]): the devices the
plant comprises, their desired operating modes and priorities, and the
energy-management policies the middleware must enforce.  Unlike CML,
the microgrid domain has *centralized* semantics: one plant, shared
state, high resource utilization.
"""

from __future__ import annotations

from repro.modeling.constraints import ConstraintRegistry
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject

__all__ = ["mgridml_metamodel", "mgridml_constraints", "MGridBuilder"]

_METAMODEL: Metamodel | None = None
_CONSTRAINTS: ConstraintRegistry | None = None


def mgridml_metamodel() -> Metamodel:
    global _METAMODEL
    if _METAMODEL is not None:
        return _METAMODEL
    mm = Metamodel("mgridml")
    mm.new_enum("DeviceKind", ["load", "generator", "storage"])
    mm.new_enum(
        "DeviceMode", ["off", "on", "standby", "charging", "discharging"]
    )
    mm.new_enum("PolicyKind", ["peak_shaving", "cost_saving", "comfort"])

    grid = mm.new_class("MGridModel")
    grid.attribute("name", "string", required=True)
    grid.attribute("gridImportLimit", "float", default=5000.0)
    grid.reference("devices", "DeviceSpec", containment=True, many=True)
    grid.reference("policies", "EnergyPolicy", containment=True, many=True)

    device = mm.new_class("DeviceSpec")
    device.attribute("deviceId", "string", required=True)
    device.attribute("kind", "DeviceKind", required=True)
    device.attribute("powerRating", "float", required=True)
    device.attribute("mode", "DeviceMode", default="off")
    device.attribute("priority", "int", default=1)

    policy = mm.new_class("EnergyPolicy")
    policy.attribute("name", "string", required=True)
    policy.attribute("kind", "PolicyKind", required=True)
    policy.attribute("threshold", "float", default=0.0)
    policy.attribute("enabled", "bool", default=True)

    _METAMODEL = mm.resolve()
    return _METAMODEL


def mgridml_constraints() -> ConstraintRegistry:
    global _CONSTRAINTS
    if _CONSTRAINTS is not None:
        return _CONSTRAINTS
    registry = ConstraintRegistry()
    registry.invariant(
        "device-positive-rating",
        "DeviceSpec",
        "self.powerRating > 0",
        message="device power rating must be positive",
    )
    registry.invariant(
        "device-mode-matches-kind",
        "DeviceSpec",
        lambda obj, _ctx: obj.get("mode")
        in {
            "load": ("off", "on", "standby"),
            "generator": ("off", "on", "standby"),
            "storage": ("off", "charging", "discharging", "standby"),
        }[obj.get("kind")],
        message="device mode is invalid for its kind",
    )
    registry.invariant(
        "grid-unique-device-ids",
        "MGridModel",
        lambda obj, _ctx: len({d.get("deviceId") for d in obj.get("devices")})
        == len(obj.get("devices")),
        message="device ids must be unique within a microgrid",
    )
    registry.invariant(
        "policy-threshold-nonnegative",
        "EnergyPolicy",
        "self.threshold >= 0",
        message="policy threshold must be non-negative",
    )
    _CONSTRAINTS = registry
    return _CONSTRAINTS


class MGridBuilder:
    """Fluent construction of MGridML instance models."""

    def __init__(self, name: str, *, grid_import_limit: float = 5000.0) -> None:
        self.model = Model(mgridml_metamodel(), name=name)
        self.grid = self.model.create_root(
            "MGridModel", name=name, gridImportLimit=grid_import_limit
        )

    def device(
        self,
        device_id: str,
        kind: str,
        power_rating: float,
        *,
        mode: str = "off",
        priority: int = 1,
    ) -> MObject:
        device = self.model.create(
            "DeviceSpec",
            deviceId=device_id,
            kind=kind,
            powerRating=float(power_rating),
            mode=mode,
            priority=priority,
        )
        self.grid.devices.append(device)
        return device

    def policy(
        self, name: str, kind: str, *, threshold: float = 0.0, enabled: bool = True
    ) -> MObject:
        policy = self.model.create(
            "EnergyPolicy", name=name, kind=kind,
            threshold=float(threshold), enabled=enabled,
        )
        self.grid.policies.append(policy)
        return policy

    def build(self) -> Model:
        return self.model
