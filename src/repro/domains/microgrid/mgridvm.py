"""MGridVM — the Microgrid Virtual Machine (paper Sec. IV-B).

Assembles the microgrid middleware model from the DSK and loads it
into a running platform: MUI (UI), MSE (Synthesis), MCM (Controller)
and MHB (Broker) over a simulated plant controller.
"""

from __future__ import annotations

from typing import Any

from repro.domains.assembly import assemble_middleware_model
from repro.domains.microgrid import dsk
from repro.domains.microgrid.mgridml import mgridml_constraints, mgridml_metamodel
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.platform import Platform
from repro.modeling.model import Model
from repro.runtime.clock import Clock
from repro.runtime.events import EventBus
from repro.sim.plant import PlantController

__all__ = ["build_middleware_model", "build_mgridvm", "default_context"]


def build_middleware_model(
    *,
    name: str = "mgridvm",
    lean: bool = False,
    default_case: str = "actions",
) -> Model:
    """The MGridVM middleware model."""
    return assemble_middleware_model(
        name,
        "microgrid",
        dsk,
        description="Smart microgrid energy management (MGridML/MGridVM)",
        lean=lean,
        default_case=default_case,
        layer_names={"ui": "mui", "synthesis": "mse",
                     "controller": "mcm", "broker": "mhb"},
    )


def default_context() -> dict[str, Any]:
    return {"household_preference": "economy", "season": "summer"}


def build_mgridvm(
    *,
    plant: PlantController | None = None,
    lean: bool = False,
    default_case: str = "actions",
    bus: EventBus | None = None,
    clock: Clock | None = None,
) -> Platform:
    """Create and start an MGridVM platform over a (simulated) plant."""
    plant = plant or PlantController(dsk.RESOURCE_NAME)
    if plant.name != dsk.RESOURCE_NAME:
        raise ValueError(
            f"plant controller must be named {dsk.RESOURCE_NAME!r} "
            f"(broker actions are bound to it)"
        )
    knowledge = DomainKnowledge(
        dsml=mgridml_metamodel(),
        resources=[plant],
        constraints=mgridml_constraints(),
    )
    platform = load_platform(
        build_middleware_model(lean=lean, default_case=default_case),
        knowledge,
        bus=bus,
        clock=clock,
    )
    assert platform.controller is not None
    platform.controller.context.update(default_context())
    return platform
