"""Domain-specific knowledge for the smart microgrid domain.

Same structure as the communication DSK (pure data interpreted by the
shared middleware stack): synthesis rules over MGridML metaclasses,
the grid DSC taxonomy, energy-management procedures (the paper's
"applies energy management algorithms" in the MCM layer), MHB broker
actions over the simulated plant, and the autonomic overload-handling
knowledge.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "RESOURCE_NAME",
    "synthesis_rules",
    "dsc_specs",
    "procedure_specs",
    "controller_action_specs",
    "classifier_map",
    "policy_specs",
    "broker_action_specs",
    "symptom_specs",
    "plan_specs",
]

RESOURCE_NAME = "plant0"


def synthesis_rules() -> list[dict[str, Any]]:
    device_rule = {
        "class_name": "DeviceSpec",
        "states": {"registered": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.register",
                        "classifier": "grid.device.register",
                        "args_expr": {
                            "device": "deviceId", "kind": "kind",
                            "rating": "powerRating", "priority": "priority",
                        },
                    },
                    {
                        "operation": "grid.device.set_mode",
                        "classifier": "grid.device.configure",
                        "when": "mode != 'off'",
                        "args_expr": {"device": "deviceId", "mode": "mode"},
                    },
                ],
            },
            {
                "source": "registered", "label": "set:mode", "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.set_mode",
                        "classifier": "grid.device.configure",
                        "args_expr": {"device": "obj.deviceId", "mode": "new"},
                    }
                ],
            },
            {
                "source": "registered", "label": "set:priority", "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.set_priority",
                        "classifier": "grid.device.configure",
                        "args_expr": {"device": "obj.deviceId", "priority": "new"},
                    }
                ],
            },
            {
                # Identity/rating/kind edits replace the physical device:
                # deregister the old registration, register the new one.
                "source": "registered", "label": "set:deviceId",
                "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.deregister",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "old"},
                    },
                    {
                        "operation": "grid.device.register",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "new", "kind": "obj.kind",
                                      "rating": "obj.powerRating",
                                      "priority": "obj.priority"},
                    },
                    {
                        "operation": "grid.device.set_mode",
                        "classifier": "grid.device.configure",
                        "when": "obj.mode != 'off'",
                        "args_expr": {"device": "new", "mode": "obj.mode"},
                    },
                ],
            },
            {
                "source": "registered", "label": "set:powerRating",
                "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.deregister",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "obj.deviceId"},
                    },
                    {
                        "operation": "grid.device.register",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "obj.deviceId",
                                      "kind": "obj.kind", "rating": "new",
                                      "priority": "obj.priority"},
                    },
                    {
                        "operation": "grid.device.set_mode",
                        "classifier": "grid.device.configure",
                        "when": "obj.mode != 'off'",
                        "args_expr": {"device": "obj.deviceId",
                                      "mode": "obj.mode"},
                    },
                ],
            },
            {
                "source": "registered", "label": "set:kind",
                "target": "registered",
                "commands": [
                    {
                        "operation": "grid.device.deregister",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "obj.deviceId"},
                    },
                    {
                        "operation": "grid.device.register",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "obj.deviceId", "kind": "new",
                                      "rating": "obj.powerRating",
                                      "priority": "obj.priority"},
                    },
                    {
                        "operation": "grid.device.set_mode",
                        "classifier": "grid.device.configure",
                        "when": "obj.mode != 'off'",
                        "args_expr": {"device": "obj.deviceId",
                                      "mode": "obj.mode"},
                    },
                ],
            },
            {
                "source": "registered", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "grid.device.deregister",
                        "classifier": "grid.device.register",
                        "args_expr": {"device": "obj.deviceId"},
                    }
                ],
            },
        ],
    }
    policy_rule = {
        "class_name": "EnergyPolicy",
        "states": {"applied": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "applied",
                "commands": [
                    {
                        "operation": "grid.policy.apply",
                        "classifier": "grid.policy",
                        "when": "enabled",
                        "args_expr": {"policy": "name", "kind": "kind",
                                      "threshold": "threshold"},
                    }
                ],
            },
            {
                "source": "applied", "label": "set:threshold", "target": "applied",
                "commands": [
                    {
                        "operation": "grid.policy.apply",
                        "classifier": "grid.policy",
                        "args_expr": {"policy": "obj.name", "kind": "obj.kind",
                                      "threshold": "new"},
                    }
                ],
            },
            {
                "source": "applied", "label": "set:kind", "target": "applied",
                "commands": [
                    {
                        "operation": "grid.policy.apply",
                        "classifier": "grid.policy",
                        "args_expr": {"policy": "obj.name", "kind": "new",
                                      "threshold": "obj.threshold"},
                    }
                ],
            },
            {
                "source": "applied", "label": "set:enabled", "target": "applied",
                "commands": [
                    {
                        "operation": "grid.policy.apply",
                        "classifier": "grid.policy",
                        "when": "new",
                        "args_expr": {"policy": "obj.name", "kind": "obj.kind",
                                      "threshold": "obj.threshold"},
                    },
                    {
                        "operation": "grid.policy.revoke",
                        "classifier": "grid.policy",
                        "when": "not new",
                        "args_expr": {"policy": "obj.name"},
                    },
                ],
            },
            {
                "source": "applied", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "grid.policy.revoke",
                        "classifier": "grid.policy",
                        "args_expr": {"policy": "obj.name"},
                    }
                ],
            },
        ],
    }
    grid_rule = {
        "class_name": "MGridModel",
        "states": {"active": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "active",
                "commands": [
                    {
                        "operation": "grid.configure",
                        "classifier": "grid.configure",
                        "args_expr": {"import_limit": "gridImportLimit"},
                    }
                ],
            },
            {
                "source": "active", "label": "set:gridImportLimit", "target": "active",
                "commands": [
                    {
                        "operation": "grid.configure",
                        "classifier": "grid.configure",
                        "args_expr": {"import_limit": "new"},
                    }
                ],
            },
            {"source": "active", "label": "remove", "target": "initial",
             "commands": []},
        ],
    }
    return [device_rule, policy_rule, grid_rule]


def dsc_specs() -> list[dict[str, Any]]:
    return [
        {"name": "grid", "description": "microgrid domain root"},
        {"name": "grid.device", "parent": "grid"},
        {"name": "grid.device.register", "parent": "grid.device"},
        {"name": "grid.device.configure", "parent": "grid.device"},
        {"name": "grid.policy", "parent": "grid"},
        {"name": "grid.configure", "parent": "grid"},
        {"name": "grid.balance", "parent": "grid",
         "description": "abstract supply/demand balancing"},
        {"name": "grid.metering", "parent": "grid"},
        {"name": "grid.data", "kind": "data"},
        {"name": "grid.data.telemetry", "kind": "data", "parent": "grid.data"},
    ]


def procedure_specs() -> list[dict[str, Any]]:
    """Energy-management procedures.

    ``grid.balance`` is the variability point: under overload the
    middleware may *shed load* (cheap, uncomfortable) or *dispatch
    storage* (comfortable, costlier) — chosen by policy and context.
    """
    return [
        {
            "name": "register_device",
            "classifier": "grid.device.register",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "mhb.register",
                                "args_expr": {"device": "device", "kind": "kind",
                                              "rating": "rating",
                                              "priority": "priority"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "configure_device",
            "classifier": "grid.device.configure",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "mhb.set_mode",
                                "args_expr": {"device": "device", "mode": "mode"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "balance_by_shedding",
            "classifier": "grid.balance",
            "dependencies": ["grid.metering"],
            "attributes": {"cost": 1.0, "comfort": 0.2, "reliability": 0.99},
            "units": {
                "main": [
                    ("INVOKE", {"dependency": "grid.metering",
                                "result": "balance"}),
                    ("BROKER", {"api": "mhb.shed_load",
                                "args_expr": {"watts": "balance['grid_import']"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "balance_by_storage",
            "classifier": "grid.balance",
            "dependencies": ["grid.metering"],
            "attributes": {"cost": 3.0, "comfort": 0.9, "reliability": 0.95},
            "units": {
                "main": [
                    ("INVOKE", {"dependency": "grid.metering",
                                "result": "balance"}),
                    ("BROKER", {"api": "mhb.dispatch_storage", "result": "ok"}),
                    ("RETURN", {"expr": "ok"}),
                ]
            },
        },
        {
            "name": "read_meter",
            "classifier": "grid.metering",
            "attributes": {"cost": 0.3, "reliability": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "mhb.read_balance", "result": "balance"}),
                    ("RETURN", {"expr": "balance"}),
                ]
            },
        },
    ]


def controller_action_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "act-register",
            "pattern": "grid.device.register",
            "steps": [
                {"api": "mhb.register",
                 "args_expr": {"device": "device", "kind": "kind",
                               "rating": "rating", "priority": "priority"}},
            ],
        },
        {
            "name": "act-deregister",
            "pattern": "grid.device.deregister",
            "steps": [
                {"api": "mhb.deregister", "args_expr": {"device": "device"}},
            ],
        },
        {
            "name": "act-set-mode",
            "pattern": "grid.device.set_mode",
            "steps": [
                {"api": "mhb.set_mode",
                 "args_expr": {"device": "device", "mode": "mode"}},
            ],
        },
        {
            "name": "act-set-priority",
            "pattern": "grid.device.set_priority",
            "steps": [
                {"api": "mhb.set_priority",
                 "args_expr": {"device": "device", "priority": "priority"}},
            ],
        },
        {
            "name": "act-apply-policy",
            "pattern": "grid.policy.apply",
            "steps": [
                {"api": "mhb.store_policy",
                 "args_expr": {"policy": "policy", "kind": "kind",
                               "threshold": "threshold"}},
            ],
        },
        {
            "name": "act-revoke-policy",
            "pattern": "grid.policy.revoke",
            "steps": [
                {"api": "mhb.drop_policy", "args_expr": {"policy": "policy"}},
            ],
        },
        {
            "name": "act-configure",
            "pattern": "grid.configure",
            "steps": [
                {"api": "mhb.configure",
                 "args_expr": {"import_limit": "import_limit"}},
            ],
        },
        {
            "name": "act-balance",
            "pattern": "grid.balance",
            "steps": [
                {"api": "mhb.read_balance", "result": "balance"},
                {"api": "mhb.shed_load",
                 "args_expr": {"watts": "balance['grid_import']"}},
            ],
        },
    ]


def classifier_map() -> dict[str, str]:
    return {
        "grid.device.register": "grid.device.register",
        "grid.device.deregister": "grid.device.register",
        "grid.device.set_mode": "grid.device.configure",
        "grid.device.set_priority": "grid.device.configure",
        "grid.policy.*": "grid.policy",
        "grid.configure": "grid.configure",
        "grid.balance": "grid.balance",
    }


def policy_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "baseline-scoring",
            "condition": "True",
            "weights": {"cost": -1.0, "reliability": 5.0},
        },
        {
            # Comfort-first households dispatch storage before shedding.
            "name": "comfort-first",
            "condition": "household_preference == 'comfort'",
            "weights": {"comfort": 20.0},
            "applies_to": "grid.balance",
            "priority": 10,
        },
        {
            # Force dynamic IMs for balancing (inherently contextual).
            "name": "dynamic-balancing",
            "condition": "True",
            "force_case": "intent",
            "applies_to": "grid.balance",
        },
    ]


def broker_action_specs() -> list[dict[str, Any]]:
    plant = RESOURCE_NAME
    return [
        {
            "name": "mhb-register",
            "pattern": "mhb.register",
            "steps": [
                {"resource": plant, "operation": "register_device",
                 "args_expr": {"device": "device", "kind": "kind",
                               "power_rating": "rating", "priority": "priority"}},
            ],
        },
        {
            "name": "mhb-deregister",
            "pattern": "mhb.deregister",
            "steps": [
                {"resource": plant, "operation": "deregister_device",
                 "args_expr": {"device": "device"}},
            ],
        },
        {
            "name": "mhb-set-mode",
            "pattern": "mhb.set_mode",
            "steps": [
                {"resource": plant, "operation": "set_mode",
                 "args_expr": {"device": "device", "mode": "mode"}},
            ],
        },
        {
            "name": "mhb-set-priority",
            "pattern": "mhb.set_priority",
            "steps": [
                {"resource": plant, "operation": "set_priority",
                 "args_expr": {"device": "device", "priority": "priority"}},
            ],
        },
        {
            "name": "mhb-read-balance",
            "pattern": "mhb.read_balance",
            "steps": [
                {"resource": plant, "operation": "read_balance",
                 "result": "balance", "state": "last_balance"},
            ],
        },
        {
            "name": "mhb-shed-load",
            "pattern": "mhb.shed_load",
            "steps": [
                {"resource": plant, "operation": "shed_load",
                 "args_expr": {"watts": "watts"}},
                {"set": "sheds", "expr": "state.get('sheds', 0) + 1"},
            ],
        },
        {
            # Dispatch all storage devices into discharging mode.
            "name": "mhb-dispatch-storage",
            "pattern": "mhb.dispatch_storage",
            "steps": [
                {"resource": plant, "operation": "dispatch_storage",
                 "result": "dispatched"},
                {"set": "storage_dispatches",
                 "expr": "state.get('storage_dispatches', 0) + 1"},
            ],
        },
        {
            "name": "mhb-store-policy",
            "pattern": "mhb.store_policy",
            "steps": [
                {"set": "policies_applied",
                 "expr": "state.get('policies_applied', 0) + 1"},
            ],
        },
        {
            "name": "mhb-drop-policy",
            "pattern": "mhb.drop_policy",
            "steps": [
                {"set": "policies_applied",
                 "expr": "max(0, state.get('policies_applied', 0) - 1)"},
            ],
        },
        {
            "name": "mhb-configure",
            "pattern": "mhb.configure",
            "steps": [
                {"resource": plant, "operation": "set_import_limit",
                 "args_expr": {"limit": "import_limit"}},
            ],
        },
        {
            "name": "mhb-tick",
            "pattern": "mhb.tick",
            "steps": [
                {"resource": plant, "operation": "tick", "result": "balance",
                 "state": "last_balance"},
            ],
        },
    ]


def symptom_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "grid-overload",
            "condition": "grid_import > limit",
            "request_kind": "rebalance",
            "on_topic": f"resource.{RESOURCE_NAME}.overload",
        },
        {
            "name": "device-failed",
            "condition": "True",
            "request_kind": "device-outage",
            "on_topic": f"resource.{RESOURCE_NAME}.device_failure",
        },
    ]


def plan_specs() -> list[dict[str, Any]]:
    return [
        {
            # MAPE-K execute: shed enough load to get under the limit.
            "name": "shed-overload",
            "request_kind": "rebalance",
            "steps": [
                {"resource": RESOURCE_NAME, "operation": "shed_load",
                 "args_expr": {"watts": "grid_import - limit"}},
                {"set": "overload_mitigations",
                 "expr": "state.get('overload_mitigations', 0) + 1"},
            ],
        },
        {
            "name": "note-outage",
            "request_kind": "device-outage",
            "steps": [
                {"set": "outages", "expr": "state.get('outages', 0) + 1"},
            ],
        },
    ]
