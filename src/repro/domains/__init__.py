"""The four case-study domain platforms (paper Sec. IV), each built on
the same middleware metamodel and runtime:

* :mod:`repro.domains.communication` — CML / CVM.
* :mod:`repro.domains.microgrid` — MGridML / MGridVM.
* :mod:`repro.domains.smartspace` — 2SML / 2SVM.
* :mod:`repro.domains.crowdsensing` — CSML / CSVM.
"""
