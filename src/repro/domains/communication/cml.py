"""CML — the Communication Modeling Language (paper Sec. IV-A).

CML models describe user-to-user communication scenarios.  Following
Deng et al. [9] / Wu et al. [10], a model has a *control* part — the
configuration of the communication (who talks to whom) — and a *data*
part — the media and media structures used.

Metamodel:

* ``CommSchema`` (root) — a scenario; ``isInstance`` distinguishes
  instances from reusable schemas (paper: "CML may be used to create
  two types of models: schema and instance").
* ``Person`` — a communication party (contained in the schema).
* ``Connection`` — the control schema: references participating
  ``Person`` objects and contains its data schema.
* ``Medium`` — the data schema: one media stream specification
  (kind + quality) within a connection.

Plus OCL-style invariants (a connection needs ≥2 participants, media
kinds are unique per connection, exactly one initiator, ...).
"""

from __future__ import annotations

from typing import Iterable

from repro.modeling.constraints import ConstraintRegistry, Severity
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject

__all__ = [
    "cml_metamodel",
    "cml_constraints",
    "CmlBuilder",
    "parse_cml",
]

_METAMODEL: Metamodel | None = None
_CONSTRAINTS: ConstraintRegistry | None = None


def cml_metamodel() -> Metamodel:
    """Build (once) and return the CML metamodel."""
    global _METAMODEL
    if _METAMODEL is not None:
        return _METAMODEL
    mm = Metamodel("cml")
    mm.new_enum("MediumKind", ["audio", "video", "text", "file"])
    mm.new_enum("Quality", ["low", "standard", "high"])
    mm.new_enum("Role", ["initiator", "participant"])

    schema = mm.new_class("CommSchema")
    schema.attribute("name", "string", required=True)
    schema.attribute("isInstance", "bool", default=True)
    schema.reference("persons", "Person", containment=True, many=True)
    schema.reference("connections", "Connection", containment=True, many=True)

    person = mm.new_class("Person")
    person.attribute("userId", "string", required=True)
    person.attribute("name", "string")
    person.attribute("role", "Role", default="participant")

    connection = mm.new_class("Connection")
    connection.attribute("name", "string", required=True)
    connection.reference("participants", "Person", many=True, required=True)
    connection.reference("media", "Medium", containment=True, many=True)

    medium = mm.new_class("Medium")
    medium.attribute("kind", "MediumKind", required=True)
    medium.attribute("quality", "Quality", default="standard")

    _METAMODEL = mm.resolve()
    return _METAMODEL


def cml_constraints() -> ConstraintRegistry:
    """CML well-formedness invariants (validated before synthesis)."""
    global _CONSTRAINTS
    if _CONSTRAINTS is not None:
        return _CONSTRAINTS
    registry = ConstraintRegistry()
    registry.invariant(
        "connection-min-parties",
        "Connection",
        lambda obj, _ctx: len(obj.get("participants")) >= 2,
        message="a connection needs at least two participants",
    )
    registry.invariant(
        "connection-unique-media",
        "Connection",
        lambda obj, _ctx: _unique(m.get("kind") for m in obj.get("media")),
        message="media kinds must be unique within a connection",
    )
    registry.invariant(
        "schema-one-initiator",
        "CommSchema",
        lambda obj, _ctx: (
            sum(1 for p in obj.get("persons") if p.get("role") == "initiator") <= 1
        ),
        message="a scenario has at most one initiator",
    )
    registry.invariant(
        "connection-participants-in-schema",
        "Connection",
        _participants_contained,
        message="connection participants must be persons of the same schema",
    )
    registry.invariant(
        "schema-named-connections",
        "CommSchema",
        lambda obj, _ctx: _unique(c.get("name") for c in obj.get("connections")),
        message="connection names must be unique within a schema",
        severity=Severity.WARNING,
    )
    _CONSTRAINTS = registry
    return _CONSTRAINTS


def _unique(values: Iterable[object]) -> bool:
    seen = set()
    for value in values:
        if value in seen:
            return False
        seen.add(value)
    return True


def _participants_contained(obj: MObject, _ctx: dict) -> bool:
    schema = obj.container
    if schema is None:
        return False
    persons = set(p.id for p in schema.get("persons"))
    return all(p.id in persons for p in obj.get("participants"))


class CmlBuilder:
    """Fluent construction of CML instance models.

    >>> builder = CmlBuilder("standup")
    >>> alice = builder.person("alice", role="initiator")
    >>> bob = builder.person("bob")
    >>> builder.connection("daily", [alice, bob], media=["audio", "video"])
    <Connection ...>
    """

    def __init__(self, name: str) -> None:
        self.model = Model(cml_metamodel(), name=name)
        self.schema = self.model.create_root("CommSchema", name=name)

    def person(
        self, user_id: str, *, name: str = "", role: str = "participant"
    ) -> MObject:
        person = self.model.create(
            "Person", userId=user_id, name=name or user_id, role=role
        )
        self.schema.persons.append(person)
        return person

    def connection(
        self,
        name: str,
        participants: list[MObject],
        *,
        media: list[str | tuple[str, str]] = (),
    ) -> MObject:
        connection = self.model.create("Connection", name=name)
        for participant in participants:
            connection.participants.append(participant)
        for spec in media:
            kind, quality = (spec, "standard") if isinstance(spec, str) else spec
            connection.media.append(
                self.model.create("Medium", kind=kind, quality=quality)
            )
        self.schema.connections.append(connection)
        return connection

    def build(self) -> Model:
        return self.model


def parse_cml(text: str) -> Model:
    """Parse CML's tiny textual concrete syntax.

    ::

        scenario standup
        person alice initiator
        person bob
        connection daily alice bob : audio video/high

    Media are ``kind`` or ``kind/quality``.
    """
    builder: CmlBuilder | None = None
    persons: dict[str, MObject] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == "scenario":
            builder = CmlBuilder(parts[1])
        elif keyword == "person":
            if builder is None:
                raise ValueError("'person' before 'scenario'")
            role = parts[2] if len(parts) > 2 else "participant"
            persons[parts[1]] = builder.person(parts[1], role=role)
        elif keyword == "connection":
            if builder is None:
                raise ValueError("'connection' before 'scenario'")
            if ":" in parts:
                split_at = parts.index(":")
                party_names = parts[2:split_at]
                media_specs = parts[split_at + 1:]
            else:
                party_names = parts[2:]
                media_specs = []
            try:
                participants = [persons[p] for p in party_names]
            except KeyError as exc:
                raise ValueError(f"unknown person {exc} in connection") from exc
            media: list[tuple[str, str]] = []
            for spec in media_specs:
                kind, _, quality = spec.partition("/")
                media.append((kind, quality or "standard"))
            builder.connection(parts[1], participants, media=media)
        else:
            raise ValueError(f"unknown CML keyword {keyword!r}")
    if builder is None:
        raise ValueError("empty CML document (no 'scenario' line)")
    return builder.build()
