"""Communication domain: CML (DSML), DSK, and the CVM platform."""

from repro.domains.communication.cml import (
    CmlBuilder,
    cml_constraints,
    cml_metamodel,
    parse_cml,
)
from repro.domains.communication.cvm import (
    build_cvm,
    build_middleware_model,
    default_context,
)

__all__ = [
    "cml_metamodel", "cml_constraints", "CmlBuilder", "parse_cml",
    "build_cvm", "build_middleware_model", "default_context",
]
