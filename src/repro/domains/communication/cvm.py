"""CVM — the Communication Virtual Machine (paper Sec. IV-A).

Assembles the communication domain's middleware model (from the DSK in
:mod:`repro.domains.communication.dsk`) and loads it into a running
:class:`~repro.middleware.platform.Platform`, yielding the model-based
equivalent of the four-layer CVM: UCI (UI), SE (Synthesis), UCM
(Controller) and NCB (Broker) over a simulated communication service.
"""

from __future__ import annotations

from typing import Any

from repro.domains.assembly import assemble_middleware_model
from repro.domains.communication import dsk
from repro.domains.communication.cml import cml_constraints, cml_metamodel, parse_cml
from repro.middleware.broker.actions import BrokerAction
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.platform import Platform
from repro.modeling.model import Model
from repro.runtime.clock import Clock
from repro.runtime.events import EventBus
from repro.runtime.metrics import MetricsRegistry
from repro.sim.network import CommService

__all__ = ["build_middleware_model", "build_cvm", "default_context"]


def build_middleware_model(
    *,
    name: str = "cvm",
    lean: bool = False,
    default_case: str = "actions",
) -> Model:
    """The CVM middleware model (an instance of the md-dsm metamodel).

    ``lean=True`` produces the minimal manager configuration used by
    the A3 ablation (autonomic + snapshots disabled); ``default_case``
    selects the Controller's classification default (Sec. VI: action
    selection for efficiency-first domains, IM generation for highly
    dynamic ones).
    """
    return assemble_middleware_model(
        name,
        "communication",
        dsk,
        description="User-to-user communication (CML/CVM)",
        lean=lean,
        default_case=default_case,
        layer_names={"ui": "uci", "synthesis": "se",
                     "controller": "ucm", "broker": "ncb"},
    )


def default_context() -> dict[str, Any]:
    """Initial Controller context for a CVM instance."""
    return {"network_quality": "good", "adaptation_mode": "static"}


def build_cvm(
    *,
    service: CommService | None = None,
    lean: bool = False,
    default_case: str = "actions",
    bus: EventBus | None = None,
    clock: Clock | None = None,
    metrics: MetricsRegistry | None = None,
    extra_broker_actions: list[BrokerAction] | None = None,
) -> Platform:
    """Create and start a CVM platform over a (simulated) service.

    ``metrics`` routes the platform's instruments into a dedicated
    registry — sharded deployments pass the owning shard's registry so
    recording stays on the per-shard lock-free path.
    """
    service = service or CommService(dsk.RESOURCE_NAME)
    if service.name != dsk.RESOURCE_NAME:
        raise ValueError(
            f"communication service must be named {dsk.RESOURCE_NAME!r} "
            f"(broker actions are bound to it)"
        )
    knowledge = DomainKnowledge(
        dsml=cml_metamodel(),
        resources=[service],
        constraints=cml_constraints(),
        parser=parse_cml,
        broker_actions=list(extra_broker_actions or []),
    )
    platform = load_platform(
        build_middleware_model(lean=lean, default_case=default_case),
        knowledge,
        bus=bus,
        clock=clock,
        metrics=metrics,
    )
    assert platform.controller is not None
    platform.controller.context.update(default_context())
    return platform
