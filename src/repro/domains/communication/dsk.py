"""Domain-specific knowledge (DSK) for the communication domain.

This module is pure *data*: the synthesis rules (LTSs over CML
metaclasses), the DSC taxonomy, the procedure repository, the
controller/broker action definitions and the autonomic knowledge that
together give CML its operational semantics.  The structures here are
consumed by :mod:`repro.domains.communication.cvm`, which assembles
them into a middleware model — keeping domain knowledge separate from
the model of execution (paper Sec. V-B).

Identity conventions: CML ``Connection`` objects map to broker-managed
sessions keyed by the connection's object id; ``Person`` objects are
party tokens (their object id); ``Medium`` objects map to media streams
keyed by the medium's object id.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "RESOURCE_NAME",
    "synthesis_rules",
    "dsc_specs",
    "procedure_specs",
    "controller_action_specs",
    "classifier_map",
    "policy_specs",
    "broker_action_specs",
    "event_binding_specs",
    "symptom_specs",
    "plan_specs",
]

#: Name the CommService resource must be registered under.
RESOURCE_NAME = "net0"


# ---------------------------------------------------------------------------
# Synthesis layer: LTS rules per CML metaclass
# ---------------------------------------------------------------------------

def synthesis_rules() -> list[dict[str, Any]]:
    """Rule specs consumed by ``SynthesisLayerBuilder.rule``."""
    connection_rule = {
        "class_name": "Connection",
        "states": {"open": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "open",
                "commands": [
                    {
                        "operation": "comm.session.establish",
                        "classifier": "comm.session.establish",
                        "args_expr": {"connection": "obj.id"},
                        "target_expr": "obj.id",
                    },
                    {
                        "operation": "comm.party.add",
                        "classifier": "comm.party.add",
                        "foreach": "obj.participants",
                        "args_expr": {
                            "connection": "obj.id",
                            "party": "item.id",
                        },
                    },
                ],
            },
            {
                "source": "open", "label": "list:participants", "target": "open",
                "commands": [
                    {
                        "operation": "comm.party.add",
                        "classifier": "comm.party.add",
                        "foreach": "added",
                        "args_expr": {"connection": "object_id", "party": "item"},
                    },
                    {
                        "operation": "comm.party.remove",
                        "classifier": "comm.party.remove",
                        "foreach": "removed",
                        "args_expr": {"connection": "object_id", "party": "item"},
                    },
                ],
            },
            {
                "source": "open", "label": "set:name", "target": "open",
                "commands": [],  # renaming has no operational effect
            },
            {
                "source": "open", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "comm.session.teardown",
                        "classifier": "comm.session.teardown",
                        "args_expr": {"connection": "object_id"},
                    }
                ],
            },
        ],
    }
    medium_rule = {
        "class_name": "Medium",
        "states": {"streaming": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "streaming",
                "commands": [
                    {
                        "operation": "comm.stream.open",
                        "classifier": "comm.stream.open",
                        "args_expr": {
                            "connection": "obj.container.id",
                            "medium": "obj.id",
                            "kind": "kind",
                            "quality": "quality",
                        },
                    }
                ],
            },
            {
                "source": "streaming", "label": "set:quality", "target": "streaming",
                "commands": [
                    {
                        "operation": "comm.stream.reconfigure",
                        "classifier": "comm.stream.reconfigure",
                        "args_expr": {
                            "connection": "obj.container.id",
                            "medium": "object_id",
                            "quality": "new",
                        },
                    }
                ],
            },
            {
                # Changing the medium kind replaces the stream.
                "source": "streaming", "label": "set:kind", "target": "streaming",
                "commands": [
                    {
                        "operation": "comm.stream.close",
                        "classifier": "comm.stream.close",
                        "args_expr": {
                            "connection": "obj.container.id",
                            "medium": "object_id",
                        },
                    },
                    {
                        "operation": "comm.stream.open",
                        "classifier": "comm.stream.open",
                        "args_expr": {
                            "connection": "obj.container.id",
                            "medium": "object_id",
                            "kind": "new",
                            "quality": "obj.quality",
                        },
                    },
                ],
            },
            {
                "source": "streaming", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "comm.stream.close",
                        "classifier": "comm.stream.close",
                        "args_expr": {
                            "connection": "obj.container.id",
                            "medium": "object_id",
                        },
                    }
                ],
            },
        ],
    }
    # Persons and schemas are declarative-only: they produce no commands
    # but the rules pin that down explicitly (strict-mode platforms).
    person_rule = {
        "class_name": "Person",
        "states": {"known": False},
        "transitions": [
            {"source": "initial", "label": "add", "target": "known", "commands": []},
            {"source": "known", "label": "remove", "target": "initial", "commands": []},
            {"source": "known", "label": "set:name", "target": "known", "commands": []},
            {"source": "known", "label": "set:role", "target": "known", "commands": []},
            {"source": "known", "label": "set:userId", "target": "known", "commands": []},
        ],
    }
    schema_rule = {
        "class_name": "CommSchema",
        "states": {"active": False},
        "transitions": [
            {"source": "initial", "label": "add", "target": "active", "commands": []},
            {"source": "active", "label": "remove", "target": "initial", "commands": []},
            {"source": "active", "label": "set:isInstance", "target": "active", "commands": []},
            {"source": "active", "label": "list:persons", "target": "active", "commands": []},
            {"source": "active", "label": "list:connections", "target": "active", "commands": []},
        ],
    }
    return [connection_rule, medium_rule, person_rule, schema_rule]


# ---------------------------------------------------------------------------
# Controller layer: DSC taxonomy (paper Sec. V-B)
# ---------------------------------------------------------------------------

def dsc_specs() -> list[dict[str, Any]]:
    """The communication DSC taxonomy (operation + data classifiers)."""
    return [
        {"name": "comm", "description": "communication domain root"},
        {"name": "comm.session", "parent": "comm"},
        {"name": "comm.session.establish", "parent": "comm.session"},
        {"name": "comm.session.teardown", "parent": "comm.session"},
        {"name": "comm.party", "parent": "comm"},
        {"name": "comm.party.add", "parent": "comm.party"},
        {"name": "comm.party.remove", "parent": "comm.party"},
        {"name": "comm.stream", "parent": "comm"},
        {"name": "comm.stream.open", "parent": "comm.stream"},
        {"name": "comm.stream.close", "parent": "comm.stream"},
        {"name": "comm.stream.reconfigure", "parent": "comm.stream"},
        {"name": "comm.stream.transport", "parent": "comm.stream",
         "description": "abstract data-path establishment"},
        {"name": "comm.logging", "parent": "comm",
         "description": "operation audit logging"},
        {"name": "comm.qos", "parent": "comm",
         "description": "QoS monitoring attachment"},
        # data classifiers
        {"name": "comm.data", "kind": "data", "description": "media data root"},
        {"name": "comm.data.media", "kind": "data", "parent": "comm.data"},
        {"name": "comm.data.roster", "kind": "data", "parent": "comm.data"},
    ]


# ---------------------------------------------------------------------------
# Controller layer: procedures (Case 2 — dynamic Intent Models)
# ---------------------------------------------------------------------------

def procedure_specs() -> list[dict[str, Any]]:
    """Procedure specs for ``ControllerLayerBuilder.procedure``.

    The stream-open operation exhibits the paper's variability test:
    two transport procedures match ``comm.stream.transport`` and the
    policy-scored generation step picks per context.
    """
    return [
        {
            "name": "establish_session",
            "classifier": "comm.session.establish",
            "dependencies": ["comm.logging"],
            "attributes": {"cost": 2.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.open_session",
                                "args_expr": {"connection": "connection"},
                                "result": "session"}),
                    ("INVOKE", {"dependency": "comm.logging",
                                "args_expr": {"event": "'session.establish'",
                                              "subject": "connection"}}),
                    ("RETURN", {"expr": "session"}),
                ]
            },
        },
        {
            "name": "teardown_session",
            "classifier": "comm.session.teardown",
            "dependencies": ["comm.logging"],
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.close_session",
                                "args_expr": {"connection": "connection"}}),
                    ("INVOKE", {"dependency": "comm.logging",
                                "args_expr": {"event": "'session.teardown'",
                                              "subject": "connection"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "add_party",
            "classifier": "comm.party.add",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.add_party",
                                "args_expr": {"connection": "connection",
                                              "party": "party"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "remove_party",
            "classifier": "comm.party.remove",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.remove_party",
                                "args_expr": {"connection": "connection",
                                              "party": "party"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "open_stream_adaptive",
            "classifier": "comm.stream.open",
            "dependencies": ["comm.stream.transport", "comm.qos"],
            "attributes": {"cost": 2.0, "reliability": 0.95, "adaptive": True},
            "units": {
                "main": [
                    ("INVOKE", {"dependency": "comm.stream.transport",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium",
                                              "kind": "kind",
                                              "quality": "quality"},
                                "result": "stream"}),
                    ("INVOKE", {"dependency": "comm.qos",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium"}}),
                    ("RETURN", {"expr": "stream"}),
                ]
            },
        },
        {
            "name": "transport_fast",
            "classifier": "comm.stream.transport",
            "attributes": {"cost": 1.0, "reliability": 0.90, "latency": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.open_stream",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium",
                                              "kind": "kind",
                                              "quality": "quality"},
                                "result": "stream"}),
                    ("RETURN", {"expr": "stream"}),
                ]
            },
        },
        {
            "name": "transport_reliable",
            "classifier": "comm.stream.transport",
            "attributes": {"cost": 3.0, "reliability": 0.999, "latency": 2.5},
            "units": {
                "main": [
                    # Reliable path verifies the session before opening.
                    ("BROKER", {"api": "ncb.probe", "result": "health"}),
                    ("GUARD", {"condition": "health['active_sessions'] >= 0"}),
                    ("BROKER", {"api": "ncb.open_stream",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium",
                                              "kind": "kind",
                                              "quality": "quality"},
                                "result": "stream"}),
                    ("RETURN", {"expr": "stream"}),
                ]
            },
        },
        {
            "name": "close_stream",
            "classifier": "comm.stream.close",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.close_stream",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "reconfigure_stream",
            "classifier": "comm.stream.reconfigure",
            "attributes": {"cost": 1.0, "reliability": 0.98},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.reconfigure_stream",
                                "args_expr": {"connection": "connection",
                                              "medium": "medium",
                                              "quality": "quality"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "log_operation",
            "classifier": "comm.logging",
            "attributes": {"cost": 0.2, "reliability": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.log",
                                "args_expr": {"event": "event",
                                              "subject": "subject"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "qos_monitor",
            "classifier": "comm.qos",
            "attributes": {"cost": 0.5, "reliability": 1.0},
            "units": {
                "main": [
                    ("BROKER", {"api": "ncb.probe", "result": "health"}),
                    ("EMIT", {"topic": "controller.qos.sampled",
                              "args_expr": {"connection": "connection",
                                            "medium": "medium"}}),
                    ("RETURN", {}),
                ]
            },
        },
    ]


def classifier_map() -> dict[str, str]:
    """Command operation pattern -> DSC (Case 2 classification input)."""
    return {
        "comm.session.establish": "comm.session.establish",
        "comm.session.teardown": "comm.session.teardown",
        "comm.party.add": "comm.party.add",
        "comm.party.remove": "comm.party.remove",
        "comm.stream.open": "comm.stream.open",
        "comm.stream.close": "comm.stream.close",
        "comm.stream.reconfigure": "comm.stream.reconfigure",
    }


def policy_specs() -> list[dict[str, Any]]:
    """Controller policies: candidate scoring + classification forcing."""
    return [
        {
            # Baseline scoring: cheap and reliable procedures win.
            "name": "baseline-scoring",
            "condition": "True",
            "weights": {"cost": -1.0, "reliability": 5.0},
        },
        {
            # Poor network: strongly prefer reliable transport.
            "name": "prefer-reliability-on-poor-network",
            "condition": "network_quality == 'poor'",
            "weights": {"reliability": 50.0},
            "applies_to": "comm.stream",
            "priority": 10,
        },
        {
            # Adaptive mode: force dynamic IM generation for streams.
            "name": "adaptive-streams",
            "condition": "adaptation_mode == 'dynamic'",
            "force_case": "intent",
            "applies_to": "comm.stream",
            "priority": 5,
        },
    ]


# ---------------------------------------------------------------------------
# Controller layer: predefined actions (Case 1)
# ---------------------------------------------------------------------------

def controller_action_specs() -> list[dict[str, Any]]:
    """Case 1 actions: one declarative action per CML operation."""
    return [
        {
            "name": "act-establish",
            "pattern": "comm.session.establish",
            "attributes": {"cost": 1.0},
            "steps": [
                {"api": "ncb.open_session",
                 "args_expr": {"connection": "connection"},
                 "result": "session"},
            ],
        },
        {
            "name": "act-teardown",
            "pattern": "comm.session.teardown",
            "steps": [
                {"api": "ncb.close_session",
                 "args_expr": {"connection": "connection"}},
            ],
        },
        {
            "name": "act-add-party",
            "pattern": "comm.party.add",
            "steps": [
                {"api": "ncb.add_party",
                 "args_expr": {"connection": "connection", "party": "party"}},
            ],
        },
        {
            "name": "act-remove-party",
            "pattern": "comm.party.remove",
            "steps": [
                {"api": "ncb.remove_party",
                 "args_expr": {"connection": "connection", "party": "party"}},
            ],
        },
        {
            "name": "act-open-stream",
            "pattern": "comm.stream.open",
            "steps": [
                {"api": "ncb.open_stream",
                 "args_expr": {"connection": "connection", "medium": "medium",
                               "kind": "kind", "quality": "quality"}},
            ],
        },
        {
            "name": "act-close-stream",
            "pattern": "comm.stream.close",
            "steps": [
                {"api": "ncb.close_stream",
                 "args_expr": {"connection": "connection", "medium": "medium"}},
            ],
        },
        {
            "name": "act-reconfigure-stream",
            "pattern": "comm.stream.reconfigure",
            "steps": [
                {"api": "ncb.reconfigure_stream",
                 "args_expr": {"connection": "connection", "medium": "medium",
                               "quality": "quality"}},
            ],
        },
    ]


# ---------------------------------------------------------------------------
# Broker layer: NCB actions over the simulated communication service
# ---------------------------------------------------------------------------

def broker_action_specs() -> list[dict[str, Any]]:
    """The NCB API: ``ncb.*`` -> CommService operations.

    Broker state maps connection ids to live session ids
    (``session:<connection>``) and medium ids to stream ids
    (``stream:<medium>``) — the layer's runtime model.
    """
    net = RESOURCE_NAME
    return [
        {
            "name": "ncb-open-session",
            "pattern": "ncb.open_session",
            "steps": [
                {"resource": net, "operation": "open_session",
                 "args_expr": {"initiator": "connection"},
                 "result": "session",
                 "state_expr": "'session:' + connection"},
            ],
        },
        {
            "name": "ncb-close-session",
            "pattern": "ncb.close_session",
            "steps": [
                {"resource": net, "operation": "close_session",
                 "args_expr": {"session": "state['session:' + connection]"}},
            ],
        },
        {
            "name": "ncb-add-party",
            "pattern": "ncb.add_party",
            "steps": [
                {"resource": net, "operation": "add_party",
                 "args_expr": {"session": "state['session:' + connection]",
                               "party": "party"}},
            ],
        },
        {
            "name": "ncb-remove-party",
            "pattern": "ncb.remove_party",
            "steps": [
                {"resource": net, "operation": "remove_party",
                 "args_expr": {"session": "state['session:' + connection]",
                               "party": "party"}},
            ],
        },
        {
            "name": "ncb-open-stream",
            "pattern": "ncb.open_stream",
            "steps": [
                {"resource": net, "operation": "open_stream",
                 "args_expr": {"session": "state['session:' + connection]",
                               "medium": "kind", "quality": "quality"},
                 "result": "stream",
                 "state_expr": "'stream:' + medium"},
            ],
        },
        {
            "name": "ncb-close-stream",
            "pattern": "ncb.close_stream",
            "steps": [
                {"resource": net, "operation": "close_stream",
                 "args_expr": {"session": "state['session:' + connection]",
                               "stream": "state['stream:' + medium]"}},
            ],
        },
        {
            "name": "ncb-reconfigure-stream",
            "pattern": "ncb.reconfigure_stream",
            "steps": [
                {"resource": net, "operation": "reconfigure_stream",
                 "args_expr": {"session": "state['session:' + connection]",
                               "stream": "state['stream:' + medium]",
                               "quality": "quality"}},
            ],
        },
        {
            "name": "ncb-probe",
            "pattern": "ncb.probe",
            "lean_skip": True,
            "steps": [
                {"resource": net, "operation": "probe", "result": "health",
                 "state": "last_probe"},
            ],
        },
        {
            "name": "ncb-log",
            "pattern": "ncb.log",
            "lean_skip": True,
            "steps": [
                # Audit log kept in broker state (count per event kind).
                {"set": "log_count", "expr": "state.get('log_count', 0) + 1"},
            ],
        },
        {
            "name": "ncb-recover-session",
            "pattern": "ncb.recover_session",
            "steps": [
                {"resource": net, "operation": "recover_session",
                 "args_expr": {"session": "session"}},
            ],
        },
    ]


def event_binding_specs() -> list[dict[str, Any]]:
    """Layer-local reactions to resource events."""
    return [
        # Track failure counts in broker state for symptom conditions.
        {
            "topic_pattern": f"resource.{RESOURCE_NAME}.session_failed",
            "action": {
                "name": "ncb-note-failure",
                "pattern": "*",
                "steps": [
                    {"set": "failures", "expr": "state.get('failures', 0) + 1"},
                ],
            },
        },
    ]


# ---------------------------------------------------------------------------
# Broker layer: autonomic knowledge (failure recovery)
# ---------------------------------------------------------------------------

def symptom_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "session-failure",
            "condition": "True",
            "request_kind": "recover-session",
            "on_topic": f"resource.{RESOURCE_NAME}.session_failed",
        },
    ]


def plan_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "recover-failed-session",
            "request_kind": "recover-session",
            "steps": [
                {"resource": RESOURCE_NAME, "operation": "recover_session",
                 "args_expr": {"session": "session"}},
                {"set": "recoveries", "expr": "state.get('recoveries', 0) + 1"},
            ],
        },
    ]
