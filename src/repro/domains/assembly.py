"""Shared assembly of domain DSK specs into middleware models.

Every domain package exposes the same spec functions (synthesis rules,
DSC taxonomy, procedures, actions, policies, autonomic knowledge) as
pure data; :func:`assemble_middleware_model` turns one such DSK module
into a complete middleware model.  That the *same* assembler covers all
four domains is itself part of the reproduction: the paper's single
domain-independent metamodel expresses every platform of Sec. IV.
"""

from __future__ import annotations

from types import ModuleType
from typing import Any, Callable

from repro.middleware.model import MiddlewareModelBuilder
from repro.modeling.model import Model

__all__ = ["assemble_middleware_model"]


def _specs(dsk: ModuleType, name: str) -> list[dict[str, Any]]:
    fn: Callable[[], list[dict[str, Any]]] | None = getattr(dsk, name, None)
    return fn() if fn is not None else []


def assemble_middleware_model(
    name: str,
    domain: str,
    dsk: ModuleType,
    *,
    description: str = "",
    lean: bool = False,
    default_case: str = "actions",
    layer_names: dict[str, str] | None = None,
    with_ui: bool = True,
    with_synthesis: bool = True,
    with_controller: bool = True,
    with_broker: bool = True,
) -> Model:
    """Build a middleware model from a domain DSK module.

    ``with_*`` flags realize the layer-suppression configurations of
    Secs. IV-C/IV-D (e.g. a smart-object node keeps only controller +
    broker).  ``lean`` disables the Broker's optional managers (A3
    ablation).
    """
    names = {"ui": "ui", "synthesis": "synthesis",
             "controller": "controller", "broker": "broker"}
    names.update(layer_names or {})
    builder = MiddlewareModelBuilder(name, domain, description=description)

    if with_ui:
        builder.ui_layer(names["ui"])

    if with_synthesis:
        synthesis = builder.synthesis_layer(names["synthesis"])
        for rule in _specs(dsk, "synthesis_rules"):
            synthesis.rule(
                rule["class_name"],
                initial=rule.get("initial", "initial"),
                on_unmatched=rule.get("on_unmatched", "ignore"),
                states=rule.get("states", {}),
                transitions=rule.get("transitions", []),
            )

    if with_controller:
        controller = builder.controller_layer(
            names["controller"], default_case=default_case
        )
        for spec in _specs(dsk, "dsc_specs"):
            controller.dsc(
                spec["name"],
                kind=spec.get("kind", "operation"),
                parent=spec.get("parent"),
                description=spec.get("description", ""),
                constraints=spec.get("constraints"),
            )
        for spec in _specs(dsk, "procedure_specs"):
            controller.procedure(
                spec["name"],
                spec["classifier"],
                dependencies=spec.get("dependencies", ()),
                attributes=spec.get("attributes"),
                units=spec.get("units"),
                description=spec.get("description", ""),
            )
        for spec in _specs(dsk, "controller_action_specs"):
            controller.action(
                spec["name"],
                spec["pattern"],
                spec["steps"],
                guard=spec.get("guard"),
                attributes=spec.get("attributes"),
            )
        map_fn = getattr(dsk, "classifier_map", None)
        if map_fn is not None:
            for pattern, classifier in map_fn().items():
                controller.map_operation(pattern, classifier)
        for spec in _specs(dsk, "policy_specs"):
            controller.policy(
                spec["name"],
                condition=spec.get("condition", "True"),
                weights=spec.get("weights"),
                prefer=spec.get("prefer"),
                force_case=spec.get("force_case"),
                applies_to=spec.get("applies_to", ""),
                advice=spec.get("advice"),
                priority=spec.get("priority", 0),
            )
        for spec in _specs(dsk, "case_override_specs"):
            controller.case_override(spec["pattern"], spec["case"])

    if with_broker:
        broker = builder.broker_layer(
            names["broker"],
            enable_autonomic=not lean,
            enable_state_snapshots=not lean,
        )
        resource_name = getattr(dsk, "RESOURCE_NAME", None)
        if resource_name:
            broker.requires_resource(resource_name)
        for spec in _specs(dsk, "broker_action_specs"):
            if lean and spec.get("lean_skip"):
                # "leaner configurations ... featuring only the strictly
                # required components" (Sec. VII-A)
                continue
            broker.action(
                spec["name"],
                spec["pattern"],
                spec["steps"],
                guard=spec.get("guard"),
                priority=spec.get("priority", 0),
            )
        if not lean:
            for spec in _specs(dsk, "event_binding_specs"):
                inline = spec["action"]
                broker.action(
                    inline["name"], f"internal.{inline['name']}", inline["steps"]
                )
                broker.event_binding(
                    spec["topic_pattern"], inline["name"], guard=spec.get("guard")
                )
        if not lean:
            for spec in _specs(dsk, "symptom_specs"):
                broker.symptom(
                    spec["name"],
                    spec["condition"],
                    spec["request_kind"],
                    on_topic=spec.get("on_topic"),
                    cooldown=spec.get("cooldown", 0.0),
                )
            for spec in _specs(dsk, "plan_specs"):
                broker.plan(
                    spec["name"],
                    spec["request_kind"],
                    spec["steps"],
                    guard=spec.get("guard"),
                )
    return builder.build()
