"""2SVM — the Smart Spaces Virtual Machine (paper Sec. IV-C).

The 2SVM is the distributed, layer-suppressed deployment of the
reference architecture: "the instance of 2SVM that runs on the central
device that controls the smart space only has the three top layers,
while the instances that run on smart objects only have the two bottom
layers.  ... model synthesis only happens in the smart space
controller, which dispatches the synthesized control scripts to the
middleware layer on the smart objects."

:class:`TwoSVM` realizes exactly that: a *central node* (UI +
Synthesis, no Controller/Broker) synthesizes scripts and routes each
command — by its ``node`` argument — to an *object node* (Controller +
Broker over that node's :class:`~repro.sim.space.SmartSpace`
partition).  Installed app scripts execute asynchronously at the
object nodes when presence events fire (no central involvement).
"""

from __future__ import annotations

from typing import Any

from repro.domains.assembly import assemble_middleware_model
from repro.domains.smartspace import dsk
from repro.domains.smartspace.ssml import ssml_constraints, ssml_metamodel
from repro.middleware.loader import DomainKnowledge, load_platform
from repro.middleware.platform import Platform
from repro.middleware.synthesis.engine import SynthesisResult
from repro.middleware.synthesis.scripts import Command, ControlScript
from repro.modeling.model import Model
from repro.runtime.clock import Clock
from repro.sim.space import SmartSpace

__all__ = [
    "build_central_model",
    "build_full_model",
    "build_object_node_model",
    "build_object_node",
    "TwoSVM",
]


def build_central_model(*, name: str = "2svm-central") -> Model:
    """Middleware model for the central node (top layers only)."""
    return assemble_middleware_model(
        name,
        "smartspace",
        dsk,
        description="2SVM central node: UI + Synthesis (Sec. IV-C)",
        with_controller=False,
        with_broker=False,
    )


def build_full_model(*, name: str = "2svm-full") -> Model:
    """A single-node, four-layer smart-space middleware model.

    Used by tooling (conformance checks, the A2 ablation's full-stack
    comparator); production deployments use the suppressed
    central/object-node split below.
    """
    return assemble_middleware_model(
        name,
        "smartspace",
        dsk,
        description="2SVM single-node configuration (all four layers)",
    )


def build_object_node_model(*, name: str = "2svm-node") -> Model:
    """Middleware model for an object node (bottom layers only)."""
    return assemble_middleware_model(
        name,
        "smartspace",
        dsk,
        description="2SVM object node: Controller + Broker (Sec. IV-C)",
        with_ui=False,
        with_synthesis=False,
    )


def build_object_node(
    node_id: str,
    *,
    space: SmartSpace | None = None,
    clock: Clock | None = None,
) -> Platform:
    """A running object-node platform over its smart-space partition."""
    space = space or SmartSpace(dsk.RESOURCE_NAME)
    if space.name != dsk.RESOURCE_NAME:
        raise ValueError(
            f"smart-space resource must be named {dsk.RESOURCE_NAME!r}"
        )
    knowledge = DomainKnowledge(dsml=ssml_metamodel(), resources=[space])
    return load_platform(
        build_object_node_model(name=f"2svm-{node_id}"), knowledge, clock=clock
    )


class TwoSVM:
    """The complete distributed 2SVM deployment."""

    def __init__(self, node_ids: list[str] | None = None, *, clock: Clock | None = None) -> None:
        node_ids = node_ids or ["node0"]
        knowledge = DomainKnowledge(
            dsml=ssml_metamodel(), constraints=ssml_constraints()
        )
        self.central = load_platform(build_central_model(), knowledge, clock=clock)
        self.spaces: dict[str, SmartSpace] = {}
        self.nodes: dict[str, Platform] = {}
        for node_id in node_ids:
            space = SmartSpace(dsk.RESOURCE_NAME)
            self.spaces[node_id] = space
            self.nodes[node_id] = build_object_node(
                node_id, space=space, clock=clock
            )
        self.scripts_dispatched = 0

    # -- model execution -----------------------------------------------

    def run_model(self, model: Model, **context: Any) -> SynthesisResult:
        """Synthesize centrally, dispatch per-node scripts remotely."""
        assert self.central.ui is not None
        self.central.ui.put_model(model)
        result = self.central.ui.submit(model, **context)
        self.dispatch(result.script)
        return result

    def teardown_model(self) -> SynthesisResult:
        result = self.central.teardown_model()
        self.dispatch(result.script)
        return result

    def dispatch(self, script: ControlScript) -> dict[str, int]:
        """Route each command to the node named by its ``node`` arg.

        Returns node -> commands dispatched.  Commands without a node
        argument are broadcast to every node.
        """
        per_node: dict[str, list[Command]] = {n: [] for n in self.nodes}
        for command in script:
            node_id = command.args.get("node")
            targets = [node_id] if node_id else list(self.nodes)
            for target in targets:
                if target not in self.nodes:
                    raise ValueError(
                        f"command {command.operation!r} targets unknown node "
                        f"{target!r}"
                    )
                per_node[target].append(command)
        dispatched: dict[str, int] = {}
        for node_id, commands in per_node.items():
            if not commands:
                continue
            sub_script = ControlScript(
                name=f"{script.name}@{node_id}", commands=list(commands)
            )
            outcome = self.nodes[node_id].run_script(sub_script)
            if not outcome.ok:
                failures = [o.command.operation for o in outcome.failures()]
                raise RuntimeError(
                    f"node {node_id} failed commands {failures!r}"
                )
            dispatched[node_id] = len(commands)
            self.scripts_dispatched += 1
        return dispatched

    # -- presence driving -------------------------------------------------

    def _space_of(self, object_id: str) -> SmartSpace:
        for space in self.spaces.values():
            if object_id in space.objects:
                return space
        raise KeyError(f"object {object_id!r} is not registered on any node")

    def object_enters(self, object_id: str) -> None:
        home = self._space_of(object_id)
        home.object_enters(object_id)
        self._propagate(home, object_id, "object_entered")

    def object_leaves(self, object_id: str) -> None:
        home = self._space_of(object_id)
        home.object_leaves(object_id)
        self._propagate(home, object_id, "object_left")

    def _propagate(self, home: SmartSpace, object_id: str, event: str) -> None:
        """Space-wide presence propagation: every other partition sees
        the event so its installed scripts can react (Sec. IV-C)."""
        kind = home.objects[object_id].kind
        for space in self.spaces.values():
            if space is not home:
                space.observe_remote_presence(object_id, kind, event)

    def read_object(self, object_id: str) -> dict[str, Any]:
        return self._space_of(object_id).op_read_object(object_id)

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        self.central.stop()
        for node in self.nodes.values():
            node.stop()

    def stats(self) -> dict[str, Any]:
        return {
            "central": self.central.stats(),
            "nodes": {nid: n.stats() for nid, n in self.nodes.items()},
            "scripts_dispatched": self.scripts_dispatched,
        }
