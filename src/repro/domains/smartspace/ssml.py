"""2SML — the Smart Spaces Modeling Language (paper Sec. IV-C).

2SML constructs "represent the main kinds of elements that constitute
smart spaces — users, smart objects, and ubiquitous applications —
along with the relationships among them" (Freitas et al. [12]).

Metamodel:

* ``SpaceModel`` (root) — the smart space.
* ``SmartObjectSpec`` — a programmable object; ``node`` names the
  object-side runtime hosting it (layer-suppressed deployment).
* ``Setting`` — one capability value of an object.
* ``UserSpec`` — a user known to the space.
* ``UbiApp`` — a ubiquitous application: a trigger event plus
  ``Reaction`` effects installed *on* the objects they touch and
  executed asynchronously when the trigger fires.
"""

from __future__ import annotations

from typing import Any

from repro.modeling.constraints import ConstraintRegistry
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject

__all__ = ["ssml_metamodel", "ssml_constraints", "SpaceBuilder"]

_METAMODEL: Metamodel | None = None
_CONSTRAINTS: ConstraintRegistry | None = None


def ssml_metamodel() -> Metamodel:
    global _METAMODEL
    if _METAMODEL is not None:
        return _METAMODEL
    mm = Metamodel("ssml")
    mm.new_enum("TriggerKind", ["object_entered", "object_left", "announce"])

    space = mm.new_class("SpaceModel")
    space.attribute("name", "string", required=True)
    space.reference("objects", "SmartObjectSpec", containment=True, many=True)
    space.reference("users", "UserSpec", containment=True, many=True)
    space.reference("apps", "UbiApp", containment=True, many=True)

    obj = mm.new_class("SmartObjectSpec")
    obj.attribute("objectId", "string", required=True)
    obj.attribute("kind", "string", default="generic")
    obj.attribute("node", "string", default="node0")
    obj.reference("settings", "Setting", containment=True, many=True)

    setting = mm.new_class("Setting")
    setting.attribute("capability", "string", required=True)
    setting.attribute("value", "any")

    user = mm.new_class("UserSpec")
    user.attribute("userId", "string", required=True)
    user.attribute("name", "string")

    app = mm.new_class("UbiApp")
    app.attribute("name", "string", required=True)
    app.attribute("trigger", "TriggerKind", required=True)
    app.reference("reactions", "Reaction", containment=True, many=True)

    reaction = mm.new_class("Reaction")
    reaction.attribute("capability", "string", required=True)
    reaction.attribute("value", "any")
    reaction.reference("target", "SmartObjectSpec", required=True)

    _METAMODEL = mm.resolve()
    return _METAMODEL


def ssml_constraints() -> ConstraintRegistry:
    global _CONSTRAINTS
    if _CONSTRAINTS is not None:
        return _CONSTRAINTS
    registry = ConstraintRegistry()
    registry.invariant(
        "space-unique-object-ids",
        "SpaceModel",
        lambda obj, _ctx: len({o.get("objectId") for o in obj.get("objects")})
        == len(obj.get("objects")),
        message="object ids must be unique within a space",
    )
    registry.invariant(
        "object-unique-capabilities",
        "SmartObjectSpec",
        lambda obj, _ctx: len({s.get("capability") for s in obj.get("settings")})
        == len(obj.get("settings")),
        message="capabilities must be unique per object",
    )
    registry.invariant(
        "reaction-target-in-space",
        "Reaction",
        lambda obj, _ctx: (
            obj.get("target") is not None
            and obj.root() is obj.get("target").root()
        ),
        message="a reaction must target an object of the same space",
    )
    _CONSTRAINTS = registry
    return _CONSTRAINTS


class SpaceBuilder:
    """Fluent construction of 2SML models."""

    def __init__(self, name: str) -> None:
        self.model = Model(ssml_metamodel(), name=name)
        self.space = self.model.create_root("SpaceModel", name=name)

    def smart_object(
        self,
        object_id: str,
        *,
        kind: str = "generic",
        node: str = "node0",
        settings: dict[str, Any] | None = None,
    ) -> MObject:
        obj = self.model.create(
            "SmartObjectSpec", objectId=object_id, kind=kind, node=node
        )
        for capability, value in dict(settings or {}).items():
            obj.settings.append(
                self.model.create("Setting", capability=capability, value=value)
            )
        self.space.objects.append(obj)
        return obj

    def user(self, user_id: str, *, name: str = "") -> MObject:
        user = self.model.create("UserSpec", userId=user_id, name=name or user_id)
        self.space.users.append(user)
        return user

    def app(
        self,
        name: str,
        trigger: str,
        reactions: list[tuple[MObject, str, Any]],
    ) -> MObject:
        """``reactions`` is a list of (target object, capability, value)."""
        app = self.model.create("UbiApp", name=name, trigger=trigger)
        for target, capability, value in reactions:
            app.reactions.append(
                self.model.create(
                    "Reaction", target=target, capability=capability, value=value
                )
            )
        self.space.apps.append(app)
        return app

    def build(self) -> Model:
        return self.model
