"""Smart spaces domain: 2SML (DSML), DSK, and the distributed 2SVM."""

from repro.domains.smartspace.ssml import (
    SpaceBuilder,
    ssml_constraints,
    ssml_metamodel,
)
from repro.domains.smartspace.ssvm import (
    TwoSVM,
    build_central_model,
    build_full_model,
    build_object_node,
    build_object_node_model,
)

__all__ = [
    "ssml_metamodel", "ssml_constraints", "SpaceBuilder",
    "TwoSVM", "build_central_model", "build_full_model",
    "build_object_node",
    "build_object_node_model",
]
