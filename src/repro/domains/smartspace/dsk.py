"""Domain-specific knowledge for the smart-spaces domain (2SVM).

Commands carry a ``node`` argument naming the object-side runtime that
must execute them — the deployment in
:mod:`repro.domains.smartspace.ssvm` routes per-node sub-scripts to
layer-suppressed platforms (paper Sec. IV-C: the central device runs
the top layers, smart objects run the bottom two).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "RESOURCE_NAME",
    "synthesis_rules",
    "dsc_specs",
    "procedure_specs",
    "controller_action_specs",
    "classifier_map",
    "policy_specs",
    "broker_action_specs",
    "event_binding_specs",
]

RESOURCE_NAME = "space0"


def synthesis_rules() -> list[dict[str, Any]]:
    object_rule = {
        "class_name": "SmartObjectSpec",
        "states": {"registered": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "registered",
                "commands": [
                    {
                        "operation": "ss.object.register",
                        "classifier": "ss.object.register",
                        "args_expr": {
                            "object": "objectId", "kind": "kind", "node": "node",
                            "capabilities":
                                "{s.capability: s.value for s in obj.settings}",
                        },
                    },
                ],
            },
            {
                # Identity/kind edits re-register the object in place.
                "source": "registered", "label": "set:objectId",
                "target": "registered",
                "commands": [
                    {
                        "operation": "ss.object.deregister",
                        "classifier": "ss.object.register",
                        "args_expr": {"object": "old", "node": "obj.node"},
                    },
                    {
                        "operation": "ss.object.register",
                        "classifier": "ss.object.register",
                        "args_expr": {
                            "object": "new", "kind": "obj.kind",
                            "node": "obj.node",
                            "capabilities":
                                "{s.capability: s.value for s in obj.settings}",
                        },
                    },
                ],
            },
            {
                "source": "registered", "label": "set:kind",
                "target": "registered",
                "commands": [
                    {
                        "operation": "ss.object.deregister",
                        "classifier": "ss.object.register",
                        "args_expr": {"object": "obj.objectId",
                                      "node": "obj.node"},
                    },
                    {
                        "operation": "ss.object.register",
                        "classifier": "ss.object.register",
                        "args_expr": {
                            "object": "obj.objectId", "kind": "new",
                            "node": "obj.node",
                            "capabilities":
                                "{s.capability: s.value for s in obj.settings}",
                        },
                    },
                ],
            },
            {
                # Node change migrates the object between partitions.
                "source": "registered", "label": "set:node",
                "target": "registered",
                "commands": [
                    {
                        "operation": "ss.object.deregister",
                        "classifier": "ss.object.register",
                        "args_expr": {"object": "obj.objectId", "node": "old"},
                    },
                    {
                        "operation": "ss.object.register",
                        "classifier": "ss.object.register",
                        "args_expr": {
                            "object": "obj.objectId", "kind": "obj.kind",
                            "node": "new",
                            "capabilities":
                                "{s.capability: s.value for s in obj.settings}",
                        },
                    },
                ],
            },
            {
                "source": "registered", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "ss.object.deregister",
                        "classifier": "ss.object.register",
                        "args_expr": {"object": "obj.objectId", "node": "obj.node"},
                    }
                ],
            },
        ],
    }
    setting_rule = {
        "class_name": "Setting",
        "states": {"applied": False},
        "transitions": [
            {
                # Settings of a newly added object travel with its
                # register command; only mark them applied here.
                "source": "initial", "label": "add", "target": "applied",
                "commands": [],
            },
            {
                "source": "applied", "label": "set:value", "target": "applied",
                "commands": [
                    {
                        "operation": "ss.object.configure",
                        "classifier": "ss.object.configure",
                        "args_expr": {
                            "object": "obj.container.objectId",
                            "node": "obj.container.node",
                            "capability": "obj.capability",
                            "value": "new",
                        },
                    }
                ],
            },
            {
                "source": "applied", "label": "set:capability",
                "target": "applied",
                "commands": [
                    {
                        "operation": "ss.object.undefine",
                        "classifier": "ss.object.configure",
                        "args_expr": {
                            "object": "obj.container.objectId",
                            "node": "obj.container.node",
                            "capability": "old",
                        },
                    },
                    {
                        "operation": "ss.object.define",
                        "classifier": "ss.object.configure",
                        "args_expr": {
                            "object": "obj.container.objectId",
                            "node": "obj.container.node",
                            "capability": "new",
                            "value": "obj.value",
                        },
                    },
                ],
            },
            {"source": "applied", "label": "remove", "target": "initial",
             "commands": []},
        ],
    }
    reaction_rule = {
        "class_name": "Reaction",
        "states": {"bound": False},
        "transitions": [
            {
                "source": "initial", "label": "add", "target": "bound",
                "commands": [
                    {
                        "operation": "ss.app.bind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                            "capability": "obj.capability",
                            "value": "obj.value",
                        },
                    }
                ],
            },
            {
                "source": "bound", "label": "set:capability", "target": "bound",
                "commands": [
                    {
                        "operation": "ss.app.unbind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                        },
                    },
                    {
                        "operation": "ss.app.bind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                            "capability": "new",
                            "value": "obj.value",
                        },
                    },
                ],
            },
            {
                # Retargeting unbinds at the OLD target's node and binds
                # at the new one (old_obj still references the old target).
                "source": "bound", "label": "set:target", "target": "bound",
                "commands": [
                    {
                        "operation": "ss.app.unbind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "old_obj.target.objectId",
                            "node": "old_obj.target.node",
                        },
                    },
                    {
                        "operation": "ss.app.bind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                            "capability": "obj.capability",
                            "value": "obj.value",
                        },
                    },
                ],
            },
            {
                # Editing a reaction re-installs its script (unbind+bind).
                "source": "bound", "label": "set:value", "target": "bound",
                "commands": [
                    {
                        "operation": "ss.app.unbind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                        },
                    },
                    {
                        "operation": "ss.app.bind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                            "capability": "obj.capability",
                            "value": "new",
                        },
                    },
                ],
            },
            {
                "source": "bound", "label": "remove", "target": "initial",
                "commands": [
                    {
                        "operation": "ss.app.unbind",
                        "classifier": "ss.app.bind",
                        "args_expr": {
                            "app": "obj.container.name",
                            "trigger": "obj.container.trigger",
                            "object": "obj.target.objectId",
                            "node": "obj.target.node",
                        },
                    }
                ],
            },
        ],
    }
    passive = [
        {
            "class_name": class_name,
            "states": {"known": False},
            "transitions": [
                {"source": "initial", "label": "add", "target": "known",
                 "commands": []},
                {"source": "known", "label": "remove", "target": "initial",
                 "commands": []},
            ],
        }
        for class_name in ("SpaceModel",)
    ]
    user_rule = {
        "class_name": "UserSpec",
        "states": {"known": False},
        "transitions": [
            {"source": "initial", "label": "add", "target": "known",
             "commands": []},
            {"source": "known", "label": "set:userId", "target": "known",
             "commands": []},
            {"source": "known", "label": "set:name", "target": "known",
             "commands": []},
            {"source": "known", "label": "remove", "target": "initial",
             "commands": []},
        ],
    }
    app_rule = {
        "class_name": "UbiApp",
        "states": {"known": False},
        "transitions": [
            {"source": "initial", "label": "add", "target": "known",
             "commands": []},
            {"source": "known", "label": "set:name", "target": "known",
             "commands": []},
            {
                # A trigger change re-installs every reaction's script
                # under the new trigger.
                "source": "known", "label": "set:trigger", "target": "known",
                "commands": [
                    {
                        "operation": "ss.app.unbind",
                        "classifier": "ss.app.bind",
                        "foreach": "obj.reactions",
                        "args_expr": {
                            "app": "obj.name",
                            "trigger": "old",
                            "object": "item.target.objectId",
                            "node": "item.target.node",
                        },
                    },
                    {
                        "operation": "ss.app.bind",
                        "classifier": "ss.app.bind",
                        "foreach": "obj.reactions",
                        "args_expr": {
                            "app": "obj.name",
                            "trigger": "new",
                            "object": "item.target.objectId",
                            "node": "item.target.node",
                            "capability": "item.capability",
                            "value": "item.value",
                        },
                    },
                ],
            },
            {"source": "known", "label": "remove", "target": "initial",
             "commands": []},
        ],
    }
    return [object_rule, setting_rule, reaction_rule, user_rule, app_rule,
            *passive]


def dsc_specs() -> list[dict[str, Any]]:
    return [
        {"name": "ss", "description": "smart-space domain root"},
        {"name": "ss.object", "parent": "ss"},
        {"name": "ss.object.register", "parent": "ss.object"},
        {"name": "ss.object.configure", "parent": "ss.object"},
        {"name": "ss.app", "parent": "ss"},
        {"name": "ss.app.bind", "parent": "ss.app"},
        {"name": "ss.presence", "parent": "ss"},
        {"name": "ss.data", "kind": "data"},
        {"name": "ss.data.capabilities", "kind": "data", "parent": "ss.data"},
    ]


def procedure_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "register_object",
            "classifier": "ss.object.register",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "shb.register",
                                "args_expr": {"object": "object", "kind": "kind",
                                              "capabilities": "capabilities"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "configure_object",
            "classifier": "ss.object.configure",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "shb.configure",
                                "args_expr": {"object": "object",
                                              "capability": "capability",
                                              "value": "value"}}),
                    ("RETURN", {}),
                ]
            },
        },
        {
            "name": "bind_app",
            "classifier": "ss.app.bind",
            "attributes": {"cost": 1.0, "reliability": 0.99},
            "units": {
                "main": [
                    ("BROKER", {"api": "shb.install",
                                "args_expr": {"object": "object",
                                              "trigger": "trigger",
                                              "app": "app",
                                              "capability": "capability",
                                              "value": "value"}}),
                    ("RETURN", {}),
                ]
            },
        },
    ]


def controller_action_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "act-register-object",
            "pattern": "ss.object.register",
            "steps": [
                {"api": "shb.register",
                 "args_expr": {"object": "object", "kind": "kind",
                               "capabilities": "capabilities"}},
            ],
        },
        {
            "name": "act-deregister-object",
            "pattern": "ss.object.deregister",
            "steps": [
                {"api": "shb.deregister", "args_expr": {"object": "object"}},
            ],
        },
        {
            "name": "act-configure-object",
            "pattern": "ss.object.configure",
            "steps": [
                {"api": "shb.configure",
                 "args_expr": {"object": "object", "capability": "capability",
                               "value": "value"}},
            ],
        },
        {
            "name": "act-define-capability",
            "pattern": "ss.object.define",
            "steps": [
                {"api": "shb.define",
                 "args_expr": {"object": "object", "capability": "capability",
                               "value": "value"}},
            ],
        },
        {
            "name": "act-undefine-capability",
            "pattern": "ss.object.undefine",
            "steps": [
                {"api": "shb.undefine",
                 "args_expr": {"object": "object",
                               "capability": "capability"}},
            ],
        },
        {
            "name": "act-bind-app",
            "pattern": "ss.app.bind",
            "steps": [
                {"api": "shb.install",
                 "args_expr": {"object": "object", "trigger": "trigger",
                               "app": "app", "capability": "capability",
                               "value": "value"}},
            ],
        },
        {
            "name": "act-unbind-app",
            "pattern": "ss.app.unbind",
            "steps": [
                {"api": "shb.uninstall",
                 "args_expr": {"object": "object", "trigger": "trigger",
                               "app": "app"}},
            ],
        },
    ]


def classifier_map() -> dict[str, str]:
    return {
        "ss.object.register": "ss.object.register",
        "ss.object.deregister": "ss.object.register",
        "ss.object.configure": "ss.object.configure",
        "ss.object.define": "ss.object.configure",
        "ss.object.undefine": "ss.object.configure",
        "ss.app.*": "ss.app.bind",
    }


def policy_specs() -> list[dict[str, Any]]:
    return [
        {
            "name": "baseline-scoring",
            "condition": "True",
            "weights": {"cost": -1.0, "reliability": 5.0},
        },
    ]


def broker_action_specs() -> list[dict[str, Any]]:
    space = RESOURCE_NAME
    return [
        {
            "name": "shb-register",
            "pattern": "shb.register",
            "steps": [
                {"resource": space, "operation": "register_object",
                 "args_expr": {"object_id": "object", "kind": "kind",
                               "capabilities": "capabilities"}},
            ],
        },
        {
            "name": "shb-deregister",
            "pattern": "shb.deregister",
            "steps": [
                {"resource": space, "operation": "deregister_object",
                 "args_expr": {"object_id": "object"}},
            ],
        },
        {
            "name": "shb-configure",
            "pattern": "shb.configure",
            "steps": [
                {"resource": space, "operation": "configure",
                 "args_expr": {"object_id": "object", "capability": "capability",
                               "value": "value"}},
            ],
        },
        {
            "name": "shb-define",
            "pattern": "shb.define",
            "steps": [
                {"resource": space, "operation": "define_capability",
                 "args_expr": {"object_id": "object",
                               "capability": "capability",
                               "value": "value"}},
            ],
        },
        {
            "name": "shb-undefine",
            "pattern": "shb.undefine",
            "steps": [
                {"resource": space, "operation": "undefine_capability",
                 "args_expr": {"object_id": "object",
                               "capability": "capability"}},
            ],
        },
        {
            "name": "shb-install",
            "pattern": "shb.install",
            "steps": [
                {"resource": space, "operation": "install_script",
                 "args_expr": {
                     "object_id": "object", "trigger": "trigger",
                     "script": "{'app': app, 'capability': capability, 'value': value}",
                 }},
            ],
        },
        {
            # Tolerant: rebind sequences (retarget, trigger change) may
            # unbind a script that an earlier step already replaced.
            "name": "shb-uninstall",
            "pattern": "shb.uninstall",
            "steps": [
                {"resource": space, "operation": "uninstall_script",
                 "args": {"missing_ok": True},
                 "args_expr": {"object_id": "object", "trigger": "trigger",
                               "app": "app"}},
            ],
        },
    ]


def event_binding_specs() -> list[dict[str, Any]]:
    """Asynchronous trigger execution at the object node (Sec. IV-C)."""
    space = RESOURCE_NAME
    return [
        {
            "topic_pattern": f"resource.{space}.object_entered",
            "action": {
                "name": "shb-run-entry-scripts",
                "pattern": "*",
                "steps": [
                    {"resource": space, "operation": "trigger_scripts",
                     "args": {"trigger": "object_entered"}},
                    {"set": "entries", "expr": "state.get('entries', 0) + 1"},
                ],
            },
        },
        {
            "topic_pattern": f"resource.{space}.object_left",
            "action": {
                "name": "shb-run-exit-scripts",
                "pattern": "*",
                "steps": [
                    {"resource": space, "operation": "trigger_scripts",
                     "args": {"trigger": "object_left"}},
                    {"set": "exits", "expr": "state.get('exits', 0) + 1"},
                ],
            },
        },
    ]
