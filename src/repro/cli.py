"""Command-line interface: ``python -m repro <command>``.

Gives middleware engineers the tooling loop the paper envisions —
inspect, validate and conformance-check middleware models, export
metamodels, and run textual application models — without writing code.

Commands:

* ``domains`` — list the shipped domains.
* ``export-metamodel <which>`` — print a metamodel as JSON
  (``md-dsm``, ``scripts``, or a domain DSML name).
* ``export-middleware-model <domain>`` — print a domain's middleware
  model as JSON (the artifact the loader consumes).
* ``inspect <file>`` — summarize a serialized middleware model.
* ``validate <file>`` — structural validation of a middleware model.
* ``conformance <domain> [--model <file>]`` — check a middleware model
  (the domain's shipped one by default) against the domain DSML.
* ``run-cml <file>`` — execute a textual CML scenario on a simulated
  service and print the synthesized commands and service trace.
* ``reproduce`` — regenerate the paper's headline results (E1–E5) in
  one quick pass and print the comparison tables (the full harness
  with shape assertions is ``pytest benchmarks/ --benchmark-only``).
* ``metrics`` — run ``examples/quickstart.py`` under a fresh metrics
  registry and print the per-topic counters and latency histograms
  the signal fabric recorded.
* ``trace`` — run ``examples/quickstart.py`` with causal signal
  tracing enabled and print the trace_id/parent_seq chains.
* ``bench-fabric`` — run the signal-fabric micro-benchmarks and write
  ``BENCH_PR1.json`` (also ``python -m repro.bench.harness``).
* ``bench-faults`` — replay the E5 recovery scenarios under seeded
  fault injection with the Broker fault layer engaged and write
  ``BENCH_PR2.json`` (also ``python -m repro.bench.faults``).
* ``bench-synthesis`` — compare the compiled and interpreted synthesis
  tiers (template microbench, >=5k-object stress synthesis, E1 rerun)
  and write ``BENCH_PR3.json`` (also ``python -m repro.bench.synthesis``).
* ``bench-scale`` — run the sharded-fabric scale benchmark (hundreds of
  concurrent CVM sessions at 1/2/4/8 shards, byte-identical op_logs vs
  the inline baseline) and write ``BENCH_PR4.json`` (also
  ``python -m repro.bench.scale``).
* ``bench-migrate`` — run the session checkpoint/restore and
  live-migration benchmark (all four domains, byte-identical op_logs vs
  uninterrupted runs, migration pause and rebalance throughput) and
  write ``BENCH_PR5.json`` (also ``python -m repro.bench.migrate``).
* ``bench-ingress`` — run the async-ingress admission/shedding benchmark
  (open-loop arrival at 2x the sustainable rate, shedding on vs off,
  byte-identical op_logs for admitted sessions) and write
  ``BENCH_PR6.json`` (also ``python -m repro.bench.ingress``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

from repro.middleware.conformance import check_conformance
from repro.middleware.metamodel import middleware_metamodel
from repro.modeling.constraints import validate_model
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model
from repro.modeling.serialize import (
    metamodel_to_dict,
    model_from_json,
    model_to_json,
)

__all__ = ["main"]


def _domain_registry() -> dict[str, dict[str, Any]]:
    """Lazily import the shipped domains (keeps CLI startup light)."""
    from repro.domains.communication.cml import cml_metamodel
    from repro.domains.communication.cvm import (
        build_middleware_model as build_cvm_model,
    )
    from repro.domains.crowdsensing.csml import csml_metamodel
    from repro.domains.crowdsensing.csvm import (
        build_middleware_model as build_csvm_model,
    )
    from repro.domains.microgrid.mgridml import mgridml_metamodel
    from repro.domains.microgrid.mgridvm import (
        build_middleware_model as build_mgrid_model,
    )
    from repro.domains.smartspace.ssml import ssml_metamodel
    from repro.domains.smartspace.ssvm import build_full_model

    return {
        "communication": {
            "dsml": cml_metamodel,
            "middleware": build_cvm_model,
            "resources": {"net0"},
        },
        "microgrid": {
            "dsml": mgridml_metamodel,
            "middleware": build_mgrid_model,
            "resources": {"plant0"},
        },
        "smartspace": {
            "dsml": ssml_metamodel,
            "middleware": build_full_model,
            "resources": {"space0"},
        },
        "crowdsensing": {
            "dsml": csml_metamodel,
            "middleware": build_csvm_model,
            "resources": {"fleet0"},
        },
    }


def _load_middleware_model(path: str) -> Model:
    with open(path, encoding="utf-8") as handle:
        return model_from_json(handle.read(), middleware_metamodel())


# -- commands -----------------------------------------------------------


def cmd_domains(_args: argparse.Namespace) -> int:
    for name, spec in sorted(_domain_registry().items()):
        dsml: Metamodel = spec["dsml"]()
        print(f"{name:14s} DSML={dsml.name!r} "
              f"classes={len(dsml.classes)} "
              f"resources={sorted(spec['resources'])}")
    return 0


def cmd_export_metamodel(args: argparse.Namespace) -> int:
    which = args.which
    if which == "md-dsm":
        metamodel = middleware_metamodel()
    elif which == "scripts":
        from repro.middleware.synthesis.scripts import script_metamodel

        metamodel = script_metamodel()
    else:
        registry = _domain_registry()
        if which not in registry:
            print(f"unknown metamodel {which!r}; choose md-dsm, scripts, "
                  f"or one of {sorted(registry)}", file=sys.stderr)
            return 2
        metamodel = registry[which]["dsml"]()
    print(json.dumps(metamodel_to_dict(metamodel), indent=2))
    return 0


def cmd_export_middleware_model(args: argparse.Namespace) -> int:
    registry = _domain_registry()
    if args.domain not in registry:
        print(f"unknown domain {args.domain!r}; one of {sorted(registry)}",
              file=sys.stderr)
        return 2
    model = registry[args.domain]["middleware"]()
    print(model_to_json(model))
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    model = _load_middleware_model(args.file)
    root = model.roots[0]
    print(f"middleware model {root.get('name')!r} "
          f"(domain {root.get('domain')!r})")
    for layer_name in ("ui", "synthesis", "controller", "broker"):
        layer = root.get(layer_name)
        if layer is None:
            print(f"  {layer_name:10s} —suppressed—")
            continue
        details = []
        if layer_name == "synthesis":
            details.append(f"rules={len(layer.get('rules'))}")
        if layer_name == "controller":
            details.append(f"dscs={len(layer.get('classifiers'))}")
            details.append(f"procedures={len(layer.get('procedures'))}")
            details.append(f"actions={len(layer.get('actions'))}")
            details.append(f"policies={len(layer.get('policies'))}")
        if layer_name == "broker":
            details.append(f"actions={len(layer.get('actions'))}")
            details.append(f"symptoms={len(layer.get('symptoms'))}")
            details.append(f"plans={len(layer.get('plans'))}")
            details.append(
                "resources="
                + ",".join(
                    str(r.get("name")) for r in layer.get("requiredResources")
                )
            )
        print(f"  {layer_name:10s} {layer.get('name')!r} "
              + " ".join(details))
    print(f"  total elements: {len(model)}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    model = _load_middleware_model(args.file)
    report = validate_model(model)
    if report.ok:
        print(f"OK: {args.file} is a valid middleware model "
              f"({len(model)} elements)")
        return 0
    for diagnostic in report.errors:
        print(str(diagnostic), file=sys.stderr)
    return 1


def cmd_conformance(args: argparse.Namespace) -> int:
    registry = _domain_registry()
    if args.domain not in registry:
        print(f"unknown domain {args.domain!r}; one of {sorted(registry)}",
              file=sys.stderr)
        return 2
    spec = registry[args.domain]
    model = (
        _load_middleware_model(args.model)
        if args.model
        else spec["middleware"]()
    )
    report = check_conformance(
        model, spec["dsml"](), known_resources=spec["resources"]
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_run_cml(args: argparse.Namespace) -> int:
    from repro.domains.communication.cvm import build_cvm
    from repro.sim.network import CommService

    with open(args.file, encoding="utf-8") as handle:
        text = handle.read()
    service = CommService("net0", op_cost=0.0)
    platform = build_cvm(service=service)
    try:
        platform.ui.parse(text, name="cli-scenario")
        result = platform.ui.submit("cli-scenario")
        print("synthesized commands:")
        for command in result.script:
            print(f"  {command}")
        print("service trace:")
        for operation in service.op_log:
            print(f"  {operation}")
        if args.teardown:
            platform.teardown_model()
            print("teardown trace:")
            for operation in service.op_log[len(result.script):]:
                print(f"  {operation}")
    finally:
        platform.stop()
    return 0


def cmd_reproduce(_args: argparse.Namespace) -> int:
    """A quick single-pass regeneration of the Sec. VII results."""
    import time

    from repro.baselines import NonAdaptiveController
    from repro.bench.harness import (
        ResultTable,
        fresh_handcrafted_broker,
        fresh_model_based_broker,
    )
    from repro.bench.loc import loc_report
    from repro.bench.repo_factory import (
        ROOT_CLASSIFIER,
        build_generator,
        build_repository,
    )
    from repro.bench.workloads import COMMUNICATION_SCENARIOS

    # E1 + E5 -------------------------------------------------------------
    e1 = ResultTable(
        "E1/E5: Broker overhead and trace equivalence (paper: +17 %)",
        ["scenario", "model ms", "handcrafted ms", "overhead %", "equal"],
    )
    overheads = []
    for scenario, steps in COMMUNICATION_SCENARIOS.items():
        def timed(factory):
            samples = []
            for _ in range(5):
                _b, service, runner = factory()
                start = time.perf_counter()
                runner.run(steps)
                samples.append(time.perf_counter() - start)
            return min(samples), service
        model_s, model_service = timed(fresh_model_based_broker)
        hand_s, hand_service = timed(fresh_handcrafted_broker)
        overhead = 100.0 * (model_s / hand_s - 1.0)
        overheads.append(overhead)
        e1.add(scenario, model_s * 1000, hand_s * 1000, overhead,
               model_service.op_log == hand_service.op_log)
    e1.add("AVERAGE", "-", "-", sum(overheads) / len(overheads), "-")
    print(e1.render())

    # E2 ---------------------------------------------------------------------
    repository = build_repository(procedures=100)
    e2 = ResultTable(
        "E2: IM generation, 100 procedures "
        "(paper: cold < 120 ms, avg -> ~1 ms @100k)",
        ["cycles", "avg ms/cycle"],
    )
    for cycles in (1, 1000, 100000):
        generator = build_generator(repository)
        start = time.perf_counter()
        for _ in range(cycles):
            generator.generate(ROOT_CLASSIFIER)
        e2.add(cycles, (time.perf_counter() - start) / cycles * 1000)
    print("\n" + e2.render())

    # E3 ---------------------------------------------------------------------
    from repro.bench.workloads import (
        adaptation_wiring,
        adaptation_wiring_reliable,
    )
    from repro.domains.communication.cvm import build_cvm
    from repro.middleware.synthesis.scripts import Command
    from repro.sim.network import CommService

    def stream_command(index):
        return Command(
            "comm.stream.open",
            args={"connection": "c1", "medium": f"m{index}",
                  "kind": "audio", "quality": "standard"},
        )

    def adaptive_run():
        platform = build_cvm(service=CommService("net0"))
        controller = platform.controller
        controller.context.set("adaptation_mode", "dynamic")
        controller.execute_command(
            Command("comm.session.establish", args={"connection": "c1"})
        )
        start = time.perf_counter()
        controller.context.set("network_quality", "poor")
        for index in range(40):
            controller.execute_command(stream_command(index))
        elapsed = time.perf_counter() - start
        platform.stop()
        return elapsed

    def nonadaptive_run():
        platform = build_cvm(service=CommService("net0"))
        controller = NonAdaptiveController(
            platform.broker, adaptation_wiring()
        )
        controller.execute_command(
            Command("comm.session.establish", args={"connection": "c1"})
        )
        start = time.perf_counter()
        controller.redeploy(adaptation_wiring_reliable())
        for index in range(40):
            controller.execute_command(stream_command(index))
        elapsed = time.perf_counter() - start
        platform.stop()
        return elapsed

    adaptive = min(adaptive_run() for _ in range(3))
    nonadaptive = min(nonadaptive_run() for _ in range(3))
    e3 = ResultTable(
        "E3: adaptation response (paper: ~800 vs ~4000 ms, ~5x)",
        ["architecture", "response ms"],
    )
    e3.add("adaptive (IM regeneration)", adaptive * 1000)
    e3.add("non-adaptive (redeploy)", nonadaptive * 1000)
    e3.add("adaptive speedup", f"{nonadaptive / adaptive:.2f}x")
    print("\n" + e3.render())

    # E4 ---------------------------------------------------------------------
    sizes = loc_report()
    e4 = ResultTable(
        "E4: domain artifact size (paper: 1402 -> 1176, -16.1 %)",
        ["metric", "handcrafted", "model-based DSK", "reduction %"],
    )
    e4.add("significant tokens", sizes["handcrafted_tokens"],
           sizes["model_based_tokens"],
           100.0 * sizes["reduction_tokens"] / sizes["handcrafted_tokens"])
    print("\n" + e4.render())
    return 0


def _run_quickstart(*, show_output: bool) -> None:
    """Import and run ``examples/quickstart.py`` in-process."""
    import contextlib
    import importlib.util
    import io
    from pathlib import Path

    script = Path(__file__).resolve().parents[2] / "examples" / "quickstart.py"
    if not script.exists():
        raise FileNotFoundError(
            f"cannot find {script}; run from a source checkout"
        )
    spec = importlib.util.spec_from_file_location("repro_quickstart", script)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if show_output:
        module.main()
        return
    with contextlib.redirect_stdout(io.StringIO()):
        module.main()


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the quickstart under a fresh registry; print what it saw."""
    from repro.runtime.metrics import MetricsRegistry, set_default_registry

    registry = MetricsRegistry()
    if args.faults:
        from repro.bench.faults import breaker_outage_demo

        breaker_outage_demo(metrics=registry)
        if args.json:
            print(registry.to_json(indent=2))
        else:
            print("fault-layer metrics for the breaker outage demo:\n")
            print(registry.render())
        return 0
    previous = set_default_registry(registry)
    try:
        _run_quickstart(show_output=args.show_run)
    finally:
        set_default_registry(previous)
    if args.json:
        print(registry.to_json(indent=2))
    else:
        print("signal-fabric metrics for examples/quickstart.py:\n")
        print(registry.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the quickstart with causal tracing; print the signal forest."""
    from repro.runtime.trace import TraceRecorder

    if args.replay is not None:
        if getattr(args, "slice", False):
            return _trace_replay_slice(args)
        return _trace_replay(args)
    with TraceRecorder(limit=args.limit) as recorder:
        _run_quickstart(show_output=args.show_run)
    min_length = 1 if args.all else 2
    print(
        f"causal signal chains for examples/quickstart.py "
        f"({len(recorder)} signals recorded):\n"
    )
    print(recorder.render(min_length=min_length))
    return 0


def _trace_replay(args: argparse.Namespace) -> int:
    """Deterministically re-execute a session's write-ahead log and
    print the causal signal chains the replay produced.

    The log's latest checkpoint names the domain; its DSK is looked up
    from the shipped domain registry, the platform is rebuilt on a
    virtual clock, and the tail entries re-run with their recorded
    external effects memoized (no external operation executes twice).
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.bench.migrate import domain_cases
    from repro.bench.wal import apply_entry
    from repro.middleware.snapshot import recover_session
    from repro.runtime.clock import VirtualClock
    from repro.runtime.trace import TraceRecorder
    from repro.runtime.wal import WalError, WriteAheadLog

    if not Path(args.replay).is_dir():
        print(f"no log directory at {args.replay!r}", file=sys.stderr)
        return 2
    # replaying seals re-executed entries back into the log, so work on
    # a throwaway copy and leave the original untouched.
    workdir = Path(tempfile.mkdtemp(prefix="trace-replay-"))
    shutil.rmtree(workdir)
    shutil.copytree(args.replay, workdir)
    try:
        wal = WriteAheadLog(workdir, fsync=False)
    except (WalError, OSError) as exc:
        shutil.rmtree(workdir, ignore_errors=True)
        print(f"cannot open log at {args.replay!r}: {exc}", file=sys.stderr)
        return 2
    try:
        sessions: dict[str, list[dict]] = {}
        for _position, doc in wal.replay():
            sessions.setdefault(str(doc.get("session", "")), []).append(doc)
        if not sessions:
            print(f"log at {args.replay!r} holds no frames")
            return 0
        names = sorted(sessions)
        if args.session is not None:
            target = args.session
            if target not in sessions:
                print(
                    f"no session {target!r} in log; it holds {names}",
                    file=sys.stderr,
                )
                return 2
        elif len(names) == 1:
            target = names[0]
        else:
            print(
                f"log holds sessions {names}; pick one with --session",
                file=sys.stderr,
            )
            return 2

        docs = sessions[target]
        entries = [d for d in docs if d.get("k") == "entry"]
        applied = sum(1 for d in docs if d.get("k") == "applied")
        checkpoints = [d for d in docs if d.get("k") == "checkpoint"]
        print(
            f"session {target!r}: {len(entries)} logged entries, "
            f"{applied} applied seals, {len(checkpoints)} checkpoints"
        )
        for doc in entries:
            sig = doc["sig"]
            payload = sig.get("payload") or {}
            op = payload.get("op", "?")
            detail = payload.get("api") or payload.get(
                "model", {}
            ).get("name", "")
            print(
                f"  entry seq={sig.get('seq')} trace={sig.get('trace_id')} "
                f"topic={sig.get('topic')} op={op}"
                + (f" ({detail})" if detail else "")
            )

        if not checkpoints:
            print(
                "\nno checkpoint in the log — nothing to rebuild a "
                "platform from; listing only"
            )
            return 0
        domain = str(checkpoints[-1].get("snapshot", {}).get("domain", ""))
        case = next(
            (c for c in domain_cases() if c.name == domain), None
        )
        if case is None:
            print(
                f"\nunknown domain {domain!r}; cannot re-execute",
                file=sys.stderr,
            )
            return 2
        dsk = case.knowledge(case.service())
        print(f"\nre-executing on a fresh {domain!r} platform (virtual clock):")
        with TraceRecorder(limit=args.limit) as recorder:
            report = recover_session(
                wal,
                session=target,
                apply_entry=apply_entry,
                dsk=dsk,
                clock=VirtualClock(),
            )
        report.platform.stop()
        print(
            f"  replayed {report.replayed_entries} entries "
            f"({report.deduplicated} deduplicated), "
            f"{report.effects_memoized} external effects memoized, "
            f"{report.effects_live} re-executed live, "
            f"{len(report.errors)} errors"
        )
        if args.trace_id is not None:
            chain = recorder.chain_for(args.trace_id)
            if not chain:
                print(f"no signals recorded for trace {args.trace_id}")
                return 0
            print(f"\nchain for trace {args.trace_id}:")
            for record in chain:
                print(f"  {record}")
            return 0
        print(f"\ncausal chains from the replay ({len(recorder)} signals):\n")
        print(recorder.render(min_length=1))
        return 0
    finally:
        wal.close()
        shutil.rmtree(workdir, ignore_errors=True)


def _trace_replay_slice(args: argparse.Namespace) -> int:
    """Reassemble one trace's causal slice from the union of per-shard
    write-ahead logs under ``--replay ROOT``, re-execute its root
    session, and verify the replay reproduces the logged sub-DAG.

    The slice's root entry names its home session; that session is
    rebuilt from its shard log's latest checkpoint (domain looked up
    from the shipped registry) and its tail re-run on a virtual clock
    under a :class:`TraceRecorder`.  Derived signals re-mint fresh
    seqs, so the comparison is structural — see
    :mod:`repro.runtime.walslice`.
    """
    import shutil
    from pathlib import Path

    from repro.bench.migrate import domain_cases
    from repro.bench.wal import apply_entry
    from repro.middleware.snapshot import recover_session
    from repro.runtime import walslice
    from repro.runtime.clock import VirtualClock
    from repro.runtime.trace import TraceRecorder
    from repro.runtime.wal import WriteAheadLog

    root = Path(args.replay)
    if not root.is_dir():
        print(f"no log directory at {args.replay!r}", file=sys.stderr)
        return 2
    workdir = walslice.staging_dir()
    try:
        logs = walslice.stage_logs(root, workdir)
        if not any(log.frames for log in logs):
            print(
                f"no write-ahead frames under {args.replay!r}",
                file=sys.stderr,
            )
            return 2
        census = walslice.trace_census(logs)
        if not census:
            print(f"no logged entries under {args.replay!r}")
            return 0
        if args.trace_id is not None:
            trace_id = args.trace_id
            if trace_id not in census:
                print(
                    f"no trace {trace_id} in these logs; traces: "
                    f"{sorted(census)}",
                    file=sys.stderr,
                )
                return 2
        else:
            multi = [t for t, info in census.items() if info["nodes"] > 1]
            if len(multi) == 1:
                trace_id = multi[0]
            else:
                print(
                    f"{len(logs)} log(s) hold {len(census)} trace(s); "
                    "pick one with --trace-id:"
                )
                shown = 0
                for tid in sorted(
                    census, key=lambda t: -census[t]["nodes"]
                ):
                    info = census[tid]
                    print(
                        f"  trace {tid}: {info['nodes']} signal(s) "
                        f"across {info['logs']} log(s)"
                    )
                    shown += 1
                    if shown >= 20:
                        print(f"  ... {len(census) - shown} more")
                        break
                return 2

        nodes = walslice.collect_slice(logs, trace_id)
        print(
            f"causal slice for trace {trace_id}: {len(nodes)} logged "
            f"signal(s) across {len({n.log for n in nodes})} log(s), "
            f"{len({n.session for n in nodes})} session(s)\n"
        )
        print(walslice.render_slice(nodes))
        roots = [n for n in nodes if n.parent_seq is None]
        if not roots:
            print(
                "\nslice has no root entry in these logs (home shard "
                "log missing?); listing only"
            )
            return 0
        session = roots[0].session
        home = next(
            log
            for log in logs
            if any(
                doc.get("k") == "entry"
                and (doc.get("sig") or {}).get("seq") == roots[0].seq
                for doc in log.frames
            )
        )
        frames = walslice.session_replay_frames(home, session)
        checkpoints = [d for d in frames if d.get("k") == "checkpoint"]
        if not checkpoints:
            print(
                f"\nno checkpoint for session {session!r} in "
                f"{home.label} — cannot rebuild a platform; listing only"
            )
            return 0
        domain = str(checkpoints[-1].get("snapshot", {}).get("domain", ""))
        case = next((c for c in domain_cases() if c.name == domain), None)
        if case is None:
            print(
                f"\nunknown domain {domain!r}; cannot re-execute",
                file=sys.stderr,
            )
            return 2
        scratch = WriteAheadLog(
            workdir / "slice-replay", name="slice", fsync=False
        )
        for doc in frames:
            scratch.append(doc, strict=False)
        dsk = case.knowledge(case.service())
        print(
            f"\nre-executing session {session!r} (home log {home.label}) "
            f"on a fresh {domain!r} platform (virtual clock):"
        )
        try:
            with TraceRecorder(limit=args.limit) as recorder:
                report = recover_session(
                    scratch,
                    session=session,
                    apply_entry=apply_entry,
                    dsk=dsk,
                    clock=VirtualClock(),
                )
            report.platform.stop()
        finally:
            scratch.close()
        print(
            f"  replayed {report.replayed_entries} entries "
            f"({report.deduplicated} deduplicated), "
            f"{report.effects_memoized} effects memoized, "
            f"{len(report.errors)} errors"
        )
        verdict = walslice.verify_slice(nodes, recorder.chain_for(trace_id))
        if verdict.ok:
            print(
                f"\nslice reproduced exactly: all {verdict.logged_nodes} "
                f"logged signal(s) matched structurally "
                f"({verdict.surplus} unlogged intra-platform "
                f"derivation(s) alongside)"
            )
            return 0
        print(f"\nslice NOT reproduced ({len(verdict.missing)} mismatches):")
        for miss in verdict.missing:
            print(f"  {miss}")
        return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def cmd_bench_fabric(args: argparse.Namespace) -> int:
    from repro.bench.harness import write_bench_json

    results = write_bench_json(args.output)
    print(f"wrote {args.output}")
    scaling = results["bus_scaling"]
    print("\nbus routing scaling (per-publish, one matching subscriber):")
    for row in scaling:
        print(
            f"  subscribers={row['subscribers']:<6} "
            f"indexed={row['indexed_us']:.2f}µs "
            f"linear-scan={row['linear_scan_us']:.2f}µs "
            f"speedup={row['speedup']:.1f}x"
        )
    e1 = results["e1"]
    print(
        f"\nE1 broker overhead: model-based {e1['model_ms']:.3f} ms vs "
        f"handcrafted {e1['handcrafted_ms']:.3f} ms "
        f"({e1['mean_overhead_pct']:.1f}% mean overhead)"
    )
    return 0


def cmd_bench_faults(args: argparse.Namespace) -> int:
    from repro.bench.faults import write_bench_json

    results = write_bench_json(args.output)
    print(f"wrote {args.output}")
    recovery = results["recovery"]
    print(
        f"\nE5 under fault injection: {recovery['episodes']} episodes, "
        f"failure rate {recovery['failure_rate']:.0%}, "
        f"{recovery['injected_faults']} faults injected, "
        f"{recovery['retries']} retries, "
        f"{recovery['unhandled_exceptions']} unhandled exceptions"
    )
    latency = recovery["recovery_latency"]
    if latency:
        print(
            f"recovery latency: n={latency['count']} "
            f"p50={latency['p50_us']:.0f}µs p95={latency['p95_us']:.0f}µs"
        )
    outage = results["breaker_outage"]
    chain = " -> ".join(
        transition["to"] for transition in outage["transitions"]
    )
    print(
        f"breaker outage walk: closed -> {chain} "
        f"({outage['rejected_while_open']} calls rejected while open, "
        f"{len(outage['autonomic_requests'])} autonomic requests raised)"
    )
    overhead = results["guard_overhead"]
    print(
        f"guarded-path overhead: bare {overhead['bare_us']:.2f}µs/op, "
        f"policy {overhead['policy_us']:.2f}µs/op, "
        f"policy+breaker {overhead['breaker_us']:.2f}µs/op"
    )
    return 0


def cmd_bench_synthesis(args: argparse.Namespace) -> int:
    from repro.bench.synthesis import write_bench_json

    path = args.output or (
        "BENCH_PR8.json" if args.tier == "aot" else "BENCH_PR3.json"
    )
    results = write_bench_json(path, quick=args.quick, tier=args.tier)
    print(f"wrote {path}")
    micro = results["template_microbench"]
    print(
        f"\ntemplate evaluation: compiled {micro['compiled_us']:.2f}µs vs "
        f"interpreted {micro['interpreted_us']:.2f}µs per render "
        f"({micro['speedup']:.1f}x)"
    )
    stress = results["synthesis_stress"]
    print(
        f"synthesis stress ({stress['objects']} objects, "
        f"{stress['commands']} commands): compiled {stress['compiled_ms']:.1f} ms "
        f"vs interpreted {stress['interpreted_ms']:.1f} ms "
        f"({stress['speedup']:.1f}x, identical scripts: "
        f"{stress['scripts_identical']})"
    )
    e1 = results["e1"]
    if args.tier == "aot":
        equivalence = results["tier_equivalence"]
        print(
            f"tier equivalence: {len(equivalence['domains'])} domains, "
            f"all identical: {equivalence['all_identical']}; edit cycle "
            f"regenerated: "
            f"{equivalence['edit_cycle']['regenerated_after_cycle']}"
        )
        calibrated = e1["calibrated"]
        line = (
            f"E1 overhead (Tier-3): {e1['mean_overhead_pct']:.2f}% "
            f"calibrated floor "
            f"({calibrated['per_step_overhead_us']:.1f}µs/step; median "
            f"cross-check {calibrated['median_overhead_pct']:.2f}%; "
            f"structural "
            f"{e1['structural']['per_step_overhead_us']:.1f}µs/step); "
            f"gate <= {results['gate_pct']}%, met: "
            f"{results['meets_e1_gate']}"
        )
        baseline = results.get("baseline_e1_mean_overhead_pct")
        if baseline is not None:
            line += f"; BENCH_PR4 baseline was {baseline:.1f}%"
        print(line)
        return 0
    line = (
        f"E1 mean overhead: {e1['mean_overhead_pct']:.1f}% "
        f"(model {e1['model_ms']:.3f} ms vs handcrafted "
        f"{e1['handcrafted_ms']:.3f} ms)"
    )
    baseline = results.get("baseline_e1_mean_overhead_pct")
    if baseline is not None:
        line += f"; BENCH_PR1 baseline was {baseline:.1f}%"
    print(line)
    return 0


def cmd_aot_gen(args: argparse.Namespace) -> int:
    from repro.bench.migrate import _fresh_session, domain_cases
    from repro.modeling.aotgen import (
        dsk_fingerprint,
        dsk_hash,
        generate_module_source,
        read_cached_source,
        write_cached_source,
    )

    cases = {case.name: case for case in domain_cases()}
    if args.domain not in cases:
        print(
            f"unknown domain {args.domain!r} "
            f"(choose from: {', '.join(sorted(cases))})"
        )
        return 2
    _service, _dsk, platform = _fresh_session(cases[args.domain])
    try:
        rules = platform.synthesis.interpreter._rules
        actions = list(platform.broker.calls._actions)
        dsml = platform.dsml
        digest = dsk_hash(
            dsk_fingerprint(rules=rules, actions=actions, dsml=dsml)
        )
        source = None
        if args.cache_dir:
            source = read_cached_source(args.cache_dir, digest)
            if source is not None:
                print(f"cache hit: aot-{digest}.py in {args.cache_dir}")
        if source is None:
            source = generate_module_source(
                rules=rules, actions=actions, dsml=dsml,
                domain=platform.domain,
            )
            if args.cache_dir:
                write_cached_source(args.cache_dir, digest, source)
                print(f"cached as aot-{digest}.py in {args.cache_dir}")
    finally:
        platform.stop()
    if args.output == "-":
        sys.stdout.write(source)
        return 0
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(source)
    print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    return 0


def cmd_bench_scale(args: argparse.Namespace) -> int:
    from repro.bench.scale import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    scale = results["scale"]
    print(
        f"\nsharded fabric: {scale['sessions']} concurrent sessions, "
        f"{scale['scenarios']} scenarios"
    )
    for run in scale["runs"]:
        print(
            f"  shards={run['shards']:<2} elapsed={run['elapsed_s']:.3f}s "
            f"sessions/s={run['sessions_per_s']:.0f} "
            f"signals/s={run['signals_per_s']:.0f} "
            f"forwarded={run['channel']['forwarded']} "
            f"op_logs_identical={run['op_logs_identical']}"
        )
    speedup = scale["speedup_signals_4_shards_vs_1"]
    if speedup is not None:
        print(
            f"aggregate throughput at 4 shards: {speedup:.2f}x the "
            f"1-shard run (bar: >= 2x, met: {scale['meets_2x_at_4_shards']})"
        )
    e1 = results["e1"]
    line = f"E1 mean overhead: {e1['mean_overhead_pct']:.1f}%"
    baseline = results.get("baseline_e1_mean_overhead_pct")
    if baseline is not None:
        line += f"; BENCH_PR3 baseline was {baseline:.1f}%"
    print(line)
    return 0


def cmd_bench_migrate(args: argparse.Namespace) -> int:
    from repro.bench.migrate import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    recovery = results["recovery"]
    print(
        f"\ncheckpoint/kill/restore: {len(recovery['domains'])} domains, "
        f"op_logs identical={recovery['all_identical']}, "
        f"median capture {recovery['median_capture_ms']:.2f} ms, "
        f"median restore {recovery['median_restore_ms']:.2f} ms"
    )
    migration = results["migration"]
    print(
        f"live migration: op_logs identical={migration['all_identical']}, "
        f"median pause {migration['median_pause_ms']:.2f} ms"
    )
    checkpoint = results["checkpoint"]
    print(
        f"idle-scheduler overhead on E1 steps: "
        f"{checkpoint['overhead_pct']:.2f}% "
        f"(gate <= {checkpoint['gate_pct']}%, met: "
        f"{checkpoint['meets_gate']}); checkpoint cost "
        f"{checkpoint['checkpoint_ms']:.2f} ms, "
        f"{checkpoint['snapshot_bytes']} bytes"
    )
    rebalance = results["rebalance"]
    print(
        f"rebalance: {rebalance['moves']} moves over "
        f"{rebalance['shards']} shards, throughput "
        f"{rebalance['throughput_before_steps_per_s']:.0f} -> "
        f"{rebalance['throughput_after_steps_per_s']:.0f} steps/s "
        f"({rebalance['speedup']:.2f}x), imbalance "
        f"{rebalance['imbalance_before']:.1f} -> "
        f"{rebalance['imbalance_after']:.1f}"
    )
    return 0


def cmd_bench_ingress(args: argparse.Namespace) -> int:
    from repro.bench.ingress import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    ingress = results["ingress"]
    capacity = ingress["capacity"]
    print(
        f"\nasync ingress: {ingress['sessions']} sessions over "
        f"{ingress['shards']} shards, closed-loop capacity "
        f"{capacity['capacity_steps_per_s']:.0f} steps/s"
    )
    unloaded = ingress["unloaded"]
    shed_on = ingress["overload_shed_on"]
    shed_off = ingress["overload_shed_off"]
    print(
        f"unloaded p99 {unloaded['latency_p99_ms']:.2f} ms; at "
        f"{ingress['overload_factor']:.0f}x overload: shedding on "
        f"p99 {shed_on['latency_p99_ms']:.2f} ms "
        f"({ingress['p99_ratio_shed_on_vs_unloaded']:.2f}x), shedding off "
        f"p99 {shed_off['latency_p99_ms']:.2f} ms "
        f"({ingress['p99_ratio_shed_off_vs_unloaded']:.2f}x)"
    )
    print(
        f"goodput with shedding: "
        f"{ingress['goodput_fraction_of_capacity']:.0%} of capacity "
        f"({shed_on['shed_entry_sessions']} of {shed_on['sessions']} "
        f"sessions shed at entry, {shed_on['shed_midway_sessions']} midway)"
    )
    determinism = ingress["determinism"]
    print(
        f"seeded shed decisions deterministic: "
        f"{determinism['deterministic']} "
        f"({determinism['sheds']}/{determinism['arrivals']} arrivals shed); "
        f"unhandled exceptions: {ingress['unhandled_exceptions']}; "
        f"op_log mismatches: {len(ingress['op_log_mismatches'])}"
    )
    print(
        f"gates: p99 <= 3x unloaded met={ingress['meets_p99_gate']}, "
        f"goodput >= 80% of capacity met={ingress['meets_goodput_gate']}"
    )
    return 0


def cmd_bench_wal(args: argparse.Namespace) -> int:
    from repro.bench.wal import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    kill = results["kill_recovery"]
    print(
        f"\nkill-mid-workload recovery: {len(kill['domains'])} domains, "
        f"op_logs identical={kill['all_identical']}, "
        f"median recover {kill['median_recover_ms']:.2f} ms"
    )
    fabric = results["fabric_kill"]
    print(
        f"fabric shard kill ({fabric['shards']} shards, killed after "
        f"{fabric['killed_after']}/{fabric['steps']} steps): "
        f"op_log identical={fabric['op_log_identical']}, "
        f"{fabric['effects_memoized']} effects memoized, "
        f"recover {fabric['recover_ms']:.2f} ms"
    )
    e1 = results["e1_overhead"]
    calibrated = e1["calibrated"]
    print(
        f"WAL-on E1 overhead: {calibrated['overhead_pct']:.2f}% "
        f"({calibrated['per_step_overhead_us']:.1f}µs/step on "
        f"{calibrated['bare_ms'] / e1['steps'] * 1000:.0f}µs steps; "
        f"gate <= {e1['gate_pct']}%, met: {e1['meets_gate']}; "
        f"structural {e1['structural']['per_step_overhead_us']:.1f}µs/step "
        f"at op_cost=0)"
    )
    for profile in e1["sync_profiles"]:
        print(
            f"  durability pricing: sync_every={profile['sync_every']} "
            f"fsync={profile['fsync']}: "
            f"{profile['per_entry_us']:.0f}µs/entry"
        )
    latency = results["recovery_latency"]
    print(
        f"recovery latency: snapshot-only "
        f"{latency['snapshot_only_ms']:.2f} ms, "
        f"+{latency['per_tail_entry_us']:.0f}µs per tail entry"
    )
    return 0


def cmd_bench_cluster(args: argparse.Namespace) -> int:
    from repro.bench.cluster import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    throughput = results["throughput"]
    print(
        f"\nprocess fabric: {throughput['sessions']} interleaved sessions"
    )
    for run in throughput["runs"]:
        print(
            f"  workers={run['workers']:<2} elapsed={run['elapsed_s']:.3f}s "
            f"steps/s={run['steps_per_s']:.0f} "
            f"sessions/s={run['sessions_per_s']:.0f} "
            f"op_logs_identical={run['op_logs_identical']}"
        )
    speedup = throughput["speedup_steps_4_workers_vs_1"]
    if speedup is not None:
        print(
            f"step throughput at 4 workers: {speedup:.2f}x the 1-worker "
            f"run (bar: >= 3x, met: {throughput['meets_3x_at_4_workers']})"
        )
    migration = results["migration"]
    pauses = [row["pause_ms"] for row in migration["domains"]]
    print(
        f"cross-process migration: {len(migration['domains'])} domains, "
        f"op_logs identical={migration['all_identical']}, "
        f"pauses {min(pauses):.1f}-{max(pauses):.1f} ms"
    )
    fault = results["fault"]
    print(
        f"kill-a-worker: {fault['rejected_worker_dead']} typed "
        f"WORKER_DEAD rejections, {fault['unresolved_futures']} unresolved "
        f"futures, {fault['untyped_failures']} untyped failures, "
        f"{fault['restarts']} restart(s), "
        f"op_logs identical={fault['op_logs_identical']}"
    )
    determinism = results["determinism"]
    print(
        f"seeded frame ordering: {determinism['runs']} runs at seed "
        f"{determinism['seed']}, "
        f"op_logs identical={determinism['op_logs_identical']}"
    )
    return 0


def cmd_bench_walfabric(args: argparse.Namespace) -> int:
    from repro.bench.walfabric import write_bench_json

    results = write_bench_json(args.output, quick=args.quick)
    print(f"wrote {args.output}")
    adoption = results["adoption"]
    print(
        f"\nstandby adoption: {adoption['victim_sessions']} of "
        f"{adoption['sessions']} sessions lost with the killed worker, "
        f"{adoption['adopted_sessions']} adopted onto worker "
        f"{adoption['adoption_target']} "
        f"({adoption['replayed_entries']} WAL entries replayed), "
        f"{adoption['rejected_worker_dead']} typed WORKER_DEAD "
        f"rejections resubmitted, "
        f"{adoption['unresolved_futures']} unresolved futures, "
        f"op_logs identical={adoption['op_logs_identical']}"
    )
    e1 = results["e1_pool_overhead"]
    calibrated = e1["calibrated"]
    structural = e1["structural"]
    print(
        f"durable-pool E1 overhead (calibrated, op_cost="
        f"{calibrated['op_cost']}): {calibrated['overhead_pct']:.2f}% "
        f"({calibrated['per_step_overhead_us']:.1f} us/step on "
        f"{calibrated['bare_ms'] / e1['steps'] * 1000:.0f} us) "
        f"(gate: <= {e1['gate_pct']}%, met: {e1['meets_gate']})"
    )
    print(
        f"  structural (op_cost=0, diagnostic): "
        f"{structural['overhead_pct']:.1f}%; fabric end-to-end delta "
        f"{e1['fabric']['per_step_delta_us']:+.1f} us/step "
        f"(pair spread {e1['fabric']['pair_spread_us']:.0f} us, "
        f"diagnostic)"
    )
    slices = results["slice_replay"]
    print(
        f"causal-slice replay: {slices['traces_checked']} traces "
        f"({slices['cross_log_traces']} spanning >1 shard log), "
        f"all reproduced={slices['all_reproduced']}"
    )
    return 0


# -- argument parsing -----------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MD-DSM tooling (reproduction of Costa et al., "
                    "ICDCS 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("domains", help="list shipped domains")

    export_mm = sub.add_parser(
        "export-metamodel", help="print a metamodel as JSON"
    )
    export_mm.add_argument("which", help="md-dsm | scripts | <domain>")

    export_mw = sub.add_parser(
        "export-middleware-model",
        help="print a domain's middleware model as JSON",
    )
    export_mw.add_argument("domain")

    inspect = sub.add_parser("inspect", help="summarize a middleware model")
    inspect.add_argument("file")

    validate = sub.add_parser("validate", help="validate a middleware model")
    validate.add_argument("file")

    conformance = sub.add_parser(
        "conformance", help="check middleware-model/DSML conformance"
    )
    conformance.add_argument("domain")
    conformance.add_argument(
        "--model", help="middleware-model JSON (default: the shipped model)"
    )

    run_cml = sub.add_parser(
        "run-cml", help="execute a textual CML scenario on a simulated service"
    )
    run_cml.add_argument("file")
    run_cml.add_argument("--teardown", action="store_true",
                         help="also tear the scenario down afterwards")

    sub.add_parser(
        "reproduce",
        help="regenerate the paper's headline results in one quick pass",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run examples/quickstart.py and print signal-fabric metrics",
    )
    metrics.add_argument("--json", action="store_true",
                         help="emit the registry snapshot as JSON")
    metrics.add_argument("--faults", action="store_true",
                         help="run the circuit-breaker outage demo instead "
                              "and print the fault-layer metrics")
    metrics.add_argument("--show-run", action="store_true",
                         help="also show the quickstart's own output")

    trace = sub.add_parser(
        "trace",
        help="run examples/quickstart.py and print causal signal chains",
    )
    trace.add_argument("--all", action="store_true",
                       help="include single-signal chains")
    trace.add_argument("--limit", type=int, default=100_000,
                       help="max signals to record")
    trace.add_argument("--show-run", action="store_true",
                       help="also show the quickstart's own output")
    trace.add_argument("--replay", metavar="WAL_DIR",
                       help="instead of the quickstart: deterministically "
                            "re-execute a session's write-ahead log and "
                            "trace the replay")
    trace.add_argument("--session",
                       help="with --replay: which session to replay "
                            "(default: the only one in the log)")
    trace.add_argument("--trace-id", type=int,
                       help="with --replay: print only this causal chain")
    trace.add_argument("--slice", action="store_true",
                       help="with --replay: treat WAL_DIR as a fabric root "
                            "of per-shard logs, reassemble one trace's "
                            "causal slice from their union, re-execute its "
                            "root session, and verify the replay reproduces "
                            "the logged sub-DAG")

    bench = sub.add_parser(
        "bench-fabric",
        help="run signal-fabric micro-benchmarks and write BENCH_PR1.json",
    )
    bench.add_argument("--output", default="BENCH_PR1.json")

    bench_faults = sub.add_parser(
        "bench-faults",
        help="run E5 recovery under seeded fault injection and write "
             "BENCH_PR2.json",
    )
    bench_faults.add_argument("--output", default="BENCH_PR2.json")

    bench_synthesis = sub.add_parser(
        "bench-synthesis",
        help="compare compiled vs interpreted synthesis and write "
             "BENCH_PR3.json",
    )
    bench_synthesis.add_argument(
        "--output", default=None,
        help="report path (default: BENCH_PR3.json, or BENCH_PR8.json "
             "with --tier aot)",
    )
    bench_synthesis.add_argument(
        "--quick", action="store_true",
        help="smaller workloads (CI perf-smoke)",
    )
    bench_synthesis.add_argument(
        "--tier", choices=("compiled", "aot"), default="compiled",
        help="synthesis tier under test: 'compiled' (Tier-2, PR 3 "
             "report) or 'aot' (Tier-3 generated modules, PR 8 report "
             "with the tier-equivalence check and the gated E1 sweep)",
    )

    aot_gen = sub.add_parser(
        "aot-gen",
        help="emit the Tier-3 generated Python module for a domain's "
             "DSK (deterministic: same DSK -> same source)",
    )
    aot_gen.add_argument(
        "--domain", default="communication",
        help="domain whose DSK to compile (default: communication)",
    )
    aot_gen.add_argument(
        "--output", default="-",
        help="file to write the module source to ('-' for stdout)",
    )
    aot_gen.add_argument(
        "--cache-dir", default=None,
        help="also read/write the disk module cache keyed by DSK_HASH "
             "(the cluster workers' cold-start cache)",
    )

    bench_scale = sub.add_parser(
        "bench-scale",
        help="run the sharded-fabric scale benchmark and write "
             "BENCH_PR4.json",
    )
    bench_scale.add_argument("--output", default="BENCH_PR4.json")
    bench_scale.add_argument(
        "--quick", action="store_true",
        help="smaller workload (CI scale-smoke)",
    )

    bench_migrate = sub.add_parser(
        "bench-migrate",
        help="run the session checkpoint/restore and live-migration "
             "benchmark and write BENCH_PR5.json",
    )
    bench_migrate.add_argument("--output", default="BENCH_PR5.json")
    bench_migrate.add_argument(
        "--quick", action="store_true",
        help="fewer repeats (CI migrate-smoke)",
    )

    bench_ingress = sub.add_parser(
        "bench-ingress",
        help="run the async-ingress admission/shedding benchmark and "
             "write BENCH_PR6.json",
    )
    bench_ingress.add_argument("--output", default="BENCH_PR6.json")
    bench_ingress.add_argument(
        "--quick", action="store_true",
        help="smaller workload, perf gates report-only (CI ingress-smoke)",
    )

    bench_wal = sub.add_parser(
        "bench-wal",
        help="run the durable-WAL kill/recovery and overhead benchmark "
             "and write BENCH_PR7.json",
    )
    bench_wal.add_argument("--output", default="BENCH_PR7.json")
    bench_wal.add_argument(
        "--quick", action="store_true",
        help="fewer repeats, perf gate report-only (CI wal-smoke)",
    )

    bench_cluster = sub.add_parser(
        "bench-cluster",
        help="run the multi-process session-fabric benchmark and write "
             "BENCH_PR9.json",
    )
    bench_cluster.add_argument("--output", default="BENCH_PR9.json")
    bench_cluster.add_argument(
        "--quick", action="store_true",
        help="smaller workload, speedup gate report-only "
             "(CI cluster-smoke)",
    )

    bench_walfabric = sub.add_parser(
        "bench-walfabric",
        help="run the durable-fabric benchmark (standby adoption, "
             "durable-pool E1 overhead, causal-slice replay) and write "
             "BENCH_PR10.json",
    )
    bench_walfabric.add_argument("--output", default="BENCH_PR10.json")
    bench_walfabric.add_argument(
        "--quick", action="store_true",
        help="smaller workload, overhead gate report-only "
             "(CI walfabric-smoke)",
    )
    return parser


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "domains": cmd_domains,
    "export-metamodel": cmd_export_metamodel,
    "export-middleware-model": cmd_export_middleware_model,
    "inspect": cmd_inspect,
    "validate": cmd_validate,
    "conformance": cmd_conformance,
    "run-cml": cmd_run_cml,
    "reproduce": cmd_reproduce,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "bench-fabric": cmd_bench_fabric,
    "bench-faults": cmd_bench_faults,
    "bench-synthesis": cmd_bench_synthesis,
    "aot-gen": cmd_aot_gen,
    "bench-scale": cmd_bench_scale,
    "bench-migrate": cmd_bench_migrate,
    "bench-ingress": cmd_bench_ingress,
    "bench-wal": cmd_bench_wal,
    "bench-cluster": cmd_bench_cluster,
    "bench-walfabric": cmd_bench_walfabric,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
