"""repro: a reproduction of "Model-Driven Domain-Specific Middleware"
(Costa, Morris, Kon, Clarke — ICDCS 2017).

Subpackages:

* :mod:`repro.modeling` — EMF-equivalent metamodeling kernel.
* :mod:`repro.runtime` — generic runtime environment.
* :mod:`repro.middleware` — the MD-DSM stack (four-layer architecture).
* :mod:`repro.sim` — simulated underlying resources.
* :mod:`repro.domains` — the four case-study platforms
  (communication, microgrid, smart spaces, crowdsensing).
* :mod:`repro.baselines` — handcrafted/non-adaptive comparators.
* :mod:`repro.bench` — benchmark harness utilities.
"""

__version__ = "1.0.0"
