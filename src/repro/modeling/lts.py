"""Labeled transition systems (LTS).

The paper's Synthesis layer encodes "the domain-specific semantics of
model synthesis" as labeled transition systems (Sec. V-A/V-B, following
Allison et al. [11]): the change interpreter consumes a change list and
walks a per-entity LTS whose transitions are guarded by the change kind
and context, emitting control-script commands as transition actions.

An :class:`LTS` here is a deterministic-by-priority machine: states,
and transitions ``(source, label, guard, actions, target)``.  Guards
are safe expression strings (see :mod:`repro.modeling.expr`) evaluated
against a caller-provided context; actions are opaque payloads the
interpreter turns into commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.modeling.expr import Expression, compile_expression

__all__ = ["LTSError", "State", "Transition", "LTS", "LTSExecution"]


class LTSError(Exception):
    """Raised on malformed machines or invalid execution steps."""


@dataclass(frozen=True)
class State:
    """A named LTS state."""

    name: str
    final: bool = False


@dataclass
class Transition:
    """A guarded, labeled transition emitting actions when taken."""

    source: str
    label: str
    target: str
    guard: str | None = None
    actions: tuple[Any, ...] = ()
    priority: int = 0
    _compiled_guard: Expression | None = field(default=None, repr=False, compare=False)

    def guard_holds(self, context: Mapping[str, Any]) -> bool:
        if self.guard is None:
            return True
        if self._compiled_guard is None:
            self._compiled_guard = compile_expression(self.guard)
        return bool(self._compiled_guard.evaluate_fast(context))


class LTS:
    """A labeled transition system with guarded transitions.

    Transition selection on ``step(label, context)``: among transitions
    from the current state with a matching label whose guard holds,
    the highest-priority one (ties: declaration order) is taken.
    """

    def __init__(self, name: str, *, initial: str = "initial") -> None:
        self.name = name
        self.initial = initial
        self.states: dict[str, State] = {}
        self._transitions: list[Transition] = []
        self._index: dict[tuple[str, str], tuple[Transition, ...]] | None = None
        self.add_state(initial)

    # -- construction -------------------------------------------------

    def add_state(self, name: str, *, final: bool = False) -> State:
        if name in self.states:
            existing = self.states[name]
            if final and not existing.final:
                self.states[name] = State(name, final=True)
            return self.states[name]
        state = State(name, final=final)
        self.states[name] = state
        return state

    def add_transition(
        self,
        source: str,
        label: str,
        target: str,
        *,
        guard: str | None = None,
        actions: tuple[Any, ...] | list[Any] = (),
        priority: int = 0,
    ) -> Transition:
        self.add_state(source)
        self.add_state(target)
        transition = Transition(
            source=source,
            label=label,
            target=target,
            guard=guard,
            actions=tuple(actions),
            priority=priority,
        )
        self._transitions.append(transition)
        self._index = None
        return transition

    # -- queries -------------------------------------------------------

    def transitions_from(self, state: str) -> list[Transition]:
        return [t for t in self._transitions if t.source == state]

    def indexed_transitions(self, state: str, label: str) -> tuple[Transition, ...]:
        """Transitions for ``(state, label)``, pre-sorted by priority
        (ties: declaration order).  The index is built once per machine
        shape, so executions do dict hits instead of list scans."""
        index = self._index
        if index is None:
            by_key: dict[tuple[str, str], list[Transition]] = {}
            for t in self._transitions:
                by_key.setdefault((t.source, t.label), []).append(t)
            index = self._index = {
                key: tuple(sorted(ts, key=lambda t: -t.priority))
                for key, ts in by_key.items()
            }
        return index.get((state, label), ())

    def labels(self) -> set[str]:
        return {t.label for t in self._transitions}

    def check(self) -> None:
        """Verify well-formedness: all endpoints exist, initial exists."""
        if self.initial not in self.states:
            raise LTSError(f"LTS {self.name!r}: missing initial state")
        for t in self._transitions:
            if t.source not in self.states or t.target not in self.states:
                raise LTSError(
                    f"LTS {self.name!r}: dangling transition {t.source}->{t.target}"
                )

    def reachable_states(self) -> set[str]:
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for t in self.transitions_from(state):
                if t.target not in seen:
                    seen.add(t.target)
                    frontier.append(t.target)
        return seen

    def unreachable_states(self) -> set[str]:
        return set(self.states) - self.reachable_states()

    def new_execution(self, *, state: str | None = None) -> "LTSExecution":
        return LTSExecution(self, state=state or self.initial)

    def __repr__(self) -> str:
        return (
            f"LTS({self.name!r}, states={len(self.states)}, "
            f"transitions={len(self._transitions)})"
        )


class LTSExecution:
    """A mutable execution (current state + trace) over an LTS."""

    def __init__(self, lts: LTS, *, state: str) -> None:
        if state not in lts.states:
            raise LTSError(f"unknown state {state!r} in LTS {lts.name!r}")
        lts.check()
        self.lts = lts
        self.state = state
        self.trace: list[Transition] = []

    @property
    def in_final_state(self) -> bool:
        return self.lts.states[self.state].final

    def enabled(
        self, label: str, context: Mapping[str, Any] | None = None
    ) -> list[Transition]:
        """Transitions enabled for ``label`` in the current state."""
        env = context or {}
        return [
            t
            for t in self.lts.indexed_transitions(self.state, label)
            if t.guard_holds(env)
        ]

    def can_step(self, label: str, context: Mapping[str, Any] | None = None) -> bool:
        return bool(self.enabled(label, context))

    def step(
        self, label: str, context: Mapping[str, Any] | None = None
    ) -> tuple[Any, ...]:
        """Take the best enabled transition; return its actions.

        Raises :class:`LTSError` if no transition is enabled — the
        change interpreter treats that as an invalid model evolution.
        """
        candidates = self.enabled(label, context)
        if not candidates:
            raise LTSError(
                f"LTS {self.lts.name!r}: no transition for label {label!r} "
                f"from state {self.state!r}"
            )
        transition = candidates[0]
        self.state = transition.target
        self.trace.append(transition)
        return transition.actions

    def try_step(
        self, label: str, context: Mapping[str, Any] | None = None
    ) -> tuple[Any, ...] | None:
        """Like :meth:`step` but returns None when no transition is enabled."""
        candidates = self.enabled(label, context)
        if not candidates:
            return None
        transition = candidates[0]
        self.state = transition.target
        self.trace.append(transition)
        return transition.actions

    def run(
        self,
        labels: Iterator[str] | list[str],
        context: Mapping[str, Any] | None = None,
    ) -> list[Any]:
        """Step through a label sequence, collecting all emitted actions."""
        emitted: list[Any] = []
        for label in labels:
            emitted.extend(self.step(label, context))
        return emitted

    def __repr__(self) -> str:
        return f"LTSExecution({self.lts.name!r}, state={self.state!r})"
