"""Code-template engine for the component factory.

The paper's runtime environment "generates each middleware component
based on code templates that are parameterized with metadata from the
middleware model" (Sec. V-A).  This module provides that template
mechanism: a tiny, dependency-free text templater with

* ``${expr}`` substitution (safe expressions, see
  :mod:`repro.modeling.expr`),
* ``%for x in expr% ... %end%`` loops,
* ``%if expr% ... %elif expr% ... %else% ... %end%`` conditionals.

Templates render to text; the component factory also uses them to
render *specifications* (dicts) by templating JSON snippets.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from repro.modeling.expr import Expression, ExpressionError

__all__ = ["TemplateError", "Template", "render"]


class TemplateError(Exception):
    """Raised on malformed templates or failing substitutions."""


_TOKEN_RE = re.compile(
    r"\$\{(?P<subst>[^{}]+)\}"
    r"|%(?P<directive>for|if|elif|else|end)(?P<rest>[^%]*)%"
)


class _Node:
    def render(self, env: dict[str, Any], out: list[str]) -> None:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, env: dict[str, Any], out: list[str]) -> None:
        out.append(self.text)


class _Subst(_Node):
    def __init__(self, source: str) -> None:
        try:
            self.expression = Expression(source)
        except ExpressionError as exc:
            raise TemplateError(f"bad substitution ${{{source}}}: {exc}") from exc

    def render(self, env: dict[str, Any], out: list[str]) -> None:
        try:
            value = self.expression.evaluate(env)
        except ExpressionError as exc:
            raise TemplateError(str(exc)) from exc
        out.append("" if value is None else str(value))


class _For(_Node):
    def __init__(self, var: str, source: str, body: list[_Node]) -> None:
        if not var.isidentifier():
            raise TemplateError(f"bad loop variable {var!r}")
        self.var = var
        try:
            self.iterable = Expression(source)
        except ExpressionError as exc:
            raise TemplateError(f"bad loop expression {source!r}: {exc}") from exc
        self.body = body

    def render(self, env: dict[str, Any], out: list[str]) -> None:
        try:
            items = self.iterable.evaluate(env)
        except ExpressionError as exc:
            raise TemplateError(str(exc)) from exc
        for item in items:
            scoped = dict(env)
            scoped[self.var] = item
            for node in self.body:
                node.render(scoped, out)


class _If(_Node):
    def __init__(self, branches: list[tuple[Expression | None, list[_Node]]]) -> None:
        self.branches = branches

    def render(self, env: dict[str, Any], out: list[str]) -> None:
        for condition, body in self.branches:
            taken = condition is None
            if condition is not None:
                try:
                    taken = bool(condition.evaluate(env))
                except ExpressionError as exc:
                    raise TemplateError(str(exc)) from exc
            if taken:
                for node in body:
                    node.render(env, out)
                return


class Template:
    """A compiled template.

    >>> Template("Hello ${name}!").render({"name": "world"})
    'Hello world!'
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self._nodes, rest = self._parse(source, 0, terminators=())
        if rest != len(source):
            raise TemplateError("unexpected %end% without opening directive")

    def render(self, context: Mapping[str, Any] | None = None) -> str:
        env = dict(context or {})
        out: list[str] = []
        for node in self._nodes:
            node.render(env, out)
        return "".join(out)

    # -- parser ---------------------------------------------------------

    def _parse(
        self, source: str, pos: int, *, terminators: tuple[str, ...]
    ) -> tuple[list[_Node], int]:
        """Parse until one of ``terminators`` or end of input.

        Returns (nodes, position-after-consumed-input).  For terminator
        directives, the position points *at* the directive token so the
        caller can inspect it.
        """
        nodes: list[_Node] = []
        while pos < len(source):
            match = _TOKEN_RE.search(source, pos)
            if match is None:
                nodes.append(_Text(source[pos:]))
                return nodes, len(source)
            if match.start() > pos:
                nodes.append(_Text(source[pos:match.start()]))
            if match.group("subst") is not None:
                nodes.append(_Subst(match.group("subst").strip()))
                pos = match.end()
                continue
            directive = match.group("directive")
            rest = (match.group("rest") or "").strip()
            if directive in terminators:
                return nodes, match.start()
            if directive == "for":
                loop_match = re.fullmatch(r"\s*(\w+)\s+in\s+(.+)", match.group("rest"))
                if loop_match is None:
                    raise TemplateError(f"malformed %for{match.group('rest')}%")
                body, body_end = self._parse(
                    source, match.end(), terminators=("end",)
                )
                end_match = _TOKEN_RE.match(source, body_end)
                if end_match is None or end_match.group("directive") != "end":
                    raise TemplateError("%for% without matching %end%")
                nodes.append(
                    _For(loop_match.group(1), loop_match.group(2).strip(), body)
                )
                pos = end_match.end()
                continue
            if directive == "if":
                branches: list[tuple[Expression | None, list[_Node]]] = []
                condition_src = rest
                cursor = match.end()
                while True:
                    body, body_end = self._parse(
                        source, cursor, terminators=("elif", "else", "end")
                    )
                    try:
                        condition = (
                            Expression(condition_src)
                            if condition_src is not None
                            else None
                        )
                    except ExpressionError as exc:
                        raise TemplateError(
                            f"bad condition {condition_src!r}: {exc}"
                        ) from exc
                    branches.append((condition, body))
                    next_match = _TOKEN_RE.match(source, body_end)
                    if next_match is None:
                        raise TemplateError("%if% without matching %end%")
                    next_directive = next_match.group("directive")
                    if next_directive == "end":
                        nodes.append(_If(branches))
                        pos = next_match.end()
                        break
                    if next_directive == "elif":
                        condition_src = (next_match.group("rest") or "").strip()
                        cursor = next_match.end()
                        continue
                    if next_directive == "else":
                        body, body_end = self._parse(
                            source, next_match.end(), terminators=("end",)
                        )
                        branches.append((None, body))
                        end_match = _TOKEN_RE.match(source, body_end)
                        if end_match is None or end_match.group("directive") != "end":
                            raise TemplateError("%else% without matching %end%")
                        nodes.append(_If(branches))
                        pos = end_match.end()
                        break
                    raise TemplateError(f"unexpected %{next_directive}%")
                continue
            if directive in ("elif", "else", "end"):
                raise TemplateError(f"unexpected %{directive}% at position {pos}")
        return nodes, pos

    def __repr__(self) -> str:
        preview = self.source if len(self.source) <= 40 else self.source[:37] + "..."
        return f"Template({preview!r})"


_template_cache: dict[str, Template] = {}


def render(source: str, context: Mapping[str, Any] | None = None) -> str:
    """Compile (with caching) and render a template."""
    compiled = _template_cache.get(source)
    if compiled is None:
        compiled = Template(source)
        if len(_template_cache) < 1024:
            _template_cache[source] = compiled
    return compiled.render(context)
