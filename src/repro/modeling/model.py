"""Instance layer of the metamodeling kernel.

:class:`MObject` is a typed object conforming to a
:class:`~repro.modeling.meta.MetaClass`; :class:`Model` is a root
container of MObjects.  The instance layer maintains:

* attribute type checking against the metaclass,
* containment (every object has at most one container; containment
  cycles are rejected),
* bidirectional (opposite) reference consistency,
* stable ids for diffing and serialization.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator

from repro.modeling.meta import (
    FeatureSlot,
    MetaAttribute,
    MetaClass,
    Metamodel,
    MetamodelError,
    MetaReference,
)

__all__ = ["ModelError", "ModelSpace", "MObject", "Model"]


class ModelError(Exception):
    """Raised on ill-typed or structurally invalid model manipulation."""


class ModelSpace:
    """Scope for object-id sequences.

    Two models built in the same space share one monotone counter (ids
    never collide between them); models built in *different* spaces get
    independent, deterministic sequences — which is what golden-trace
    comparisons across repeated benchmark runs need.  The process-wide
    default space preserves the historical global-counter behaviour.
    """

    __slots__ = ("name", "_counter")

    def __init__(self, name: str = "space", *, start: int = 1) -> None:
        self.name = name
        self._counter = itertools.count(start)

    def next_id(self, class_name: str) -> str:
        return f"{class_name.lower()}#{next(self._counter)}"

    def __repr__(self) -> str:
        return f"ModelSpace({self.name!r})"


_default_space = ModelSpace("default")


def _next_id(class_name: str) -> str:
    return _default_space.next_id(class_name)


#: sentinel marking "feature never explicitly set" in the slot store.
_MISSING = object()


class _ManyRefList:
    """List facade over a multi-valued reference that keeps invariants."""

    def __init__(self, owner: "MObject", ref: MetaReference) -> None:
        self._owner = owner
        self._ref = ref

    def _raw(self) -> list["MObject"]:
        return self._owner._ref_list(self._ref)

    def append(self, value: "MObject") -> None:
        self._owner._link(self._ref, value)

    def extend(self, values: Any) -> None:
        for value in values:
            self.append(value)

    def remove(self, value: "MObject") -> None:
        self._owner._unlink(self._ref, value)

    def clear(self) -> None:
        for value in list(self._raw()):
            self.remove(value)

    def __iter__(self) -> Iterator["MObject"]:
        return iter(list(self._raw()))

    def __len__(self) -> int:
        return len(self._raw())

    def __getitem__(self, index: int) -> "MObject":
        return self._raw()[index]

    def __contains__(self, value: object) -> bool:
        return value in self._raw()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _ManyRefList):
            return self._raw() == other._raw()
        if isinstance(other, list):
            return self._raw() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ManyRef({self._ref.name}={self._raw()!r})"


class MObject:
    """An instance of a :class:`MetaClass`.

    Attribute and reference access uses plain Python attribute syntax
    (``obj.name``, ``obj.children.append(x)``); every access is checked
    against the metaclass.
    """

    __slots__ = ("_cls", "_id", "_table", "_store", "_container", "_container_ref")

    def __init__(
        self,
        cls: MetaClass,
        *,
        id: str | None = None,
        space: ModelSpace | None = None,
        **features: Any,
    ) -> None:
        if cls.abstract:
            raise ModelError(f"cannot instantiate abstract class {cls.name!r}")
        if cls.metamodel is not None:
            cls.metamodel.resolve()
        table = cls.feature_table()
        object.__setattr__(self, "_cls", cls)
        object.__setattr__(
            self, "_id", id or (space or _default_space).next_id(cls.name)
        )
        object.__setattr__(self, "_table", table)
        object.__setattr__(self, "_store", [_MISSING] * table.size)
        object.__setattr__(self, "_container", None)
        object.__setattr__(self, "_container_ref", None)
        for name, value in features.items():
            self.set(name, value)

    # -- slot-store machinery ------------------------------------------

    def _slots(self) -> dict[str, FeatureSlot]:
        """The live feature table's slot map, migrating the instance
        store first if the class shape changed since the last access."""
        table = self._table
        if table.stale:
            self._migrate()
            table = self._table
        return table.slots

    def _migrate(self) -> None:
        new_table = self._cls.feature_table()
        old_table = self._table
        old_store = self._store
        store: list[Any] = [_MISSING] * new_table.size
        for name, slot in old_table.slots.items():
            target = new_table.slots.get(name)
            if target is not None:
                store[target.index] = old_store[slot.index]
        object.__setattr__(self, "_table", new_table)
        object.__setattr__(self, "_store", store)

    def _require_slot(self, name: str) -> FeatureSlot:
        slot = self._slots().get(name)
        if slot is None:
            raise ModelError(f"class {self._cls.name!r} has no feature {name!r}")
        return slot

    def _ref_slot(self, ref: MetaReference) -> FeatureSlot:
        return self._slots()[ref.name]

    def _ref_list(self, ref: MetaReference) -> list["MObject"]:
        slot = self._ref_slot(ref)
        value = self._store[slot.index]
        if value is _MISSING:
            value = []
            self._store[slot.index] = value
        return value

    # -- identity ------------------------------------------------------

    @property
    def meta(self) -> MetaClass:
        return self._cls

    @property
    def id(self) -> str:
        return self._id

    @property
    def container(self) -> "MObject | None":
        return self._container

    @property
    def containing_reference(self) -> MetaReference | None:
        return self._container_ref

    def is_a(self, class_or_name: MetaClass | str) -> bool:
        if isinstance(class_or_name, str):
            metamodel = self._cls.metamodel
            if metamodel is None:
                return self._cls.name == class_or_name
            target = metamodel.find_class(class_or_name)
            if target is None:
                return False
            return self._cls.conforms_to(target)
        return self._cls.conforms_to(class_or_name)

    # -- generic feature access ----------------------------------------

    def get(self, name: str) -> Any:
        slot = self._require_slot(name)
        value = self._store[slot.index]
        if slot.is_attribute:
            if slot.many:
                if value is _MISSING:
                    value = []
                    self._store[slot.index] = value
                return value
            if value is not _MISSING:
                return value
            return slot.feature.default_value()
        if slot.many:
            return _ManyRefList(self, slot.feature)
        return None if value is _MISSING else value

    def set(self, name: str, value: Any) -> None:
        slot = self._require_slot(name)
        if slot.is_attribute:
            self._set_attribute(slot, value)
        else:
            self._set_reference(slot.feature, value)

    def unset(self, name: str) -> None:
        slot = self._require_slot(name)
        if slot.is_attribute:
            self._store[slot.index] = _MISSING
        elif slot.many:
            _ManyRefList(self, slot.feature).clear()
        else:
            self._set_reference(slot.feature, None)

    def explicit_attributes(self) -> dict[str, Any]:
        """Attributes explicitly set on this instance, without defaults
        (many-valued lists materialized by :meth:`get` included)."""
        slots = self._slots()
        store = self._store
        return {
            name: store[slot.index]
            for name, slot in slots.items()
            if slot.is_attribute and store[slot.index] is not _MISSING
        }

    def has_explicit(self, name: str) -> bool:
        """True if ``name`` is an attribute explicitly set on this
        instance (as opposed to reporting its default)."""
        slot = self._slots().get(name)
        return (
            slot is not None
            and slot.is_attribute
            and self._store[slot.index] is not _MISSING
        )

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails (i.e. model features).
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self.get(name)
        except ModelError as exc:
            raise AttributeError(str(exc)) from exc

    def __setattr__(self, name: str, value: Any) -> None:
        if name in MObject.__slots__:
            object.__setattr__(self, name, value)
        else:
            self.set(name, value)

    # -- attribute machinery ---------------------------------------------

    def _set_attribute(self, slot: FeatureSlot, value: Any) -> None:
        attr = slot.feature
        if slot.many:
            if not isinstance(value, (list, tuple)):
                raise ModelError(
                    f"{attr.qualified_name} is many-valued; expected list, "
                    f"got {type(value).__name__}"
                )
            for item in value:
                self._check_attr(attr, item)
            self._store[slot.index] = list(value)
            return
        self._check_attr(attr, value)
        self._store[slot.index] = _MISSING if value is None else value

    def _check_attr(self, attr: MetaAttribute, value: Any) -> None:
        try:
            attr.check_value(value)
        except MetamodelError as exc:
            raise ModelError(str(exc)) from exc

    # -- reference machinery ----------------------------------------------

    def _set_reference(self, ref: MetaReference, value: Any) -> None:
        if ref.many:
            if not isinstance(value, (list, tuple, _ManyRefList)):
                raise ModelError(
                    f"{ref.qualified_name} is many-valued; expected list, "
                    f"got {type(value).__name__}"
                )
            _ManyRefList(self, ref).clear()
            for item in value:
                self._link(ref, item)
            return
        slot = self._ref_slot(ref)
        current = self._store[slot.index]
        if current is _MISSING:
            current = None
        if current is value:
            return
        if current is not None:
            self._unlink(ref, current)
        if value is not None:
            self._link(ref, value)

    def _check_ref_target(self, ref: MetaReference, value: "MObject") -> None:
        if not isinstance(value, MObject):
            raise ModelError(
                f"{ref.qualified_name}: expected MObject, got {type(value).__name__}"
            )
        if not value._cls.conforms_to(ref.target):
            raise ModelError(
                f"{ref.qualified_name}: {value._cls.name!r} does not conform "
                f"to {ref.target.name!r}"
            )

    def _link(self, ref: MetaReference, value: "MObject") -> None:
        self._check_ref_target(ref, value)
        if ref.containment:
            self._take_ownership(ref, value)
        if ref.many:
            raw = self._ref_list(ref)
            if value in raw:
                return
            raw.append(value)
        else:
            slot = self._ref_slot(ref)
            current = self._store[slot.index]
            if current is value:
                return
            if current is not _MISSING and current is not None:
                self._unlink(ref, current)
            self._store[slot.index] = value
        self._sync_opposite_add(ref, value)

    def _unlink(self, ref: MetaReference, value: "MObject") -> None:
        if ref.many:
            raw = self._ref_list(ref)
            if value not in raw:
                raise ModelError(
                    f"{ref.qualified_name}: {value!r} is not referenced"
                )
            raw.remove(value)
        else:
            slot = self._ref_slot(ref)
            if self._store[slot.index] is not value:
                raise ModelError(
                    f"{ref.qualified_name}: {value!r} is not referenced"
                )
            self._store[slot.index] = _MISSING
        if ref.containment and value._container is self:
            object.__setattr__(value, "_container", None)
            object.__setattr__(value, "_container_ref", None)
        self._sync_opposite_remove(ref, value)

    def _take_ownership(self, ref: MetaReference, value: "MObject") -> None:
        # Reject containment cycles.
        ancestor: MObject | None = self
        while ancestor is not None:
            if ancestor is value:
                raise ModelError(
                    f"{ref.qualified_name}: containment cycle through {value.id}"
                )
            ancestor = ancestor._container
        old_container = value._container
        if old_container is not None and old_container is not self:
            old_ref = value._container_ref
            assert old_ref is not None
            old_container._unlink(old_ref, value)
        object.__setattr__(value, "_container", self)
        object.__setattr__(value, "_container_ref", ref)

    def _sync_opposite_add(self, ref: MetaReference, value: "MObject") -> None:
        opp = ref.opposite_ref
        if opp is None:
            return
        if opp.many:
            raw = value._ref_list(opp)
            if self not in raw:
                raw.append(self)
        else:
            slot = value._ref_slot(opp)
            current = value._store[slot.index]
            if current is self:
                return
            if current is not _MISSING and current is not None:
                current._quiet_remove(ref, value)
            value._store[slot.index] = self

    def _sync_opposite_remove(self, ref: MetaReference, value: "MObject") -> None:
        opp = ref.opposite_ref
        if opp is None:
            return
        if opp.many:
            slot = value._ref_slot(opp)
            raw = value._store[slot.index]
            if raw is not _MISSING and self in raw:
                raw.remove(self)
        else:
            slot = value._ref_slot(opp)
            if value._store[slot.index] is self:
                value._store[slot.index] = _MISSING

    def _quiet_remove(self, ref: MetaReference, value: "MObject") -> None:
        """Remove ``value`` from our side of ``ref`` without opposite sync."""
        if ref.many:
            slot = self._ref_slot(ref)
            raw = self._store[slot.index]
            if raw is not _MISSING and value in raw:
                raw.remove(value)
        else:
            slot = self._ref_slot(ref)
            if self._store[slot.index] is value:
                self._store[slot.index] = _MISSING

    # -- structure queries ---------------------------------------------

    def contents(self) -> Iterator["MObject"]:
        """Directly contained objects, in feature/insertion order."""
        slots = self._slots()
        store = self._store
        for ref in self._cls.containment_references():
            value = store[slots[ref.name].index]
            if value is _MISSING or value is None:
                continue
            if ref.many:
                yield from value
            else:
                yield value

    def walk(self) -> Iterator["MObject"]:
        """This object and all (transitively) contained objects."""
        yield self
        for child in self.contents():
            yield from child.walk()

    def find(self, predicate: Callable[["MObject"], bool]) -> Iterator["MObject"]:
        return (obj for obj in self.walk() if predicate(obj))

    def find_by_class(self, class_name: str) -> Iterator["MObject"]:
        return self.find(lambda obj: obj.is_a(class_name))

    def root(self) -> "MObject":
        obj: MObject = self
        while obj._container is not None:
            obj = obj._container
        return obj

    def path(self) -> str:
        """A /-separated containment path of ids from the root."""
        parts: list[str] = []
        obj: MObject | None = self
        while obj is not None:
            parts.append(obj.id)
            obj = obj._container
        return "/".join(reversed(parts))

    def _require_feature(self, name: str) -> MetaAttribute | MetaReference:
        return self._require_slot(name).feature

    def __repr__(self) -> str:
        slot = self._table.slots.get("name")
        label = None
        if slot is not None and slot.is_attribute:
            value = self._store[slot.index]
            if value is not _MISSING:
                label = value
        suffix = f" name={label!r}" if label else ""
        return f"<{self._cls.name} {self._id}{suffix}>"


class Model:
    """A root container for a tree (forest) of MObjects.

    A model is bound to a metamodel; all roots must conform to it.
    """

    def __init__(
        self,
        metamodel: Metamodel,
        *,
        name: str = "model",
        space: ModelSpace | None = None,
    ) -> None:
        metamodel.resolve()
        self.metamodel = metamodel
        self.name = name
        self.space = space if space is not None else _default_space
        self.roots: list[MObject] = []

    def create(self, class_name: str, **features: Any) -> MObject:
        """Instantiate a class from this model's metamodel (not yet a root)."""
        cls = self.metamodel.require_class(class_name)
        return MObject(cls, space=self.space, **features)

    def add_root(self, obj: MObject) -> MObject:
        if obj.container is not None:
            raise ModelError(f"{obj!r} is contained and cannot be a root")
        if obj in self.roots:
            return obj
        self.roots.append(obj)
        return obj

    def create_root(self, class_name: str, **features: Any) -> MObject:
        return self.add_root(self.create(class_name, **features))

    def remove_root(self, obj: MObject) -> None:
        self.roots.remove(obj)

    def walk(self) -> Iterator[MObject]:
        for root in self.roots:
            yield from root.walk()

    def objects_by_class(self, class_name: str) -> list[MObject]:
        return [obj for obj in self.walk() if obj.is_a(class_name)]

    def by_id(self, object_id: str) -> MObject | None:
        for obj in self.walk():
            if obj.id == object_id:
                return obj
        return None

    def index(self) -> dict[str, MObject]:
        """id -> object map over the whole model."""
        return {obj.id: obj for obj in self.walk()}

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, metamodel={self.metamodel.name!r}, "
            f"objects={len(self)})"
        )
