"""JSON (de)serialization of models and metamodels.

EMF serializes models as XMI; we use an equivalent JSON document
format.  Object identity is preserved through stable ids so that
cross-references (non-containment) survive a round trip, which the
Synthesis layer's model comparator depends on.

Document format for a model::

    {"format": "repro-model", "version": 1,
     "metamodel": "cml", "name": "my-model",
     "roots": [ {object}, ... ]}

and for an object::

    {"id": "schema#3", "class": "Schema",
     "attrs": {"name": "chat"},
     "refs": {"connections": [{object}, ...],      # containment: inline
              "owner": {"$ref": "person#1"}}}      # cross-ref: by id

The top-level ``format``/``version`` envelope (added in PR 5) lets
readers reject documents written by incompatible future writers while
staying tolerant of *legacy* payloads: a document without the envelope
is read as version 1 (every pre-envelope writer produced what is now
version 1), so artifacts serialized before the envelope existed remain
loadable.
"""

from __future__ import annotations

import json
from typing import Any

from repro.modeling.meta import (
    MetaAttribute,
    Metamodel,
    MetamodelError,
    MetaReference,
    build_metamodel,
)
from repro.modeling.model import Model, ModelError, ModelSpace, MObject

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "SerializationError",
    "check_envelope",
    "model_to_dict",
    "model_from_dict",
    "model_to_json",
    "model_from_json",
    "object_to_dict",
    "metamodel_to_dict",
    "metamodel_from_dict",
    "clone_model",
    "clone_object",
]


class SerializationError(Exception):
    """Raised on malformed documents or unresolvable references."""


#: envelope identifying serialized model documents.
FORMAT_NAME = "repro-model"
#: current writer version; readers accept any version up to this one.
FORMAT_VERSION = 1


def check_envelope(
    doc: dict[str, Any],
    *,
    expected_format: str = FORMAT_NAME,
    max_version: int = FORMAT_VERSION,
) -> int:
    """Validate a document envelope; returns the document version.

    Tolerant reader contract: a document *without* a ``format`` key is
    a legacy payload and is read as version 1.  A document with a
    mismatching format name, a non-integer version, or a version newer
    than ``max_version`` raises :class:`SerializationError` — future
    writers must not be silently misread.
    """
    if "format" not in doc:
        return 1  # legacy unversioned payload
    if doc.get("format") != expected_format:
        raise SerializationError(
            f"document format {doc.get('format')!r} is not "
            f"{expected_format!r}"
        )
    version = doc.get("version", 1)
    if isinstance(version, bool) or not isinstance(version, int):
        raise SerializationError(
            f"document version must be an integer, got {version!r}"
        )
    if version < 1 or version > max_version:
        raise SerializationError(
            f"unsupported {expected_format!r} document version {version} "
            f"(this reader supports 1..{max_version})"
        )
    return version


# -- serialization ------------------------------------------------------


def object_to_dict(obj: MObject) -> dict[str, Any]:
    """Serialize one object (and its containment subtree)."""
    doc: dict[str, Any] = {"id": obj.id, "class": obj.meta.name}
    attrs: dict[str, Any] = {}
    for name, attr in obj.meta.all_attributes().items():
        value = obj.get(name)
        if attr.many:
            if value:
                attrs[name] = list(value)
        elif value is not None and value != attr.default_value():
            attrs[name] = value
        elif value is not None and obj.has_explicit(name):
            attrs[name] = value
    if attrs:
        doc["attrs"] = attrs
    refs: dict[str, Any] = {}
    for name, ref in obj.meta.all_references().items():
        value = obj.get(name)
        if ref.many:
            items = list(value)
            if not items:
                continue
            if ref.containment:
                refs[name] = [object_to_dict(item) for item in items]
            else:
                refs[name] = [{"$ref": item.id} for item in items]
        else:
            if value is None:
                continue
            if ref.containment:
                refs[name] = object_to_dict(value)
            else:
                refs[name] = {"$ref": value.id}
    if refs:
        doc["refs"] = refs
    return doc


def model_to_dict(model: Model) -> dict[str, Any]:
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "metamodel": model.metamodel.name,
        "name": model.name,
        "roots": [object_to_dict(root) for root in model.roots],
    }


def model_to_json(model: Model, *, indent: int | None = 2) -> str:
    return json.dumps(model_to_dict(model), indent=indent, sort_keys=False)


# -- deserialization ----------------------------------------------------


def _instantiate(
    doc: dict[str, Any],
    metamodel: Metamodel,
    index: dict[str, MObject],
    pending: list[tuple[MObject, MetaReference, Any]],
    remap: dict[str, MObject] | None = None,
) -> MObject:
    class_name = doc.get("class")
    if not isinstance(class_name, str):
        raise SerializationError(f"object document missing 'class': {doc!r}")
    cls = metamodel.find_class(class_name)
    if cls is None:
        raise SerializationError(f"unknown class {class_name!r}")
    try:
        obj = MObject(cls, id=doc.get("id"))
    except ModelError as exc:
        raise SerializationError(str(exc)) from exc
    if obj.id in index:
        raise SerializationError(f"duplicate object id {obj.id!r}")
    index[obj.id] = obj
    if remap is not None and "$was" in doc:
        # fresh-id cloning: remember which original id this fresh
        # object replaces so in-subtree cross-refs still resolve.
        remap[str(doc["$was"])] = obj
    for name, value in dict(doc.get("attrs", {})).items():
        feature = cls.find_feature(name)
        if not isinstance(feature, MetaAttribute):
            raise SerializationError(
                f"{class_name}.{name} is not an attribute"
            )
        try:
            obj.set(name, value)
        except ModelError as exc:
            raise SerializationError(str(exc)) from exc
    for name, value in dict(doc.get("refs", {})).items():
        feature = cls.find_feature(name)
        if not isinstance(feature, MetaReference):
            raise SerializationError(
                f"{class_name}.{name} is not a reference"
            )
        if feature.containment:
            children = value if feature.many else [value]
            for child_doc in children:
                child = _instantiate(child_doc, metamodel, index, pending, remap)
                if feature.many:
                    obj.get(name).append(child)
                else:
                    obj.set(name, child)
        else:
            pending.append((obj, feature, value))
    return obj


def model_from_dict(
    doc: dict[str, Any],
    metamodel: Metamodel,
    *,
    space: ModelSpace | None = None,
) -> Model:
    check_envelope(doc)
    if doc.get("metamodel") not in (None, metamodel.name):
        raise SerializationError(
            f"document metamodel {doc.get('metamodel')!r} does not match "
            f"{metamodel.name!r}"
        )
    model = Model(metamodel, name=str(doc.get("name", "model")), space=space)
    index: dict[str, MObject] = {}
    pending: list[tuple[MObject, MetaReference, Any]] = []
    for root_doc in doc.get("roots", []):
        model.add_root(_instantiate(root_doc, metamodel, index, pending))
    # Second pass: resolve cross-references now that all ids exist.
    for obj, ref, value in pending:
        targets = value if ref.many else [value]
        for target_doc in targets:
            target_id = target_doc.get("$ref") if isinstance(target_doc, dict) else None
            if target_id is None:
                raise SerializationError(
                    f"cross-reference {ref.qualified_name} must use {{'$ref': id}}"
                )
            target = index.get(target_id)
            if target is None:
                raise SerializationError(
                    f"{ref.qualified_name}: dangling reference to {target_id!r}"
                )
            try:
                if ref.many:
                    obj.get(ref.name).append(target)
                else:
                    obj.set(ref.name, target)
            except ModelError as exc:
                raise SerializationError(str(exc)) from exc
    return model


def model_from_json(text: str, metamodel: Metamodel) -> Model:
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise SerializationError("top-level JSON value must be an object")
    return model_from_dict(doc, metamodel)


# -- metamodel documents --------------------------------------------------


def metamodel_to_dict(metamodel: Metamodel) -> dict[str, Any]:
    classes: dict[str, Any] = {}
    for cls in metamodel.classes.values():
        spec: dict[str, Any] = {}
        if cls.abstract:
            spec["abstract"] = True
        if cls.supertypes:
            spec["supertypes"] = [s.name for s in cls.supertypes]
        attrs: dict[str, Any] = {}
        for attr in cls.own_attributes():
            attr_spec: dict[str, Any] = {"type": attr.type_name}
            if attr.many:
                attr_spec["many"] = True
            if attr.required:
                attr_spec["required"] = True
            if attr.default is not None:
                attr_spec["default"] = attr.default
            attrs[attr.name] = attr_spec
        if attrs:
            spec["attributes"] = attrs
        refs: dict[str, Any] = {}
        for ref in cls.own_references():
            ref_spec: dict[str, Any] = {"target": ref.target_name}
            if ref.containment:
                ref_spec["containment"] = True
            if ref.many:
                ref_spec["many"] = True
            if ref.required:
                ref_spec["required"] = True
            if ref.opposite:
                ref_spec["opposite"] = ref.opposite
            refs[ref.name] = ref_spec
        if refs:
            spec["references"] = refs
        classes[cls.name] = spec
    return {
        "name": metamodel.name,
        "enums": {e.name: list(e.literals) for e in metamodel.enums.values()},
        "classes": classes,
    }


def metamodel_from_dict(
    doc: dict[str, Any],
    *,
    imports: tuple[Metamodel, ...] = (),
) -> Metamodel:
    try:
        return build_metamodel(
            str(doc["name"]),
            doc.get("classes", {}),
            enums=doc.get("enums", {}),
            imports=imports,
        )
    except (KeyError, MetamodelError) as exc:
        raise SerializationError(f"bad metamodel document: {exc}") from exc


# -- cloning --------------------------------------------------------------


def clone_object(obj: MObject, *, fresh_ids: bool = False) -> MObject:
    """Deep-copy an object subtree (cross-refs within the subtree kept).

    With ``fresh_ids=True`` every object in the copy gets a newly
    minted id; cross-references *within* the subtree are remapped from
    the original ids to the fresh objects, so internal structure
    survives re-identification.  A reference that genuinely escapes
    the subtree raises :class:`SerializationError` under fresh ids
    (there is no object it could legally point to); with preserved ids
    it is dropped, matching EMF's proxy behaviour for isolated copies.
    """
    doc = object_to_dict(obj)
    remap: dict[str, MObject] | None = None
    if fresh_ids:
        remap = {}
        _strip_ids(doc)
    index: dict[str, MObject] = {}
    pending: list[tuple[MObject, MetaReference, Any]] = []
    metamodel = obj.meta.metamodel
    if metamodel is None:
        raise SerializationError(f"{obj!r} has no metamodel; cannot clone")
    clone = _instantiate(doc, metamodel, index, pending, remap)
    for owner, ref, value in pending:
        targets = value if ref.many else [value]
        for target_doc in targets:
            ref_id = target_doc["$ref"]
            target = index.get(ref_id)
            if target is None and remap is not None:
                target = remap.get(ref_id)
            if target is None:
                if fresh_ids:
                    raise SerializationError(
                        f"{ref.qualified_name}: reference to {ref_id!r} "
                        f"escapes the cloned subtree"
                    )
                # Cross-ref escapes the subtree: drop it (EMF proxies
                # would do the same for an isolated copy).
                continue
            if ref.many:
                owner.get(ref.name).append(target)
            else:
                owner.set(ref.name, target)
    return clone


def _strip_ids(doc: dict[str, Any]) -> None:
    """Prepare a doc for fresh-id instantiation: drop each node's id
    but keep it under ``$was`` so the remap table can be built."""
    if "id" in doc:
        doc["$was"] = doc.pop("id")
    for value in dict(doc.get("refs", {})).values():
        children = value if isinstance(value, list) else [value]
        for child in children:
            if isinstance(child, dict) and "$ref" not in child:
                _strip_ids(child)


def clone_model(model: Model) -> Model:
    """Deep-copy a model, preserving all ids (used by the comparator).

    The clone stays in the source model's :class:`ModelSpace`, so
    objects created on either copy afterwards keep minting from the
    same id sequence and cannot collide."""
    return model_from_dict(
        model_to_dict(model), model.metamodel, space=model.space
    )
