"""A small, safe expression language for guards, policies and constraints.

The middleware metamodel stores behaviour *as data*: LTS guards, policy
conditions and constraint bodies are strings evaluated against a
context.  Evaluating arbitrary Python with ``eval`` would make models a
code-injection vector, so we compile a restricted subset of Python
expressions via :mod:`ast` and interpret it ourselves.

Supported syntax: literals, names, attribute access, subscripts,
boolean/comparison/arithmetic operators, unary ops, conditional
expressions, and calls to a whitelisted set of pure functions
(``len``, ``min``, ``max``, ``abs``, ``sum``, ``any``, ``all``,
``round``, ``sorted``, ``str``, ``int``, ``float``, ``bool``).
"""

from __future__ import annotations

import ast
import operator
from typing import Any, Callable, Mapping

__all__ = ["ExpressionError", "Expression", "evaluate"]


class ExpressionError(Exception):
    """Raised for syntax errors, forbidden constructs, or evaluation faults."""


_BINOPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}

_CMPOPS: dict[type, Callable[[Any, Any], bool]] = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
}

_UNARYOPS: dict[type, Callable[[Any], Any]] = {
    ast.Not: operator.not_,
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
}

_SAFE_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "sum": sum,
    "any": any,
    "all": all,
    "round": round,
    "sorted": sorted,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
}

_SAFE_CONSTANTS: dict[str, Any] = {
    "True": True,
    "False": False,
    "None": None,
}

#: Method names callable on values inside expressions (pure methods of
#: builtin containers/strings; no mutation).
_SAFE_METHODS: frozenset[str] = frozenset(
    {
        "get", "keys", "values", "items",
        "startswith", "endswith", "lower", "upper", "strip",
        "split", "join", "replace", "format",
        "count", "index",
    }
)


class Expression:
    """A compiled expression, reusable across many evaluations.

    >>> Expression("load > 0.8 and mode == 'auto'").evaluate(
    ...     {"load": 0.9, "mode": "auto"})
    True
    """

    def __init__(self, source: str) -> None:
        if not isinstance(source, str) or not source.strip():
            raise ExpressionError("expression source must be a non-empty string")
        self.source = source
        try:
            tree = ast.parse(source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"syntax error in {source!r}: {exc}") from exc
        self._check(tree.body)
        self._tree = tree.body

    def evaluate(self, context: Mapping[str, Any] | None = None) -> Any:
        env = dict(_SAFE_CONSTANTS)
        if context:
            env.update(context)
        try:
            return self._eval(self._tree, env)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as ExpressionError
            raise ExpressionError(f"error evaluating {self.source!r}: {exc}") from exc

    # -- compilation-time whitelist check --------------------------------

    _ALLOWED_NODES = (
        ast.Expression,
        ast.BoolOp, ast.And, ast.Or,
        ast.BinOp, ast.UnaryOp, ast.Compare, ast.IfExp,
        ast.Call, ast.Name, ast.Load, ast.Store, ast.Constant,
        ast.Attribute, ast.Subscript, ast.Index if hasattr(ast, "Index") else ast.Expression,
        ast.List, ast.Tuple, ast.Dict, ast.Set,
        ast.Slice,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        ast.comprehension,
    ) + tuple(_BINOPS) + tuple(_CMPOPS) + tuple(_UNARYOPS)

    def _check(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if not isinstance(child, self._ALLOWED_NODES):
                raise ExpressionError(
                    f"forbidden construct {type(child).__name__} in {self.source!r}"
                )
            if isinstance(child, ast.Call):
                func = child.func
                name_ok = isinstance(func, ast.Name) and func.id in _SAFE_FUNCTIONS
                method_ok = (
                    isinstance(func, ast.Attribute) and func.attr in _SAFE_METHODS
                )
                if not (name_ok or method_ok):
                    raise ExpressionError(
                        f"only whitelisted function/method calls allowed "
                        f"in {self.source!r}"
                    )
                if child.keywords:
                    raise ExpressionError(
                        f"keyword arguments not allowed in {self.source!r}"
                    )
            if isinstance(child, ast.Attribute) and child.attr.startswith("_"):
                raise ExpressionError(
                    f"access to private attribute {child.attr!r} forbidden "
                    f"in {self.source!r}"
                )

    # -- interpreter ------------------------------------------------------

    def _eval(self, node: ast.AST, env: Mapping[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            raise ExpressionError(
                f"unknown name {node.id!r} in {self.source!r}"
            )
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in node.values:
                    result = self._eval(value, env)
                    if not result:
                        return result
                return result
            result = False
            for value in node.values:
                result = self._eval(value, env)
                if result:
                    return result
            return result
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise ExpressionError(f"unsupported operator in {self.source!r}")
            return op(self._eval(node.left, env), self._eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise ExpressionError(f"unsupported unary op in {self.source!r}")
            return op(self._eval(node.operand, env))
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op_node, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                op = _CMPOPS.get(type(op_node))
                if op is None:
                    raise ExpressionError(f"unsupported comparison in {self.source!r}")
                if not op(left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.IfExp):
            if self._eval(node.test, env):
                return self._eval(node.body, env)
            return self._eval(node.orelse, env)
        if isinstance(node, ast.Call):
            args = [self._eval(arg, env) for arg in node.args]
            if isinstance(node.func, ast.Name):
                return _SAFE_FUNCTIONS[node.func.id](*args)
            assert isinstance(node.func, ast.Attribute)
            receiver = self._eval(node.func.value, env)
            method = getattr(receiver, node.func.attr)
            return method(*args)
        if isinstance(node, ast.Attribute):
            value = self._eval(node.value, env)
            # MObject features resolve through get(); non-feature names
            # (id, container, ...) fall back to plain attribute access.
            getter = getattr(value, "get", None)
            if callable(getter) and hasattr(value, "meta"):
                try:
                    return value.get(node.attr)
                except Exception:  # noqa: BLE001 - not a model feature
                    return getattr(value, node.attr)
            return getattr(value, node.attr)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            index = self._eval(node.slice, env)
            return value[index]
        if isinstance(node, ast.Slice):
            lower = self._eval(node.lower, env) if node.lower else None
            upper = self._eval(node.upper, env) if node.upper else None
            step = self._eval(node.step, env) if node.step else None
            return slice(lower, upper, step)
        if isinstance(node, ast.List):
            return [self._eval(item, env) for item in node.elts]
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(item, env) for item in node.elts)
        if isinstance(node, ast.Set):
            return {self._eval(item, env) for item in node.elts}
        if isinstance(node, ast.Dict):
            return {
                self._eval(key, env): self._eval(value, env)
                for key, value in zip(node.keys, node.values)
                if key is not None
            }
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            results = list(self._comprehend(node.elt, node.generators, env))
            if isinstance(node, ast.SetComp):
                return set(results)
            return results
        if isinstance(node, ast.DictComp):
            pairs = self._comprehend(
                ast.Tuple(elts=[node.key, node.value], ctx=ast.Load()),
                node.generators,
                env,
            )
            return dict(pairs)
        raise ExpressionError(
            f"unsupported node {type(node).__name__} in {self.source!r}"
        )

    def _comprehend(
        self,
        elt: ast.AST,
        generators: list[ast.comprehension],
        env: Mapping[str, Any],
    ) -> Any:
        """Evaluate comprehension generators recursively."""
        if not generators:
            yield self._eval(elt, env)
            return
        generator, *rest = generators
        iterable = self._eval(generator.iter, env)
        for item in iterable:
            scoped = dict(env)
            self._bind(generator.target, item, scoped)
            if all(self._eval(cond, scoped) for cond in generator.ifs):
                yield from self._comprehend(elt, rest, scoped)

    def _bind(self, target: ast.AST, value: Any, env: dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Tuple):
            values = list(value)
            if len(values) != len(target.elts):
                raise ExpressionError(
                    f"cannot unpack {len(values)} values into "
                    f"{len(target.elts)} names in {self.source!r}"
                )
            for sub_target, sub_value in zip(target.elts, values):
                self._bind(sub_target, sub_value, env)
        else:
            raise ExpressionError(
                f"unsupported comprehension target in {self.source!r}"
            )

    def __repr__(self) -> str:
        return f"Expression({self.source!r})"


_cache: dict[str, Expression] = {}


def evaluate(source: str, context: Mapping[str, Any] | None = None) -> Any:
    """Compile (with caching) and evaluate ``source`` against ``context``."""
    compiled = _cache.get(source)
    if compiled is None:
        compiled = Expression(source)
        if len(_cache) < 4096:
            _cache[source] = compiled
    return compiled.evaluate(context)
