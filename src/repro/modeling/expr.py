"""A small, safe expression language for guards, policies and constraints.

The middleware metamodel stores behaviour *as data*: LTS guards, policy
conditions and constraint bodies are strings evaluated against a
context.  Evaluating arbitrary Python with ``eval`` would make models a
code-injection vector, so we compile a restricted subset of Python
expressions via :mod:`ast` and interpret it ourselves.

Supported syntax: literals, names, attribute access, subscripts,
boolean/comparison/arithmetic operators, unary ops, conditional
expressions, and calls to a whitelisted set of pure functions
(``len``, ``min``, ``max``, ``abs``, ``sum``, ``any``, ``all``,
``round``, ``sorted``, ``str``, ``int``, ``float``, ``bool``).
"""

from __future__ import annotations

import ast
import operator
from functools import lru_cache
from typing import Any, Callable, Mapping

__all__ = [
    "ExpressionError",
    "Expression",
    "evaluate",
    "compile_expression",
]


class ExpressionError(Exception):
    """Raised for syntax errors, forbidden constructs, or evaluation faults."""


_BINOPS: dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.FloorDiv: operator.floordiv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}

_CMPOPS: dict[type, Callable[[Any, Any], bool]] = {
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: operator.is_,
    ast.IsNot: operator.is_not,
}

_UNARYOPS: dict[type, Callable[[Any], Any]] = {
    ast.Not: operator.not_,
    ast.USub: operator.neg,
    ast.UAdd: operator.pos,
}

_SAFE_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "sum": sum,
    "any": any,
    "all": all,
    "round": round,
    "sorted": sorted,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
}

_SAFE_CONSTANTS: dict[str, Any] = {
    "True": True,
    "False": False,
    "None": None,
}

#: Method names callable on values inside expressions (pure methods of
#: builtin containers/strings; no mutation).
_SAFE_METHODS: frozenset[str] = frozenset(
    {
        "get", "keys", "values", "items",
        "startswith", "endswith", "lower", "upper", "strip",
        "split", "join", "replace", "format",
        "count", "index",
    }
)


class Expression:
    """A compiled expression, reusable across many evaluations.

    >>> Expression("load > 0.8 and mode == 'auto'").evaluate(
    ...     {"load": 0.9, "mode": "auto"})
    True
    """

    __slots__ = ("source", "_tree", "_compiled")

    def __init__(self, source: str) -> None:
        if not isinstance(source, str) or not source.strip():
            raise ExpressionError("expression source must be a non-empty string")
        self.source = source
        try:
            tree = ast.parse(source, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"syntax error in {source!r}: {exc}") from exc
        self._check(tree.body)
        self._tree = tree.body
        self._compiled: Callable[[Mapping[str, Any]], Any] | None = None

    def evaluate(self, context: Mapping[str, Any] | None = None) -> Any:
        """Reference interpreter: walk the checked AST directly.

        This is the slow/authoring path; :meth:`evaluate_fast` runs the
        same expression through compiled Python bytecode.
        """
        env = dict(_SAFE_CONSTANTS)
        if context:
            env.update(context)
        try:
            return self._eval(self._tree, env)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as ExpressionError
            raise ExpressionError(f"error evaluating {self.source!r}: {exc}") from exc

    def evaluate_fast(self, context: Mapping[str, Any] | None = None) -> Any:
        """Evaluate via the compiled closure (same semantics, no AST walk).

        The first call lowers the checked AST to Python bytecode; later
        calls are a plain function call with ``context`` consulted lazily
        per name — no per-evaluation environment copy.
        """
        fn = self._compiled
        if fn is None:
            fn = self._compiled = _lower(self)
        try:
            return fn(context if context is not None else {})
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as ExpressionError
            raise ExpressionError(f"error evaluating {self.source!r}: {exc}") from exc

    # -- compilation-time whitelist check --------------------------------

    _ALLOWED_NODES = (
        ast.Expression,
        ast.BoolOp, ast.And, ast.Or,
        ast.BinOp, ast.UnaryOp, ast.Compare, ast.IfExp,
        ast.Call, ast.Name, ast.Load, ast.Store, ast.Constant,
        ast.Attribute, ast.Subscript, ast.Index if hasattr(ast, "Index") else ast.Expression,
        ast.List, ast.Tuple, ast.Dict, ast.Set,
        ast.Slice,
        ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        ast.comprehension,
    ) + tuple(_BINOPS) + tuple(_CMPOPS) + tuple(_UNARYOPS)

    def _check(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if not isinstance(child, self._ALLOWED_NODES):
                raise ExpressionError(
                    f"forbidden construct {type(child).__name__} in {self.source!r}"
                )
            if isinstance(child, ast.Call):
                func = child.func
                name_ok = isinstance(func, ast.Name) and func.id in _SAFE_FUNCTIONS
                method_ok = (
                    isinstance(func, ast.Attribute) and func.attr in _SAFE_METHODS
                )
                if not (name_ok or method_ok):
                    raise ExpressionError(
                        f"only whitelisted function/method calls allowed "
                        f"in {self.source!r}"
                    )
                if child.keywords:
                    raise ExpressionError(
                        f"keyword arguments not allowed in {self.source!r}"
                    )
            if isinstance(child, ast.Attribute) and child.attr.startswith("_"):
                raise ExpressionError(
                    f"access to private attribute {child.attr!r} forbidden "
                    f"in {self.source!r}"
                )

    # -- interpreter ------------------------------------------------------

    def _eval(self, node: ast.AST, env: Mapping[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            raise ExpressionError(
                f"unknown name {node.id!r} in {self.source!r}"
            )
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in node.values:
                    result = self._eval(value, env)
                    if not result:
                        return result
                return result
            result = False
            for value in node.values:
                result = self._eval(value, env)
                if result:
                    return result
            return result
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise ExpressionError(f"unsupported operator in {self.source!r}")
            return op(self._eval(node.left, env), self._eval(node.right, env))
        if isinstance(node, ast.UnaryOp):
            op = _UNARYOPS.get(type(node.op))
            if op is None:
                raise ExpressionError(f"unsupported unary op in {self.source!r}")
            return op(self._eval(node.operand, env))
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op_node, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                op = _CMPOPS.get(type(op_node))
                if op is None:
                    raise ExpressionError(f"unsupported comparison in {self.source!r}")
                if not op(left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.IfExp):
            if self._eval(node.test, env):
                return self._eval(node.body, env)
            return self._eval(node.orelse, env)
        if isinstance(node, ast.Call):
            args = [self._eval(arg, env) for arg in node.args]
            if isinstance(node.func, ast.Name):
                return _SAFE_FUNCTIONS[node.func.id](*args)
            assert isinstance(node.func, ast.Attribute)
            receiver = self._eval(node.func.value, env)
            method = getattr(receiver, node.func.attr)
            return method(*args)
        if isinstance(node, ast.Attribute):
            value = self._eval(node.value, env)
            # MObject features resolve through get(); non-feature names
            # (id, container, ...) fall back to plain attribute access.
            getter = getattr(value, "get", None)
            if callable(getter) and hasattr(value, "meta"):
                try:
                    return value.get(node.attr)
                except Exception:  # noqa: BLE001 - not a model feature
                    return getattr(value, node.attr)
            return getattr(value, node.attr)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            index = self._eval(node.slice, env)
            return value[index]
        if isinstance(node, ast.Slice):
            lower = self._eval(node.lower, env) if node.lower else None
            upper = self._eval(node.upper, env) if node.upper else None
            step = self._eval(node.step, env) if node.step else None
            return slice(lower, upper, step)
        if isinstance(node, ast.List):
            return [self._eval(item, env) for item in node.elts]
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(item, env) for item in node.elts)
        if isinstance(node, ast.Set):
            return {self._eval(item, env) for item in node.elts}
        if isinstance(node, ast.Dict):
            return {
                self._eval(key, env): self._eval(value, env)
                for key, value in zip(node.keys, node.values)
                if key is not None
            }
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            results = list(self._comprehend(node.elt, node.generators, env))
            if isinstance(node, ast.SetComp):
                return set(results)
            return results
        if isinstance(node, ast.DictComp):
            pairs = self._comprehend(
                ast.Tuple(elts=[node.key, node.value], ctx=ast.Load()),
                node.generators,
                env,
            )
            return dict(pairs)
        raise ExpressionError(
            f"unsupported node {type(node).__name__} in {self.source!r}"
        )

    def _comprehend(
        self,
        elt: ast.AST,
        generators: list[ast.comprehension],
        env: Mapping[str, Any],
    ) -> Any:
        """Evaluate comprehension generators recursively."""
        if not generators:
            yield self._eval(elt, env)
            return
        generator, *rest = generators
        iterable = self._eval(generator.iter, env)
        for item in iterable:
            scoped = dict(env)
            self._bind(generator.target, item, scoped)
            if all(self._eval(cond, scoped) for cond in generator.ifs):
                yield from self._comprehend(elt, rest, scoped)

    def _bind(self, target: ast.AST, value: Any, env: dict[str, Any]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Tuple):
            values = list(value)
            if len(values) != len(target.elts):
                raise ExpressionError(
                    f"cannot unpack {len(values)} values into "
                    f"{len(target.elts)} names in {self.source!r}"
                )
            for sub_target, sub_value in zip(target.elts, values):
                self._bind(sub_target, sub_value, env)
        else:
            raise ExpressionError(
                f"unsupported comprehension target in {self.source!r}"
            )

    def __repr__(self) -> str:
        return f"Expression({self.source!r})"


# -- bytecode lowering -------------------------------------------------
#
# The checked AST is rewritten into a plain Python lambda over one
# ``__env__`` parameter and compiled with ``compile()``.  Safety comes
# from the rewrite, not from trusting ``eval``: free names become
# ``__lookup__(__env__, ...)`` calls, attribute access and method/
# function calls are routed through helpers that reproduce the
# interpreter's semantics exactly, and the compiled code runs with
# empty ``__builtins__`` so nothing outside the helpers is reachable.

_FN_PREFIX = "__expr_fn_"


def _attr_access(value: Any, name: str) -> Any:
    """MObject features resolve through get(); non-feature names
    (id, container, ...) fall back to plain attribute access."""
    getter = getattr(value, "get", None)
    if callable(getter) and hasattr(value, "meta"):
        try:
            return value.get(name)
        except Exception:  # noqa: BLE001 - not a model feature
            return getattr(value, name)
    return getattr(value, name)


class _Lowerer:
    """Rewrites a checked expression AST into compilable Python."""

    def __init__(self, source: str) -> None:
        self.source = source

    def lower(self, node: ast.expr) -> ast.expr:
        return self._transform(node, frozenset())

    # Every node type reachable here already passed Expression._check,
    # so the rewrite only needs to redirect the semantics-bearing
    # constructs (names, attributes, calls, dicts, generators).
    def _transform(self, node: ast.expr, bound: frozenset[str]) -> ast.expr:
        if isinstance(node, ast.Constant):
            return node
        if isinstance(node, ast.Name):
            if node.id in bound:
                return node
            return ast.Call(
                func=ast.Name(id="__lookup__", ctx=ast.Load()),
                args=[
                    ast.Name(id="__env__", ctx=ast.Load()),
                    ast.Constant(value=node.id),
                ],
                keywords=[],
            )
        if isinstance(node, ast.Call):
            args = [self._transform(arg, bound) for arg in node.args]
            func = node.func
            if isinstance(func, ast.Name):
                # whitelisted function: resolved at compile time, never
                # shadowed by the environment (interpreter parity).
                return ast.Call(
                    func=ast.Name(id=_FN_PREFIX + func.id, ctx=ast.Load()),
                    args=args,
                    keywords=[],
                )
            assert isinstance(func, ast.Attribute)
            # method call: plain getattr on the receiver, matching the
            # interpreter's Call branch (NOT the MObject get() path).
            receiver = self._transform(func.value, bound)
            return ast.Call(
                func=ast.Call(
                    func=ast.Name(id="__getattr__", ctx=ast.Load()),
                    args=[receiver, ast.Constant(value=func.attr)],
                    keywords=[],
                ),
                args=args,
                keywords=[],
            )
        if isinstance(node, ast.Attribute):
            return ast.Call(
                func=ast.Name(id="__attr__", ctx=ast.Load()),
                args=[
                    self._transform(node.value, bound),
                    ast.Constant(value=node.attr),
                ],
                keywords=[],
            )
        if isinstance(node, ast.Dict):
            # The interpreter silently drops `**` unpacking pairs
            # (None keys); mirror that instead of letting Python
            # perform the unpacking.
            keys: list[ast.expr] = []
            values: list[ast.expr] = []
            for key, value in zip(node.keys, node.values):
                if key is None:
                    continue
                keys.append(self._transform(key, bound))
                values.append(self._transform(value, bound))
            return ast.Dict(keys=keys, values=values)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            generators, inner = self._lower_generators(node.generators, bound)
            elt = self._transform(node.elt, inner)
            if isinstance(node, ast.SetComp):
                return ast.SetComp(elt=elt, generators=generators)
            # The interpreter materializes generator expressions into
            # lists; keep that observable behaviour.
            return ast.ListComp(elt=elt, generators=generators)
        if isinstance(node, ast.DictComp):
            generators, inner = self._lower_generators(node.generators, bound)
            return ast.DictComp(
                key=self._transform(node.key, inner),
                value=self._transform(node.value, inner),
                generators=generators,
            )
        if isinstance(node, ast.BoolOp):
            return ast.BoolOp(
                op=node.op,
                values=[self._transform(v, bound) for v in node.values],
            )
        if isinstance(node, ast.BinOp):
            return ast.BinOp(
                left=self._transform(node.left, bound),
                op=node.op,
                right=self._transform(node.right, bound),
            )
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(
                op=node.op, operand=self._transform(node.operand, bound)
            )
        if isinstance(node, ast.Compare):
            return ast.Compare(
                left=self._transform(node.left, bound),
                ops=node.ops,
                comparators=[self._transform(c, bound) for c in node.comparators],
            )
        if isinstance(node, ast.IfExp):
            return ast.IfExp(
                test=self._transform(node.test, bound),
                body=self._transform(node.body, bound),
                orelse=self._transform(node.orelse, bound),
            )
        if isinstance(node, ast.Subscript):
            return ast.Subscript(
                value=self._transform(node.value, bound),
                slice=self._transform(node.slice, bound),
                ctx=ast.Load(),
            )
        if isinstance(node, ast.Slice):
            return ast.Slice(
                lower=self._transform(node.lower, bound) if node.lower else None,
                upper=self._transform(node.upper, bound) if node.upper else None,
                step=self._transform(node.step, bound) if node.step else None,
            )
        if isinstance(node, ast.List):
            return ast.List(
                elts=[self._transform(e, bound) for e in node.elts], ctx=ast.Load()
            )
        if isinstance(node, ast.Tuple):
            return ast.Tuple(
                elts=[self._transform(e, bound) for e in node.elts], ctx=ast.Load()
            )
        if isinstance(node, ast.Set):
            return ast.Set(elts=[self._transform(e, bound) for e in node.elts])
        raise ExpressionError(
            f"unsupported node {type(node).__name__} in {self.source!r}"
        )

    def _lower_generators(
        self,
        generators: list[ast.comprehension],
        bound: frozenset[str],
    ) -> tuple[list[ast.comprehension], frozenset[str]]:
        """Rewrite comprehension generators: the first iterable sees the
        enclosing scope, later pieces see the comprehension targets as
        real local bindings (shadowing env names, like the interpreter's
        scoped copy)."""
        inner = bound
        lowered: list[ast.comprehension] = []
        for position, gen in enumerate(generators):
            iter_scope = bound if position == 0 else inner
            inner = inner | self._target_names(gen.target)
            lowered.append(
                ast.comprehension(
                    target=gen.target,
                    iter=self._transform(gen.iter, iter_scope),
                    ifs=[self._transform(cond, inner) for cond in gen.ifs],
                    is_async=0,
                )
            )
        return lowered, inner

    def _target_names(self, target: ast.expr) -> frozenset[str]:
        if isinstance(target, ast.Name):
            return frozenset((target.id,))
        if isinstance(target, ast.Tuple):
            names: frozenset[str] = frozenset()
            for elt in target.elts:
                names = names | self._target_names(elt)
            return names
        raise ExpressionError(
            f"unsupported comprehension target in {self.source!r}"
        )


def _lower(expression: Expression) -> Callable[[Mapping[str, Any]], Any]:
    """Compile an Expression's checked AST into a callable of one
    environment mapping."""
    source = expression.source

    def _lookup(env: Mapping[str, Any], name: str) -> Any:
        try:
            return env[name]
        except (KeyError, TypeError):
            pass
        if name in _SAFE_CONSTANTS:
            return _SAFE_CONSTANTS[name]
        raise ExpressionError(f"unknown name {name!r} in {source!r}")

    body = _Lowerer(source).lower(expression._tree)
    lambda_node = ast.Expression(
        body=ast.Lambda(
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg="__env__")],
                kwonlyargs=[],
                kw_defaults=[],
                defaults=[],
            ),
            body=body,
        )
    )
    code = compile(
        ast.fix_missing_locations(lambda_node), f"<expr {source!r}>", "eval"
    )
    namespace: dict[str, Any] = {
        "__builtins__": {},
        "__lookup__": _lookup,
        "__attr__": _attr_access,
        "__getattr__": getattr,
    }
    for fn_name, fn in _SAFE_FUNCTIONS.items():
        namespace[_FN_PREFIX + fn_name] = fn
    return eval(code, namespace)  # noqa: S307 - rewritten, builtins-free AST


@lru_cache(maxsize=4096)
def compile_expression(source: str) -> Expression:
    """Parse, check and cache an expression (bounded LRU).

    The returned :class:`Expression` lazily owns a compiled closure, so
    hot paths sharing a source string share one parse and one lowering.
    """
    return Expression(source)


def evaluate(source: str, context: Mapping[str, Any] | None = None) -> Any:
    """Compile (with caching) and evaluate ``source`` against ``context``.

    Uses the compiled fast path; :meth:`Expression.evaluate` remains the
    reference AST interpreter for the authoring/debugging tier.
    """
    return compile_expression(source).evaluate_fast(context)
