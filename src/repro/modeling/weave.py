"""Model weaving: composing multiple models of one application.

Paper Sec. IX (future work): "an MD-DSM platform should be capable of
simultaneously executing (through a weaving step) multiple related
models that describe the different concerns of an application", in the
style of aspect-oriented modeling [30].

:func:`weave_models` merges a *base* model with any number of *aspect*
models conforming to the same metamodel.  Correspondence between
elements is established by a **key** — by default ``(class name,
value of the class's first string attribute)``, i.e. name-based
matching, which is how separately-authored aspects refer to shared
elements.  Semantics:

* matched elements merge: explicitly-set single-valued features of the
  aspect override the base (recorded as :class:`Override` entries);
  many-valued attributes and references union, preserving order;
* unmatched elements are added (containment position follows the
  aspect's structure, attached to the merged counterpart of their
  container);
* cross-references inside added subtrees are re-targeted to the merged
  counterparts of their targets;
* ``strict=True`` turns overrides of *explicitly set* base values into
  :class:`WeaveConflict` errors (two concerns disagreeing about one
  value is then a modeling error, not a silent last-wins).

The woven result is a fresh model; inputs are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.modeling.model import Model, MObject
from repro.modeling.serialize import clone_model

__all__ = ["WeaveConflict", "Override", "WeaveResult", "weave_models", "default_key"]


class WeaveConflict(Exception):
    """Two models disagree on an explicitly-set single value (strict mode)."""


@dataclass(frozen=True)
class Override:
    """A base value replaced by an aspect value during weaving."""

    key: Hashable
    feature: str
    old: Any
    new: Any
    source_model: str

    def __str__(self) -> str:
        return (
            f"{self.key}.{self.feature}: {self.old!r} -> {self.new!r} "
            f"(from {self.source_model!r})"
        )


@dataclass
class WeaveResult:
    """The woven model plus an account of what the weave did."""

    model: Model
    merged: int = 0
    added: int = 0
    overrides: list[Override] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"woven: {self.merged} merged, {self.added} added, "
            f"{len(self.overrides)} override(s)"
        )


def default_key(obj: MObject) -> Hashable:
    """(class name, first string-attribute value) — name-based matching.

    Falls back to the object id for classes without a string attribute,
    which effectively makes such elements add-only.
    """
    for attr in obj.meta.all_attributes().values():
        if attr.type_name == "string" and not attr.many:
            return (obj.meta.name, obj.get(attr.name))
    return (obj.meta.name, obj.id)


def weave_models(
    base: Model,
    *aspects: Model,
    key: Callable[[MObject], Hashable] | None = None,
    name: str = "woven",
    strict: bool = False,
) -> WeaveResult:
    """Weave ``aspects`` into ``base``; returns a fresh composed model."""
    key_fn = key or default_key
    for aspect in aspects:
        if aspect.metamodel is not base.metamodel:
            raise ValueError(
                f"aspect {aspect.name!r} conforms to "
                f"{aspect.metamodel.name!r}, base to {base.metamodel.name!r}"
            )
    result_model = clone_model(base)
    result_model.name = name
    result = WeaveResult(model=result_model)
    #: weave key -> element of the woven model
    index: dict[Hashable, MObject] = {}
    #: keys whose single-valued features were explicitly set (provenance
    #: for strict-mode conflicts): (key, feature) -> source model name
    provenance: dict[tuple[Hashable, str], str] = {}
    for obj in result_model.walk():
        index[key_fn(obj)] = obj
        for feature_name in obj.explicit_attributes():
            provenance[(key_fn(obj), feature_name)] = base.name

    for aspect in aspects:
        #: aspect object -> woven counterpart (for reference fixing)
        counterpart: dict[str, MObject] = {}
        visited_this_aspect: list[tuple[MObject, MObject, bool]] = []
        for root in aspect.roots:
            _merge_element(
                root, None, None, result, index, provenance, counterpart,
                visited_this_aspect, key_fn, aspect.name, strict,
                result_model,
            )
        _fix_references(visited_this_aspect, counterpart, index, key_fn)
    return result


# -- merge machinery ----------------------------------------------------


def _merge_element(
    source: MObject,
    target_container: MObject | None,
    containing_feature: str | None,
    result: WeaveResult,
    index: dict[Hashable, MObject],
    provenance: dict[tuple[Hashable, str], str],
    counterpart: dict[str, MObject],
    visited: list[tuple[MObject, MObject, bool]],
    key_fn: Callable[[MObject], Hashable],
    aspect_name: str,
    strict: bool,
    result_model: Model,
) -> MObject:
    element_key = key_fn(source)
    existing = index.get(element_key)
    if existing is not None:
        counterpart[source.id] = existing
        visited.append((source, existing, False))
        result.merged += 1
        _merge_attributes(
            source, existing, element_key, result, provenance,
            aspect_name, strict,
        )
    else:
        existing = result_model.create(source.meta.name)
        counterpart[source.id] = existing
        index[element_key] = existing
        result.added += 1
        visited.append((source, existing, True))
        for attr_name, value in source.explicit_attributes().items():
            existing.set(
                attr_name, list(value) if isinstance(value, list) else value
            )
            provenance[(element_key, attr_name)] = aspect_name
        if target_container is not None and containing_feature is not None:
            feature = target_container.meta.find_feature(containing_feature)
            if feature is not None and feature.many:
                target_container.get(containing_feature).append(existing)
            else:
                target_container.set(containing_feature, existing)
        else:
            result_model.add_root(existing)
    # recurse into containment children
    for ref_name, ref in source.meta.all_references().items():
        if not ref.containment:
            continue
        children = source.get(ref_name)
        children = list(children) if ref.many else (
            [children] if children is not None else []
        )
        for child in children:
            _merge_element(
                child, existing, ref_name, result, index, provenance,
                counterpart, visited, key_fn, aspect_name, strict,
                result_model,
            )
    return existing


def _merge_attributes(
    source: MObject,
    target: MObject,
    element_key: Hashable,
    result: WeaveResult,
    provenance: dict[tuple[Hashable, str], str],
    aspect_name: str,
    strict: bool,
) -> None:
    for attr_name, value in source.explicit_attributes().items():
        attr = source.meta.all_attributes()[attr_name]
        if attr.many:
            merged = list(target.get(attr_name))
            for item in value:
                if item not in merged:
                    merged.append(item)
            target.set(attr_name, merged)
            continue
        current = target.get(attr_name)
        if current == value:
            continue
        previous_setter = provenance.get((element_key, attr_name))
        if strict and previous_setter is not None:
            raise WeaveConflict(
                f"{element_key}.{attr_name}: {previous_setter!r} set "
                f"{current!r}, {aspect_name!r} sets {value!r}"
            )
        result.overrides.append(
            Override(
                key=element_key, feature=attr_name,
                old=current, new=value, source_model=aspect_name,
            )
        )
        target.set(attr_name, value)
        provenance[(element_key, attr_name)] = aspect_name


def _fix_references(
    visited: list[tuple[MObject, MObject, bool]],
    counterpart: dict[str, MObject],
    index: dict[Hashable, MObject],
    key_fn: Callable[[MObject], Hashable],
) -> None:
    """Point non-containment references of woven elements at woven
    counterparts.  Added elements get all their references installed;
    merged elements union many-valued references and fill single-valued
    references only when the base left them unset (the base's explicit
    reference choices win)."""
    for source, target, is_added in visited:
        _retarget(source, target, counterpart, index, key_fn, is_added)


def _retarget(
    source: MObject,
    target: MObject,
    counterpart: dict[str, MObject],
    index: dict[Hashable, MObject],
    key_fn: Callable[[MObject], Hashable],
    is_added: bool,
) -> None:
    for ref_name, ref in source.meta.all_references().items():
        if ref.containment:
            continue
        value = source.get(ref_name)
        if ref.many:
            for item in value:
                resolved = _resolve(item, counterpart, index, key_fn)
                if resolved is not None and resolved not in target.get(ref_name):
                    target.get(ref_name).append(resolved)
        elif value is not None:
            resolved = _resolve(value, counterpart, index, key_fn)
            if resolved is not None and (is_added or target.get(ref_name) is None):
                target.set(ref_name, resolved)


def _resolve(
    item: MObject,
    counterpart: dict[str, MObject],
    index: dict[Hashable, MObject],
    key_fn: Callable[[MObject], Hashable],
) -> MObject | None:
    found = counterpart.get(item.id)
    if found is not None:
        return found
    return index.get(key_fn(item))
