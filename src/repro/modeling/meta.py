"""Metamodeling kernel: metaclasses, features, and metamodels.

This module is the foundation of the MD-DSM reproduction.  The original
paper builds on the Eclipse Modeling Framework (EMF); offline we provide
an EMF-equivalent kernel with the constructs the paper relies on:

* :class:`MetaClass` — a class in a metamodel, with single/multiple
  inheritance, abstractness, attributes and references.
* :class:`MetaAttribute` — a typed, possibly multi-valued attribute.
* :class:`MetaReference` — a typed reference to instances of another
  metaclass, possibly containment, possibly with an opposite.
* :class:`MetaEnum` — an enumeration datatype.
* :class:`Metamodel` — a named registry of metaclasses and enums, with
  well-formedness checking and cross-metamodel imports.

Instances of metaclasses are :class:`repro.modeling.model.MObject`;
this module holds only the *type level*.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "MetamodelError",
    "MetaEnum",
    "MetaAttribute",
    "MetaReference",
    "MetaClass",
    "FeatureSlot",
    "FeatureTable",
    "Metamodel",
    "ATTRIBUTE_TYPES",
]


class MetamodelError(Exception):
    """Raised when a metamodel is ill-formed or misused."""


#: Attribute type name -> (python type(s) accepted, default factory).
ATTRIBUTE_TYPES: dict[str, tuple[tuple[type, ...], Callable[[], Any]]] = {
    "string": ((str,), str),
    "int": ((int,), int),
    "float": ((float, int), float),
    "bool": ((bool,), bool),
    "any": ((object,), lambda: None),
}


class MetaEnum:
    """An enumeration datatype usable as an attribute type.

    >>> status = MetaEnum("Status", ["idle", "active", "failed"])
    >>> status.is_valid("idle")
    True
    """

    def __init__(self, name: str, literals: Sequence[str]) -> None:
        if not name:
            raise MetamodelError("enum name must be non-empty")
        if not literals:
            raise MetamodelError(f"enum {name!r} must have at least one literal")
        seen: set[str] = set()
        for literal in literals:
            if literal in seen:
                raise MetamodelError(f"enum {name!r} has duplicate literal {literal!r}")
            seen.add(literal)
        self.name = name
        self.literals: tuple[str, ...] = tuple(literals)
        self.default: str = self.literals[0]

    def is_valid(self, value: Any) -> bool:
        return isinstance(value, str) and value in self.literals

    def __contains__(self, value: object) -> bool:
        return self.is_valid(value)

    def __repr__(self) -> str:
        return f"MetaEnum({self.name!r}, literals={list(self.literals)!r})"


class _Feature:
    """Common behaviour of attributes and references."""

    def __init__(self, name: str, *, many: bool, required: bool) -> None:
        if not name or not name.isidentifier():
            raise MetamodelError(f"feature name {name!r} must be a valid identifier")
        self.name = name
        self.many = many
        self.required = required
        self.owner: MetaClass | None = None  # set when added to a class

    @property
    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner is not None else "?"
        return f"{owner}.{self.name}"


class MetaAttribute(_Feature):
    """A typed attribute of a metaclass.

    ``type_name`` is one of :data:`ATTRIBUTE_TYPES` keys or the name of a
    :class:`MetaEnum` registered in the same metamodel.
    """

    def __init__(
        self,
        name: str,
        type_name: str = "string",
        *,
        default: Any = None,
        many: bool = False,
        required: bool = False,
    ) -> None:
        super().__init__(name, many=many, required=required)
        self.type_name = type_name
        self.default = default
        self._enum: MetaEnum | None = None  # resolved by Metamodel

    def resolve(self, metamodel: "Metamodel") -> None:
        if self.type_name in ATTRIBUTE_TYPES:
            self._enum = None
            return
        enum = metamodel.enums.get(self.type_name)
        if enum is None:
            raise MetamodelError(
                f"attribute {self.qualified_name}: unknown type {self.type_name!r}"
            )
        self._enum = enum

    def default_value(self) -> Any:
        """Default for a missing single-valued attribute."""
        if self.default is not None:
            return self.default
        if self._enum is not None:
            return self._enum.default
        return None

    def check_value(self, value: Any) -> None:
        """Raise :class:`MetamodelError` unless ``value`` fits this attribute."""
        if value is None:
            return
        if self._enum is not None:
            if not self._enum.is_valid(value):
                raise MetamodelError(
                    f"{self.qualified_name}: {value!r} is not a literal of "
                    f"enum {self._enum.name!r}"
                )
            return
        accepted, _factory = ATTRIBUTE_TYPES[self.type_name]
        # bool is a subclass of int; keep int attributes honest.
        if self.type_name in ("int", "float") and isinstance(value, bool):
            raise MetamodelError(
                f"{self.qualified_name}: bool {value!r} not valid for {self.type_name}"
            )
        if not isinstance(value, accepted):
            raise MetamodelError(
                f"{self.qualified_name}: {value!r} is not of type {self.type_name!r}"
            )

    def __repr__(self) -> str:
        return f"MetaAttribute({self.qualified_name}: {self.type_name})"


class MetaReference(_Feature):
    """A reference from one metaclass to another.

    ``containment`` references own their targets (a target may have at
    most one container).  ``opposite`` names a reference on the target
    class kept in sync automatically by the instance layer.
    """

    def __init__(
        self,
        name: str,
        target_name: str,
        *,
        containment: bool = False,
        many: bool = False,
        required: bool = False,
        opposite: str | None = None,
    ) -> None:
        super().__init__(name, many=many, required=required)
        self.target_name = target_name
        self.containment = containment
        self.opposite = opposite
        self._target: MetaClass | None = None
        self._opposite_ref: MetaReference | None = None

    @property
    def target(self) -> "MetaClass":
        if self._target is None:
            raise MetamodelError(f"reference {self.qualified_name} is unresolved")
        return self._target

    @property
    def opposite_ref(self) -> "MetaReference | None":
        return self._opposite_ref

    def resolve(self, metamodel: "Metamodel") -> None:
        target = metamodel.find_class(self.target_name)
        if target is None:
            raise MetamodelError(
                f"reference {self.qualified_name}: unknown target class "
                f"{self.target_name!r}"
            )
        self._target = target
        if self.opposite is not None:
            opp = target.find_feature(self.opposite)
            if not isinstance(opp, MetaReference):
                raise MetamodelError(
                    f"reference {self.qualified_name}: opposite {self.opposite!r} "
                    f"is not a reference of {target.name!r}"
                )
            self._opposite_ref = opp
            if opp.opposite is not None and opp.opposite != self.name:
                raise MetamodelError(
                    f"reference {self.qualified_name}: opposite mismatch with "
                    f"{opp.qualified_name}"
                )
            if self.containment and opp.containment:
                raise MetamodelError(
                    f"reference {self.qualified_name}: both sides of an opposite "
                    f"pair cannot be containment"
                )

    def __repr__(self) -> str:
        kind = "contains" if self.containment else "refers to"
        return f"MetaReference({self.qualified_name} {kind} {self.target_name})"


class FeatureSlot:
    """One entry of a :class:`FeatureTable`: where a feature's value
    lives in an instance's slot store, plus what the hot path needs to
    know about it without isinstance checks."""

    __slots__ = ("index", "feature", "is_attribute", "many")

    def __init__(
        self,
        index: int,
        feature: "MetaAttribute | MetaReference",
        is_attribute: bool,
    ) -> None:
        self.index = index
        self.feature = feature
        self.is_attribute = is_attribute
        self.many = feature.many

    def __repr__(self) -> str:
        kind = "attr" if self.is_attribute else "ref"
        return f"FeatureSlot({self.index}, {kind} {self.feature.name!r})"


class FeatureTable:
    """Frozen name -> :class:`FeatureSlot` map for one metaclass.

    Built once per class shape and shared by every instance: feature
    access becomes a single dict hit plus a list index instead of a
    supertype-chain walk.  When the class (or a supertype) gains a
    feature, the table is marked ``stale`` so live instances migrate
    lazily to the rebuilt table on their next access.
    """

    __slots__ = ("slots", "size", "stale")

    def __init__(self, cls: "MetaClass") -> None:
        slots: dict[str, FeatureSlot] = {}
        index = 0
        for name, attr in cls.all_attributes().items():
            slots[name] = FeatureSlot(index, attr, True)
            index += 1
        for name, ref in cls.all_references().items():
            slots[name] = FeatureSlot(index, ref, False)
            index += 1
        self.slots = slots
        self.size = index
        self.stale = False


class MetaClass:
    """A class in a metamodel.

    Supports multiple supertypes; feature lookup walks the supertype
    chain (C3-free, first-match — metamodels here are small and
    diamond-safe because feature names must be globally unique along
    any inheritance path).
    """

    def __init__(
        self,
        name: str,
        *,
        abstract: bool = False,
        supertypes: Sequence["MetaClass"] = (),
    ) -> None:
        if not name or not name[0].isalpha():
            raise MetamodelError(f"metaclass name {name!r} must start with a letter")
        self.name = name
        self.abstract = abstract
        self.supertypes: tuple[MetaClass, ...] = tuple(supertypes)
        self._attributes: dict[str, MetaAttribute] = {}
        self._references: dict[str, MetaReference] = {}
        self.metamodel: Metamodel | None = None
        #: supertype-name closure (incl. own name); supertypes are
        #: immutable after construction so this never invalidates.
        self._closure: frozenset[str] | None = None
        self._feature_table: FeatureTable | None = None
        self._all_attributes: dict[str, MetaAttribute] | None = None
        self._all_references: dict[str, MetaReference] | None = None
        #: classes whose feature table/dicts embed this class's features
        #: (subclasses that built caches) — invalidated on feature adds.
        self._cache_dependents: set[MetaClass] = {self}

    # -- construction -------------------------------------------------

    def add_attribute(self, attribute: MetaAttribute) -> MetaAttribute:
        self._check_fresh_feature(attribute.name)
        attribute.owner = self
        self._attributes[attribute.name] = attribute
        self._invalidate_caches()
        return attribute

    def add_reference(self, reference: MetaReference) -> MetaReference:
        self._check_fresh_feature(reference.name)
        reference.owner = self
        self._references[reference.name] = reference
        self._invalidate_caches()
        return reference

    def _invalidate_caches(self) -> None:
        for dependent in self._cache_dependents:
            table = dependent._feature_table
            if table is not None:
                table.stale = True
                dependent._feature_table = None
            dependent._all_attributes = None
            dependent._all_references = None
        self._cache_dependents = {self}

    def attribute(self, name: str, type_name: str = "string", **kwargs: Any) -> MetaAttribute:
        """Shorthand: create and add an attribute."""
        return self.add_attribute(MetaAttribute(name, type_name, **kwargs))

    def reference(self, name: str, target_name: str, **kwargs: Any) -> MetaReference:
        """Shorthand: create and add a reference."""
        return self.add_reference(MetaReference(name, target_name, **kwargs))

    def _check_fresh_feature(self, name: str) -> None:
        if self.find_feature(name) is not None:
            raise MetamodelError(f"class {self.name!r} already has feature {name!r}")

    # -- queries -------------------------------------------------------

    def all_supertypes(self) -> Iterator["MetaClass"]:
        """All (transitive) supertypes, depth-first, deduplicated."""
        seen: set[str] = set()
        stack = list(self.supertypes)
        while stack:
            super_cls = stack.pop(0)
            if super_cls.name in seen:
                continue
            seen.add(super_cls.name)
            yield super_cls
            stack.extend(super_cls.supertypes)

    def supertype_closure(self) -> frozenset[str]:
        """Names of this class and all transitive supertypes (cached;
        the supertype tuple is immutable after construction)."""
        closure = self._closure
        if closure is None:
            closure = self._closure = frozenset(
                (self.name, *(sup.name for sup in self.all_supertypes()))
            )
        return closure

    def conforms_to(self, other: "MetaClass") -> bool:
        """True if instances of this class are instances of ``other``."""
        if other is self:
            return True
        return other.name in self.supertype_closure()

    def own_attributes(self) -> tuple[MetaAttribute, ...]:
        return tuple(self._attributes.values())

    def own_references(self) -> tuple[MetaReference, ...]:
        return tuple(self._references.values())

    def _register_dependent(self) -> None:
        for super_cls in self.all_supertypes():
            super_cls._cache_dependents.add(self)

    def all_attributes(self) -> dict[str, MetaAttribute]:
        result = self._all_attributes
        if result is None:
            result = {}
            for super_cls in reversed(list(self.all_supertypes())):
                result.update(super_cls._attributes)
            result.update(self._attributes)
            self._all_attributes = result
            self._register_dependent()
        return result

    def all_references(self) -> dict[str, MetaReference]:
        result = self._all_references
        if result is None:
            result = {}
            for super_cls in reversed(list(self.all_supertypes())):
                result.update(super_cls._references)
            result.update(self._references)
            self._all_references = result
            self._register_dependent()
        return result

    def feature_table(self) -> FeatureTable:
        """The frozen per-class feature table (see :class:`FeatureTable`)."""
        table = self._feature_table
        if table is None:
            table = self._feature_table = FeatureTable(self)
            self._register_dependent()
        return table

    def find_feature(self, name: str) -> MetaAttribute | MetaReference | None:
        slot = self.feature_table().slots.get(name)
        return slot.feature if slot is not None else None

    def containment_references(self) -> tuple[MetaReference, ...]:
        return tuple(r for r in self.all_references().values() if r.containment)

    def __repr__(self) -> str:
        flags = " abstract" if self.abstract else ""
        return f"MetaClass({self.name!r}{flags})"


class Metamodel:
    """A named collection of metaclasses and enums.

    A metamodel may *import* other metamodels: class resolution falls
    back to imports, which is how domain DSML metamodels reuse the
    shared middleware metamodel's datatypes.
    """

    def __init__(self, name: str, *, imports: Sequence["Metamodel"] = ()) -> None:
        if not name:
            raise MetamodelError("metamodel name must be non-empty")
        self.name = name
        self.imports: tuple[Metamodel, ...] = tuple(imports)
        self.classes: dict[str, MetaClass] = {}
        self.enums: dict[str, MetaEnum] = {}
        self._resolved = False

    # -- construction -------------------------------------------------

    def add_class(self, cls: MetaClass) -> MetaClass:
        if cls.name in self.classes:
            raise MetamodelError(f"metamodel {self.name!r} already has class {cls.name!r}")
        cls.metamodel = self
        self.classes[cls.name] = cls
        self._resolved = False
        return cls

    def new_class(
        self,
        name: str,
        *,
        abstract: bool = False,
        supertypes: Sequence[MetaClass] = (),
    ) -> MetaClass:
        return self.add_class(MetaClass(name, abstract=abstract, supertypes=supertypes))

    def add_enum(self, enum: MetaEnum) -> MetaEnum:
        if enum.name in self.enums:
            raise MetamodelError(f"metamodel {self.name!r} already has enum {enum.name!r}")
        self.enums[enum.name] = enum
        self._resolved = False
        return enum

    def new_enum(self, name: str, literals: Sequence[str]) -> MetaEnum:
        return self.add_enum(MetaEnum(name, literals))

    # -- resolution & queries -----------------------------------------

    def find_class(self, name: str) -> MetaClass | None:
        found = self.classes.get(name)
        if found is not None:
            return found
        for imported in self.imports:
            found = imported.find_class(name)
            if found is not None:
                return found
        return None

    def require_class(self, name: str) -> MetaClass:
        found = self.find_class(name)
        if found is None:
            raise MetamodelError(f"metamodel {self.name!r}: no class named {name!r}")
        return found

    def find_enum(self, name: str) -> MetaEnum | None:
        found = self.enums.get(name)
        if found is not None:
            return found
        for imported in self.imports:
            found = imported.find_enum(name)
            if found is not None:
                return found
        return None

    def resolve(self) -> "Metamodel":
        """Resolve all references and attribute enum types; validate.

        Idempotent; called automatically by the instance layer before
        any instantiation.
        """
        if self._resolved:
            return self
        for imported in self.imports:
            imported.resolve()
        for cls in self.classes.values():
            for attr in cls.own_attributes():
                self._resolve_attribute(attr)
            for ref in cls.own_references():
                ref.resolve(self)
        self._check_wellformed()
        self._resolved = True
        return self

    def _resolve_attribute(self, attr: MetaAttribute) -> None:
        if attr.type_name in ATTRIBUTE_TYPES:
            attr.resolve(self)
            return
        enum = self.find_enum(attr.type_name)
        if enum is None:
            raise MetamodelError(
                f"attribute {attr.qualified_name}: unknown type {attr.type_name!r}"
            )
        attr._enum = enum

    def _check_wellformed(self) -> None:
        for cls in self.classes.values():
            for sup in cls.all_supertypes():
                if sup.name == cls.name:
                    raise MetamodelError(f"class {cls.name!r} inherits from itself")
            # Feature names must not shadow along the inheritance chain.
            own = {f.name for f in cls.own_attributes()} | {
                f.name for f in cls.own_references()
            }
            for sup in cls.all_supertypes():
                inherited = {f.name for f in sup.own_attributes()} | {
                    f.name for f in sup.own_references()
                }
                shadowed = own & inherited
                if shadowed:
                    raise MetamodelError(
                        f"class {cls.name!r} shadows inherited features "
                        f"{sorted(shadowed)!r} from {sup.name!r}"
                    )

    def iter_classes(self, *, concrete_only: bool = False) -> Iterator[MetaClass]:
        for cls in self.classes.values():
            if concrete_only and cls.abstract:
                continue
            yield cls

    def subclasses_of(self, name: str) -> list[MetaClass]:
        base = self.require_class(name)
        return [cls for cls in self.classes.values() if cls.conforms_to(base)]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.find_class(name) is not None

    def __repr__(self) -> str:
        return (
            f"Metamodel({self.name!r}, classes={len(self.classes)}, "
            f"enums={len(self.enums)})"
        )


def build_metamodel(
    name: str,
    classes: Mapping[str, Mapping[str, Any]],
    *,
    enums: Mapping[str, Iterable[str]] | None = None,
    imports: Sequence[Metamodel] = (),
) -> Metamodel:
    """Declaratively build a metamodel from nested dictionaries.

    ``classes`` maps class name to a spec dict with optional keys:
    ``abstract`` (bool), ``supertypes`` (list of names), ``attributes``
    (name -> type spec) and ``references`` (name -> ref spec).  A type
    spec is either a type-name string or a dict of
    :class:`MetaAttribute` kwargs with ``type``.  A ref spec is a dict
    of :class:`MetaReference` kwargs with ``target``.

    This is the format used by the JSON metamodel serializer and by the
    textual examples; programmatic construction elsewhere uses the
    object API directly.
    """
    metamodel = Metamodel(name, imports=imports)
    for enum_name, literals in (enums or {}).items():
        metamodel.new_enum(enum_name, list(literals))
    # Two passes so supertypes may be declared in any order.
    pending = dict(classes)
    created: dict[str, MetaClass] = {}
    while pending:
        progressed = False
        for cls_name in list(pending):
            spec = pending[cls_name]
            super_names = list(spec.get("supertypes", []))
            if not all(s in created or metamodel.find_class(s) for s in super_names):
                continue
            supertypes = [
                created.get(s) or metamodel.require_class(s) for s in super_names
            ]
            cls = metamodel.new_class(
                cls_name,
                abstract=bool(spec.get("abstract", False)),
                supertypes=supertypes,
            )
            created[cls_name] = cls
            del pending[cls_name]
            progressed = True
        if not progressed:
            raise MetamodelError(
                f"unresolvable supertypes among classes {sorted(pending)!r}"
            )
    for cls_name, spec in classes.items():
        cls = created[cls_name]
        for attr_name, attr_spec in dict(spec.get("attributes", {})).items():
            if isinstance(attr_spec, str):
                cls.attribute(attr_name, attr_spec)
            else:
                kwargs = dict(attr_spec)
                type_name = kwargs.pop("type", "string")
                cls.attribute(attr_name, type_name, **kwargs)
        for ref_name, ref_spec in dict(spec.get("references", {})).items():
            kwargs = dict(ref_spec)
            target = kwargs.pop("target")
            cls.reference(ref_name, target, **kwargs)
    return metamodel.resolve()
