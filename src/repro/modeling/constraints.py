"""OCL-style constraint framework for models.

The paper argues that "the formalization of such abstractions enables
the use of automated tools to verify the consistency of the generated
middleware" (Sec. II).  This module provides that verification layer:

* structural validation (required features, multiplicities, containment
  integrity) derived automatically from the metamodel, and
* user-defined invariants attached to metaclasses, written either as
  Python callables or as safe expression strings (see
  :mod:`repro.modeling.expr`) where ``self`` is the object under check.

Validation never raises on constraint failure; it returns a
:class:`ValidationReport` so callers can present all diagnostics at
once (the behaviour modelers expect from EMF validators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.modeling.expr import Expression, ExpressionError
from repro.modeling.meta import MetaAttribute, Metamodel
from repro.modeling.model import Model, MObject

__all__ = [
    "Severity",
    "Diagnostic",
    "ValidationReport",
    "Invariant",
    "ConstraintRegistry",
    "validate_model",
    "validate_object",
]


class Severity:
    """Diagnostic severity levels (ordered)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    ORDER = {INFO: 0, WARNING: 1, ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    severity: str
    object_id: str
    class_name: str
    message: str
    constraint: str = "structural"

    def __str__(self) -> str:
        return (
            f"[{self.severity}] {self.class_name}({self.object_id}) "
            f"{self.constraint}: {self.message}"
        )


@dataclass
class ValidationReport:
    """All diagnostics produced by one validation run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def merge(self, other: "ValidationReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            summary = "; ".join(str(d) for d in self.errors[:5])
            more = len(self.errors) - 5
            if more > 0:
                summary += f" (+{more} more)"
            raise ValueError(f"model validation failed: {summary}")

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"ValidationReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, total={len(self.diagnostics)})"
        )


class Invariant:
    """A named invariant over instances of a metaclass.

    ``body`` is either a callable ``(obj, context) -> bool`` or an
    expression string where ``self`` denotes the checked object.
    """

    def __init__(
        self,
        name: str,
        class_name: str,
        body: Callable[[MObject, dict[str, Any]], bool] | str,
        *,
        message: str | None = None,
        severity: str = Severity.ERROR,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.message = message or f"invariant {name!r} violated"
        self.severity = severity
        if isinstance(body, str):
            expression = Expression(body)

            def _check(obj: MObject, context: dict[str, Any]) -> bool:
                env = dict(context)
                env["self"] = obj
                return bool(expression.evaluate(env))

            self._check = _check
        else:
            self._check = body

    def holds(self, obj: MObject, context: dict[str, Any]) -> bool:
        return bool(self._check(obj, context))


class ConstraintRegistry:
    """Invariants registered per metaclass name.

    Class-name matching respects inheritance: an invariant on an
    abstract base applies to all conforming instances.
    """

    def __init__(self) -> None:
        self._invariants: dict[str, list[Invariant]] = {}

    def add(self, invariant: Invariant) -> Invariant:
        self._invariants.setdefault(invariant.class_name, []).append(invariant)
        return invariant

    def invariant(
        self,
        name: str,
        class_name: str,
        body: Callable[[MObject, dict[str, Any]], bool] | str,
        **kwargs: Any,
    ) -> Invariant:
        return self.add(Invariant(name, class_name, body, **kwargs))

    def applicable(self, obj: MObject) -> Iterable[Invariant]:
        for class_name, invariants in self._invariants.items():
            if obj.is_a(class_name):
                yield from invariants

    def check(
        self,
        obj: MObject,
        report: ValidationReport,
        context: dict[str, Any] | None = None,
    ) -> None:
        env = context or {}
        for invariant in self.applicable(obj):
            try:
                ok = invariant.holds(obj, env)
            except (ExpressionError, Exception) as exc:  # noqa: BLE001
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        obj.id,
                        obj.meta.name,
                        f"invariant raised: {exc}",
                        constraint=invariant.name,
                    )
                )
                continue
            if not ok:
                report.add(
                    Diagnostic(
                        invariant.severity,
                        obj.id,
                        obj.meta.name,
                        invariant.message,
                        constraint=invariant.name,
                    )
                )

    def __len__(self) -> int:
        return sum(len(v) for v in self._invariants.values())


def _check_structure(obj: MObject, report: ValidationReport) -> None:
    """Structural checks derived from the metaclass."""
    cls = obj.meta
    for attr in cls.all_attributes().values():
        value = obj.get(attr.name)
        if attr.required and _is_unset(attr, value):
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    obj.id,
                    cls.name,
                    f"required attribute {attr.name!r} is unset",
                )
            )
    for ref in cls.all_references().values():
        value = obj.get(ref.name)
        empty = (len(value) == 0) if ref.many else (value is None)
        if ref.required and empty:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    obj.id,
                    cls.name,
                    f"required reference {ref.name!r} is unset",
                )
            )


def _is_unset(attr: MetaAttribute, value: Any) -> bool:
    if attr.many:
        return len(value) == 0
    if value is None:
        return True
    # A required string defaulting to "" counts as unset.
    return attr.type_name == "string" and value == ""


def validate_object(
    obj: MObject,
    registry: ConstraintRegistry | None = None,
    *,
    context: dict[str, Any] | None = None,
) -> ValidationReport:
    """Validate one object and its containment subtree."""
    report = ValidationReport()
    for element in obj.walk():
        _check_structure(element, report)
        if registry is not None:
            registry.check(element, report, context)
    return report


def validate_model(
    model: Model,
    registry: ConstraintRegistry | None = None,
    *,
    context: dict[str, Any] | None = None,
    metamodel: Metamodel | None = None,
) -> ValidationReport:
    """Validate all roots of ``model``.

    If ``metamodel`` is given, additionally checks each object's class
    is known to it (guards against mixing instances across metamodels).
    """
    report = ValidationReport()
    for obj in model.walk():
        if metamodel is not None and metamodel.find_class(obj.meta.name) is None:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    obj.id,
                    obj.meta.name,
                    f"class {obj.meta.name!r} not in metamodel {metamodel.name!r}",
                )
            )
        _check_structure(obj, report)
        if registry is not None:
            registry.check(obj, report, context)
    return report
