"""Tier-3 ahead-of-time generator: DSK -> real Python module source.

PR3's Tier-2 closes over compiled expression closures, but every
dispatch still pays for reflective plumbing: per-call environment
dicts (two full state-dict copies per broker call), per-name
``__lookup__`` closure calls, ``ActionContext`` construction, and
MObject ``get()`` reflection on every feature read.  The KMF line of
work (PAPERS.md) shows the way out for model-driven runtimes on
constrained nodes: treat models as first-class but *compile* them —
flat slot-indexed storage plus generated artifacts instead of
reflective interpretation.

This module turns a loaded DSK (the live
:class:`~repro.middleware.synthesis.interpreter.EntityRule` set and
:class:`~repro.middleware.broker.actions.BrokerActionTable`) into the
*source text* of a plain Python module:

* LTS transitions -> a direct dispatch table
  ``SYN_DISPATCH[(class_name, state, label)] = ((guard_fn|None,
  slot_in_priority_order, render_fn|None), ...)`` — no rule lookup, no
  per-change environment dict;
* command templates -> render functions over ``(change, obj)`` with
  feature reads pre-resolved to flat slot-store indices;
* guards and step expressions -> plain compiled Python functions;
* broker call actions -> one function per exact API string,
  ``BROKER_APIS[api] = fn(resources, state, values, args)``.

Generation is *conservative*: any expression or spec shape whose
Tier-2 semantics cannot be reproduced exactly raises
:class:`AotUnsupported` internally and excludes that class/API from
the generated tables — the runtime falls back to Tier-2 for exactly
those entries, so Tier-3 never changes behaviour, only cost.

The emitted source is deterministic for a given DSK (``repro aot-gen``
output is golden-file checkable) and stamped with ``DSK_HASH`` — a
stable structural hash over the rule/action/slot shape — which the
loader in :mod:`repro.middleware.synthesis.aot` revalidates against
the live platform before installing the tables.
"""

from __future__ import annotations

import ast
import hashlib
import json
import keyword
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.modeling.expr import (
    _SAFE_CONSTANTS,
    _SAFE_FUNCTIONS,
    ExpressionError,
    compile_expression,
)

__all__ = [
    "AotUnsupported",
    "ABI_VERSION",
    "dsk_fingerprint",
    "dsk_hash",
    "generate_module_source",
    "cache_path",
    "read_cached_source",
    "write_cached_source",
]

#: Bumped whenever the generated-module contract (names, signatures,
#: table shapes) changes; the loader refuses modules from another ABI.
ABI_VERSION = 1


class AotUnsupported(Exception):
    """An expression/spec shape Tier-3 cannot compile faithfully.

    Raised and caught *inside* the generator: the surrounding class or
    API is recorded as uncompiled and served by Tier-2 at runtime.
    """


# -- expression -> Python source --------------------------------------------
#
# The compiler reuses Expression's checked AST (whitelist guarantees)
# and mirrors the semantics of Expression._eval / the Tier-2 lowering
# exactly: whitelisted functions resolve to real builtins and are never
# environment-shadowed; method calls are plain attribute calls;
# generic attribute access routes through _attr_access; generator
# expressions materialize as lists; dict displays drop `**` pairs.
# Free names are delegated to a resolver that knows the evaluation
# context (broker step vs synthesis change) and either returns a source
# fragment or raises AotUnsupported.


class NameResolver:
    """Maps a free name to a Python source fragment, or refuses."""

    def resolve(self, name: str) -> str | None:
        """Source fragment for ``name``; None defers to safe constants."""
        raise NotImplementedError

    def resolve_or_constant(self, name: str, source: str) -> str:
        fragment = self.resolve(name)
        if fragment is not None:
            return fragment
        if name in _SAFE_CONSTANTS:
            return repr(_SAFE_CONSTANTS[name])
        raise AotUnsupported(f"unresolvable name {name!r} in {source!r}")


class _SourceCompiler:
    """Rewrites a checked expression AST into plain Python source."""

    def __init__(self, source: str, resolver: NameResolver) -> None:
        self.source = source
        self.resolver = resolver

    def compile(self) -> str:
        try:
            expression = compile_expression(self.source)
        except ExpressionError as exc:
            raise AotUnsupported(
                f"uncompilable expression {self.source!r}: {exc}"
            ) from exc
        rewritten = self._transform(expression._tree, frozenset())
        return ast.unparse(ast.fix_missing_locations(rewritten))

    def _fragment(self, source: str) -> ast.expr:
        return ast.parse(source, mode="eval").body

    def _transform(self, node: ast.expr, bound: frozenset[str]) -> ast.expr:
        if isinstance(node, ast.Constant):
            return node
        if isinstance(node, ast.Name):
            if node.id in bound:
                return node
            return self._fragment(
                self.resolver.resolve_or_constant(node.id, self.source)
            )
        if isinstance(node, ast.Call):
            args = [self._transform(arg, bound) for arg in node.args]
            func = node.func
            if isinstance(func, ast.Name):
                # Whitelisted function: resolved at compile time, never
                # shadowed by the environment (Tier-1/2 parity).  The
                # generated module binds these names to the same
                # builtins _SAFE_FUNCTIONS holds.
                if func.id not in _SAFE_FUNCTIONS:
                    raise AotUnsupported(
                        f"non-whitelisted call {func.id!r} in {self.source!r}"
                    )
                return ast.Call(
                    func=ast.Name(id=func.id, ctx=ast.Load()),
                    args=args,
                    keywords=[],
                )
            assert isinstance(func, ast.Attribute)
            # Method call: plain getattr on the receiver, matching the
            # interpreter's Call branch (NOT the MObject get() path).
            return ast.Call(
                func=ast.Attribute(
                    value=self._transform(func.value, bound),
                    attr=func.attr,
                    ctx=ast.Load(),
                ),
                args=args,
                keywords=[],
            )
        if isinstance(node, ast.Attribute):
            return ast.Call(
                func=ast.Name(id="_attr", ctx=ast.Load()),
                args=[
                    self._transform(node.value, bound),
                    ast.Constant(value=node.attr),
                ],
                keywords=[],
            )
        if isinstance(node, ast.Dict):
            # The interpreter silently drops `**` unpacking pairs.
            keys: list[ast.expr] = []
            values: list[ast.expr] = []
            for key, value in zip(node.keys, node.values):
                if key is None:
                    continue
                keys.append(self._transform(key, bound))
                values.append(self._transform(value, bound))
            return ast.Dict(keys=keys, values=values)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            generators, inner = self._generators(node.generators, bound)
            elt = self._transform(node.elt, inner)
            if isinstance(node, ast.SetComp):
                return ast.SetComp(elt=elt, generators=generators)
            # Generator expressions materialize as lists (tier parity).
            return ast.ListComp(elt=elt, generators=generators)
        if isinstance(node, ast.DictComp):
            generators, inner = self._generators(node.generators, bound)
            return ast.DictComp(
                key=self._transform(node.key, inner),
                value=self._transform(node.value, inner),
                generators=generators,
            )
        if isinstance(node, ast.BoolOp):
            return ast.BoolOp(
                op=node.op,
                values=[self._transform(v, bound) for v in node.values],
            )
        if isinstance(node, ast.BinOp):
            return ast.BinOp(
                left=self._transform(node.left, bound),
                op=node.op,
                right=self._transform(node.right, bound),
            )
        if isinstance(node, ast.UnaryOp):
            return ast.UnaryOp(
                op=node.op, operand=self._transform(node.operand, bound)
            )
        if isinstance(node, ast.Compare):
            return ast.Compare(
                left=self._transform(node.left, bound),
                ops=node.ops,
                comparators=[
                    self._transform(c, bound) for c in node.comparators
                ],
            )
        if isinstance(node, ast.IfExp):
            return ast.IfExp(
                test=self._transform(node.test, bound),
                body=self._transform(node.body, bound),
                orelse=self._transform(node.orelse, bound),
            )
        if isinstance(node, ast.Subscript):
            return ast.Subscript(
                value=self._transform(node.value, bound),
                slice=self._transform(node.slice, bound),
                ctx=ast.Load(),
            )
        if isinstance(node, ast.Slice):
            return ast.Slice(
                lower=self._transform(node.lower, bound) if node.lower else None,
                upper=self._transform(node.upper, bound) if node.upper else None,
                step=self._transform(node.step, bound) if node.step else None,
            )
        if isinstance(node, ast.List):
            return ast.List(
                elts=[self._transform(e, bound) for e in node.elts],
                ctx=ast.Load(),
            )
        if isinstance(node, ast.Tuple):
            return ast.Tuple(
                elts=[self._transform(e, bound) for e in node.elts],
                ctx=ast.Load(),
            )
        if isinstance(node, ast.Set):
            return ast.Set(elts=[self._transform(e, bound) for e in node.elts])
        raise AotUnsupported(
            f"unsupported node {type(node).__name__} in {self.source!r}"
        )

    def _generators(
        self,
        generators: list[ast.comprehension],
        bound: frozenset[str],
    ) -> tuple[list[ast.comprehension], frozenset[str]]:
        inner = bound
        lowered: list[ast.comprehension] = []
        for position, gen in enumerate(generators):
            iter_scope = bound if position == 0 else inner
            inner = inner | self._target_names(gen.target)
            lowered.append(
                ast.comprehension(
                    target=gen.target,
                    iter=self._transform(gen.iter, iter_scope),
                    ifs=[self._transform(cond, inner) for cond in gen.ifs],
                    is_async=0,
                )
            )
        return lowered, inner

    def _target_names(self, target: ast.expr) -> frozenset[str]:
        if isinstance(target, ast.Name):
            return frozenset((target.id,))
        if isinstance(target, ast.Tuple):
            names: frozenset[str] = frozenset()
            for elt in target.elts:
                names = names | self._target_names(elt)
            return names
        raise AotUnsupported(
            f"unsupported comprehension target in {self.source!r}"
        )


def compile_expr_source(source: str, resolver: NameResolver) -> str:
    """Compile a safe-expression string into a Python source fragment."""
    return _SourceCompiler(str(source), resolver).compile()


# -- structural hashing ------------------------------------------------------


def _canonical(value: Any) -> Any:
    """JSON-stable projection of spec payloads (dicts sorted by dumps)."""
    return json.loads(json.dumps(value, sort_keys=True, default=repr))


def _slot_layout(dsml: Any, class_names: Iterable[str]) -> dict[str, list]:
    """Deterministic slot layout for the classes Tier-3 compiles.

    One row per feature slot: ``[name, index, is_attribute, many,
    default]`` — enough for the loader to verify that the live
    metamodel still lays instances out the way the generated flat
    reads assume.
    """
    layout: dict[str, list] = {}
    for class_name in sorted(set(class_names)):
        cls = dsml.find_class(class_name) if dsml is not None else None
        if cls is None:
            continue
        table = cls.feature_table()
        rows = []
        for name in sorted(table.slots):
            slot = table.slots[name]
            default = None
            if slot.is_attribute and not slot.many:
                default = _static_default(slot.feature)
                if default is _DYNAMIC:
                    default = "<dynamic>"
            rows.append(
                [name, slot.index, bool(slot.is_attribute), bool(slot.many),
                 default]
            )
        layout[class_name] = rows
    return layout


_DYNAMIC = object()


def _static_default(attribute: Any) -> Any:
    """The attribute's default if it is a bake-able immutable constant;
    ``_DYNAMIC`` otherwise (forces the reflective read path)."""
    try:
        value = attribute.default_value()
    except Exception:  # noqa: BLE001 - default needs runtime context
        return _DYNAMIC
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return _DYNAMIC


def dsk_fingerprint(
    *,
    rules: Mapping[str, Any] | None = None,
    actions: Iterable[Any] = (),
    dsml: Any = None,
) -> dict[str, Any]:
    """Canonical structural description of a loaded DSK.

    Covers everything the generated module's behaviour depends on: per
    class the LTS shape (states, initial, transitions in declaration
    order with guards/priorities/action templates), the broker action
    table in registration order (pattern, guard, priority, declarative
    steps), and the slot layout of every rule class.  Runtime edits to
    any of these change the hash and invalidate installed modules.
    """
    rule_docs: dict[str, Any] = {}
    for class_name in sorted(rules or {}):
        rule = (rules or {})[class_name]
        lts = rule.lts
        rule_docs[class_name] = {
            "lts": lts.name,
            "initial": lts.initial,
            "on_unmatched": rule.on_unmatched,
            "states": sorted(
                [name, bool(state.final)] for name, state in lts.states.items()
            ),
            "transitions": [
                [
                    t.source, t.label, t.target, t.guard, t.priority,
                    _canonical([dict(template) for template in t.actions]),
                ]
                for t in lts._transitions
            ],
        }
    action_docs = []
    for action in actions:
        steps: Any
        if callable(action.implementation):
            steps = "<callable>"
        else:
            steps = _canonical([dict(step) for step in action.implementation])
        action_docs.append(
            [action.name, action.pattern, action.priority, action.guard, steps]
        )
    return {
        "abi": ABI_VERSION,
        "rules": rule_docs,
        "broker": action_docs,
        "slots": _slot_layout(dsml, rules or {}),
    }


def dsk_hash(fingerprint: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a fingerprint."""
    blob = json.dumps(
        fingerprint, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- broker codegen ----------------------------------------------------------
#
# Tier-2 broker dispatch evaluates step expressions against an env
# built as: state values, overlaid by call args, with "state" bound to
# a state snapshot; step results overwrite the env and every state
# write rebuilds it from scratch (dropping earlier step results).  The
# generated function reproduces that name-resolution order with *zero*
# dict copies: step results become locals (statically cleared at each
# rebuild point), "state" reads the live values dict (pure whitelisted
# methods only, so aliasing is safe), and every other free name goes
# through one _lookup(args, values, name) call.


class _BrokerResolver(NameResolver):
    def __init__(
        self, results: tuple[str, ...], tainted: frozenset[str] = frozenset()
    ) -> None:
        #: step-result names live *at this point* of the step list, in
        #: binding order (later bindings shadow earlier ones).
        self.results = results
        #: result names whose liveness depends on a runtime-conditional
        #: env rebuild (a truthy ``state_expr``): Tier-2 may or may not
        #: still see them, so referencing one is uncompilable.
        self.tainted = tainted

    def resolve(self, name: str) -> str | None:
        if name in self.results:
            return _result_local(name)
        if name in self.tainted:
            raise AotUnsupported(
                f"result {name!r} referenced after a conditional env rebuild"
            )
        if name == "state":
            # env["state"] is (re)assigned after args overlay, so the
            # bare name always reaches the state dict, never an arg.
            return "_values"
        # Inline the call-arg hit (the overwhelmingly common case for
        # api-signature names) so it costs two dict ops and no extra
        # frame; misses fall through to the full resolution order.
        return (
            f"(_a[{name!r}] if {name!r} in _a "
            f"else _lookup(_a, _values, {name!r}))"
        )


def _result_local(name: str) -> str:
    if not name.isidentifier():
        raise AotUnsupported(f"step result {name!r} is not an identifier")
    return f"_r_{name}"


class _Emitter:
    """Indented source accumulator."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def emit(self, line: str = "", *, indent: int = 0) -> None:
        self.lines.append(("    " * indent + line) if line else "")

    def block(self, code: str, *, indent: int = 0) -> None:
        for line in code.splitlines():
            self.emit(line, indent=indent)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _wrap_expr(
    out: _Emitter,
    target: str,
    expr_source: str,
    original: str,
    *,
    indent: int,
) -> None:
    """Assign ``target = <compiled expr>`` with Tier-2's error contract:
    any non-ExpressionError failure surfaces as ExpressionError naming
    the original source string."""
    out.emit("try:", indent=indent)
    out.emit(f"{target} = {expr_source}", indent=indent + 1)
    out.emit("except ExpressionError:", indent=indent)
    out.emit("raise", indent=indent + 1)
    out.emit("except Exception as exc:", indent=indent)
    out.emit(
        f"raise ExpressionError(_EVAL_ERR % ({original!r}, exc)) from exc",
        indent=indent + 1,
    )


def _compile_broker_action(action: Any, out: _Emitter, fn_name: str) -> None:
    """Emit one ``def fn(resources, state, _values, _a)`` broker body."""
    steps = action.implementation
    if callable(steps):
        raise AotUnsupported(f"action {action.name!r}: Python implementation")
    out.emit(f"def {fn_name}(resources, state, _values, _a):")
    results: tuple[str, ...] = ()
    tainted: frozenset[str] = frozenset()
    emitted = 0
    has_value = False
    for step in steps:
        step = dict(step)
        if "set" in step:
            expr = compile_expr_source(
                step["expr"], _BrokerResolver(results, tainted)
            )
            _wrap_expr(out, "_tmp", expr, str(step["expr"]), indent=1)
            out.emit(f"state.set({str(step['set'])!r}, _tmp)", indent=1)
            results = ()  # env rebuild point: step results are dropped
            tainted = frozenset()
            emitted += 1
            continue
        if "compute" in step:
            expr = compile_expr_source(
                step["compute"], _BrokerResolver(results, tainted)
            )
            _wrap_expr(out, "_value", expr, str(step["compute"]), indent=1)
            has_value = True
            result = step.get("result")
            if result:
                out.emit(f"{_result_local(str(result))} = _value", indent=1)
                results = tuple(
                    n for n in results if n != str(result)
                ) + (str(result),)
                tainted = tainted - {str(result)}
            emitted += 1
            continue
        # invoke step
        resource = step.get("resource")
        operation = step.get("operation")
        if (resource is None and "resource_expr" not in step) or not operation:
            raise AotUnsupported(
                f"action {action.name!r}: malformed step {step!r}"
            )
        if resource is not None:
            resource_src = repr(str(resource))
        else:
            expr = compile_expr_source(
                step["resource_expr"], _BrokerResolver(results, tainted)
            )
            _wrap_expr(out, "_resource", expr, str(step["resource_expr"]), indent=1)
            resource_src = "str(_resource)"
        arg_items: list[tuple[str, str]] = [
            (key, repr(value))
            for key, value in dict(step.get("args", {})).items()
        ]
        for key, expr_text in dict(step.get("args_expr", {})).items():
            expr = compile_expr_source(
                expr_text, _BrokerResolver(results, tainted)
            )
            local = f"_x{emitted}_{len(arg_items)}"
            _wrap_expr(out, local, expr, str(expr_text), indent=1)
            arg_items.append((key, local))
        # Emit plain keyword arguments where the key allows it (skips
        # the ``**{...}`` build-then-unpack dict); non-identifier keys
        # keep the dict form.
        kw_parts = [
            f"{key}={src}" for key, src in arg_items
            if key.isidentifier() and not keyword.iskeyword(key)
        ]
        dict_parts = [
            f"{key!r}: {src}" for key, src in arg_items
            if not (key.isidentifier() and not keyword.iskeyword(key))
        ]
        call_args = "".join(
            [
                f", {part}" for part in kw_parts
            ] + ([f", **{{{', '.join(dict_parts)}}}"] if dict_parts else [])
        )
        out.emit(
            f"_value = resources.invoke({resource_src}, "
            f"{str(operation)!r}{call_args})",
            indent=1,
        )
        has_value = True
        result = step.get("result")
        if result:
            out.emit(f"{_result_local(str(result))} = _value", indent=1)
            results = tuple(
                n for n in results if n != str(result)
            ) + (str(result),)
            tainted = tainted - {str(result)}
        state_key = step.get("state")
        if state_key is not None:
            if state_key:  # Tier-2 skips falsy static keys entirely
                out.emit(f"state.set({str(state_key)!r}, _value)", indent=1)
                results = ()
                tainted = frozenset()
        elif "state_expr" in step:
            expr = compile_expr_source(
                step["state_expr"], _BrokerResolver(results, tainted)
            )
            _wrap_expr(out, "_skey", expr, str(step["state_expr"]), indent=1)
            out.emit("if _skey:", indent=1)
            out.emit("state.set(str(_skey), _value)", indent=2)
            # The rebuild is runtime-conditional: prior results *may*
            # have been dropped; later references are uncompilable.
            tainted = tainted | frozenset(results)
            results = ()
        emitted += 1
    out.emit("return _value" if has_value else "return None", indent=1)


def _compilable_broker_apis(actions: list[Any]) -> dict[str, Any]:
    """Exact API string -> winning action, for APIs whose selection is
    static: a unique guard-free exact-pattern winner that no wildcard
    or guarded candidate could displace at runtime."""
    from repro.runtime.topics import TopicMatcher

    exact: dict[str, list[tuple[int, Any]]] = {}
    wildcards: list[tuple[int, Any]] = []
    for order, action in enumerate(actions):
        if TopicMatcher.is_wildcard(action.pattern):
            wildcards.append((order, action))
        else:
            exact.setdefault(action.pattern, []).append((order, action))
    table: dict[str, Any] = {}
    for api, entries in exact.items():
        candidates = list(entries)
        for order, action in wildcards:
            if action._topic_match(api):
                candidates.append((order, action))
        if any(action.guard is not None for _order, action in candidates):
            continue  # selection depends on runtime state: Tier-2 only
        best = min(candidates, key=lambda e: (-e[1].priority, e[0]))
        table[api] = best[1]
    return table


# -- synthesis codegen -------------------------------------------------------
#
# Tier-2 change interpretation builds, per change, an env of: change
# fields (change/object_id/class_name/feature/old/new/added/removed),
# then "obj"/object attributes via setdefault (change fields win),
# then "old_obj".  The generated render/guard functions take
# ``(change, obj)`` and resolve each name statically against that
# precedence; declared single-valued plain attributes become flat
# slot-store reads.


class _SynthesisResolver(NameResolver):
    _CHANGE_FIELDS = {
        "object_id": "_c.object_id",
        "class_name": "_c.class_name",
        "feature": "_c.feature",
        "old": "_c.old",
        "new": "_c.new",
        # Tier-2 materializes these tuples into lists.
        "added": "list(_c.added)",
        "removed": "list(_c.removed)",
    }

    def __init__(
        self,
        attributes: Mapping[str, tuple[int, Any]],
        class_name: str,
        *,
        in_foreach: bool = False,
    ) -> None:
        #: declared attr name -> (slot index, static default or
        #: _DYNAMIC); flat reads only for bake-able defaults.
        self.attributes = attributes
        self.class_name = class_name
        self.in_foreach = in_foreach

    def resolve(self, name: str) -> str | None:
        if self.in_foreach and name == "item":
            return "_item"
        if name == "change":
            return "_c"
        if name in self._CHANGE_FIELDS:
            return self._CHANGE_FIELDS[name]
        if name == "obj":
            return "_obj"
        if name == "old_obj":
            return "(_c.old_object if _c.old_object is not None else _obj)"
        entry = self.attributes.get(name)
        if entry is not None:
            index, default = entry
            if default is _DYNAMIC:
                return f"_attr(_obj, {name!r})"
            return (
                f"_slot(_obj, {index}, {name!r}, {default!r}, "
                f"_TBL_{_mangle(self.class_name)})"
            )
        return None


def _rule_attribute_slots(
    dsml: Any, class_name: str
) -> tuple[dict[str, tuple[int, Any]], list[str]]:
    """(single-valued attribute -> (slot index, default), many-valued
    attribute names) for ``class_name``; raises AotUnsupported when the
    class is unknown to the DSML."""
    cls = dsml.find_class(class_name) if dsml is not None else None
    if cls is None:
        raise AotUnsupported(f"class {class_name!r} not in DSML")
    table = cls.feature_table()
    attributes: dict[str, tuple[int, Any]] = {}
    many: list[str] = []
    for name in cls.all_attributes():
        slot = table.slots.get(name)
        if slot is None:
            raise AotUnsupported(f"{class_name}.{name}: no slot")
        if slot.many:
            many.append(name)
            attributes[name] = (slot.index, _DYNAMIC)
        else:
            attributes[name] = (slot.index, _static_default(slot.feature))
    return attributes, many


def _compile_template_renderer(
    template: Mapping[str, Any],
    attributes: Mapping[str, tuple[int, Any]],
    class_name: str,
    out: _Emitter,
    fn_name: str,
) -> None:
    """Emit ``def fn(_c, _obj)`` returning a list of Commands for one
    command template (when/foreach/args_expr/target_expr resolved)."""
    operation = template.get("operation")
    if not operation:
        raise AotUnsupported(f"template missing operation: {template!r}")
    foreach = template.get("foreach")
    resolver = _SynthesisResolver(
        attributes, class_name, in_foreach=foreach is not None
    )
    out.emit(f"def {fn_name}(_c, _obj):")
    out.emit("_commands = []", indent=1)
    indent = 1
    if foreach is not None:
        items_src = compile_expr_source(
            foreach, _SynthesisResolver(attributes, class_name)
        )
        _wrap_expr(out, "_items", items_src, str(foreach), indent=1)
        out.emit("for _item in _items:", indent=1)
        indent = 2
    if "when" in template:
        when_src = compile_expr_source(template["when"], resolver)
        _wrap_expr(out, "_when", when_src, str(template["when"]), indent=indent)
        out.emit("if not _when:", indent=indent)
        out.emit("continue" if foreach is not None else "return _commands",
                 indent=indent + 1)
    literal_args = dict(template.get("args", {}))
    arg_parts = [f"{key!r}: {value!r}" for key, value in literal_args.items()]
    for position, (key, expr_text) in enumerate(
        dict(template.get("args_expr", {})).items()
    ):
        expr = compile_expr_source(expr_text, resolver)
        local = f"_a{position}"
        _wrap_expr(out, local, expr, str(expr_text), indent=indent)
        arg_parts.append(f"{key!r}: {local}")
    target = template.get("target")
    if target is not None:
        # Tier-2 passes the literal through untouched (no str()), so
        # only repr-round-trippable literals can be baked.
        if not isinstance(target, (str, int, float, bool)):
            raise AotUnsupported(f"non-literal target {target!r}")
        target_src = repr(target)
    elif "target_expr" in template:
        expr = compile_expr_source(template["target_expr"], resolver)
        _wrap_expr(out, "_target", expr, str(template["target_expr"]), indent=indent)
        target_src = "str(_target)"
    else:
        target_src = "None"
    out.emit(
        f"_commands.append(Command(operation={str(operation)!r}, "
        f"args={{{', '.join(arg_parts)}}}, "
        f"classifier={template.get('classifier')!r}, "
        f"target={target_src}, guard={template.get('guard')!r}))",
        indent=indent,
    )
    out.emit("return _commands", indent=1)


# -- module emission ---------------------------------------------------------

_MODULE_PRELUDE = '''\
"""AOT-generated Tier-3 dispatch module.  DO NOT EDIT.

Generated by repro.modeling.aotgen from a loaded DSK; regenerate with
`repro aot-gen <domain>`.  Installed by
repro.middleware.synthesis.aot.install_program after DSK_HASH and
SLOT_LAYOUT validation.
"""

from repro.middleware.synthesis.scripts import Command
from repro.modeling.expr import ExpressionError, _attr_access as _attr
from repro.modeling.model import _MISSING

_EVAL_ERR = "error evaluating %r: %s"
_CONSTANTS = {"True": True, "False": False, "None": None}


def _lookup(_a, _values, name):
    """Tier-2 name resolution: call args overlay state values, then
    safe constants; unknown names raise like the interpreter."""
    try:
        return _a[name]
    except KeyError:
        pass
    try:
        return _values[name]
    except KeyError:
        pass
    try:
        return _CONSTANTS[name]
    except KeyError:
        raise ExpressionError("unknown name %r" % (name,)) from None


def _slot(obj, index, name, default, table):
    """Flat single-valued attribute read with MObject.get() parity.

    ``table`` is the live feature table captured at install time (the
    ``_TBL_*`` globals, bound by the aot loader after SLOT_LAYOUT
    validation); an instance on any other table — imported standalone,
    metamodel edited, store migrated — takes the reflective path, so a
    stale flat index can never read the wrong slot.
    """
    if obj._table is not table:
        return _attr(obj, name)
    value = obj._store[index]
    if value is _MISSING:
        return default
    return value
'''


def generate_module_source(
    *,
    rules: Mapping[str, Any],
    actions: list[Any],
    dsml: Any,
    domain: str = "",
) -> str:
    """Emit the complete Tier-3 module source for a loaded DSK.

    ``rules`` maps class name -> EntityRule (the interpreter's live
    rule set); ``actions`` is the broker action table's registration-
    ordered action list; ``dsml`` the domain metamodel (slot layouts).
    Output is deterministic: same DSK -> byte-identical source.
    """
    fingerprint = dsk_fingerprint(rules=rules, actions=actions, dsml=dsml)
    digest = dsk_hash(fingerprint)
    out = _Emitter()
    out.block(_MODULE_PRELUDE)
    out.emit()
    out.emit(f"ABI = {ABI_VERSION}")
    out.emit(f"DOMAIN = {domain!r}")
    out.emit(f"DSK_HASH = {digest!r}")
    out.emit()

    # -- broker API functions (sorted for deterministic output) --------
    broker_apis = _compilable_broker_apis(actions)
    api_entries: list[tuple[str, str]] = []
    skipped_apis: list[str] = []
    for position, api in enumerate(sorted(broker_apis)):
        action = broker_apis[api]
        fn_name = f"_api_{position}_{_mangle(api)}"
        attempt = _Emitter()
        try:
            _compile_broker_action(action, attempt, fn_name)
        except AotUnsupported:
            skipped_apis.append(api)
            continue
        out.block(attempt.text().rstrip("\n"))
        out.emit()
        api_entries.append((api, fn_name))
    out.emit()
    out.emit("BROKER_APIS = {")
    for api, fn_name in api_entries:
        out.emit(f"{api!r}: {fn_name},", indent=1)
    out.emit("}")
    out.emit()
    out.emit(f"BROKER_SKIPPED = {sorted(skipped_apis)!r}")
    out.emit()

    # -- synthesis dispatch tables -------------------------------------
    dispatch_rows: list[str] = []
    compiled_classes: list[str] = []
    skipped_classes: list[str] = []
    fn_counter = 0
    for class_name in sorted(rules):
        rule = rules[class_name]
        attempt = _Emitter()
        rows: list[str] = []
        try:
            attributes, many_attrs = _rule_attribute_slots(dsml, class_name)
            by_key: dict[tuple[str, str], list[Any]] = {}
            for transition in rule.lts._transitions:
                by_key.setdefault(
                    (transition.source, transition.label), []
                ).append(transition)
            for (state, label) in sorted(by_key):
                ordered = sorted(
                    by_key[(state, label)], key=lambda t: -t.priority
                )
                entries: list[str] = []
                for slot_index, transition in enumerate(ordered):
                    guard_name = "None"
                    if transition.guard is not None:
                        guard_name = f"_g{fn_counter}"
                        fn_counter += 1
                        guard_src = compile_expr_source(
                            transition.guard,
                            _SynthesisResolver(attributes, class_name),
                        )
                        attempt.emit(f"def {guard_name}(_c, _obj):")
                        _wrap_expr(
                            attempt, "_value", guard_src,
                            str(transition.guard), indent=1,
                        )
                        attempt.emit("return bool(_value)", indent=1)
                        attempt.emit()
                    render_names: list[str] = []
                    for template in transition.actions:
                        render_name = f"_t{fn_counter}"
                        fn_counter += 1
                        _compile_template_renderer(
                            dict(template), attributes, class_name,
                            attempt, render_name,
                        )
                        attempt.emit()
                        render_names.append(render_name)
                    renders = (
                        "(" + ", ".join(render_names) + ("," if render_names else "") + ")"
                    )
                    entries.append(
                        f"({guard_name}, {slot_index}, {renders})"
                    )
                rows.append(
                    f"({class_name!r}, {state!r}, {label!r}): "
                    f"({', '.join(entries)},),"
                )
        except AotUnsupported:
            skipped_classes.append(class_name)
            continue
        # Live feature table sentinel: None until the aot loader binds
        # it, so a standalone import always takes the reflective path.
        out.emit(f"_TBL_{_mangle(class_name)} = None")
        out.emit()
        out.block(attempt.text().rstrip("\n"))
        if attempt.lines:
            out.emit()
        dispatch_rows.extend(rows)
        compiled_classes.append(class_name)
        # Tier-2's change env calls obj.get() on every attribute, which
        # materializes many-valued lists into the slot store (an
        # externally visible side effect on serialization); the
        # dispatcher preserves it by touching exactly those features.
        out.emit(
            f"_MANY_{_mangle(class_name)} = {tuple(sorted(many_attrs))!r}"
        )
        out.emit()
    out.emit("SYN_DISPATCH = {")
    for row in dispatch_rows:
        out.emit(row, indent=1)
    out.emit("}")
    out.emit()
    out.emit("SYN_MANY_ATTRS = {")
    for class_name in compiled_classes:
        out.emit(
            f"{class_name!r}: _MANY_{_mangle(class_name)},", indent=1
        )
    out.emit("}")
    out.emit()
    out.emit(f"SYN_CLASSES = frozenset({sorted(compiled_classes)!r})")
    out.emit(f"SYN_SKIPPED = {sorted(skipped_classes)!r}")
    out.emit()
    # repr, not json.dumps: the layout must be a Python literal, and
    # _slot_layout already builds it with sorted, deterministic order.
    out.emit(f"SLOT_LAYOUT = {fingerprint['slots']!r}")
    return out.text()


def _mangle(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


# -- on-disk module cache ----------------------------------------------------
#
# Generated source is deterministic for a DSK, and DSK_HASH covers the
# ABI and the full structural fingerprint — so a module cached on disk
# keyed by the hash is safe to load anywhere the live DSK hashes the
# same (the loader revalidates before install either way).  Cold
# platform starts — local restarts or remote cluster workers — skip
# generation entirely on a cache hit.


def cache_path(cache_dir: str | os.PathLike, digest: str) -> Path:
    """Where a generated module for ``digest`` lives under ``cache_dir``."""
    return Path(cache_dir) / f"aot-{digest}.py"


def read_cached_source(
    cache_dir: str | os.PathLike, digest: str
) -> str | None:
    """Cached module source for ``digest``, or None on miss/unreadable.

    Corrupt or truncated cache files are the loader's problem by
    design: ``load_program`` revalidates ABI and DSK_HASH against the
    live DSK and raises ``AotError`` on any mismatch, at which point
    callers regenerate and overwrite.
    """
    try:
        return cache_path(cache_dir, digest).read_text(encoding="utf-8")
    except OSError:
        return None


def write_cached_source(
    cache_dir: str | os.PathLike, digest: str, source: str
) -> Path:
    """Atomically persist generated module source keyed by ``digest``.

    Write-to-temp then ``os.replace`` so a concurrent reader (another
    worker process warming the same DSK) never sees a torn file.
    """
    target = cache_path(cache_dir, digest)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(source, encoding="utf-8")
    os.replace(tmp, target)
    return target
