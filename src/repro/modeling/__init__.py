"""EMF-equivalent metamodeling kernel.

Public surface of the kernel used by the middleware stack, the domain
DSMLs, and user code:

* :mod:`repro.modeling.meta` — metaclasses, attributes, references, enums.
* :mod:`repro.modeling.model` — typed instances and model containers.
* :mod:`repro.modeling.constraints` — OCL-style validation.
* :mod:`repro.modeling.serialize` — JSON documents and cloning.
* :mod:`repro.modeling.diff` — model comparison (change lists).
* :mod:`repro.modeling.lts` — labeled transition systems.
* :mod:`repro.modeling.expr` — safe expression language.
* :mod:`repro.modeling.templates` — code-template engine.
* :mod:`repro.modeling.weave` — aspect-style model composition.
"""

from repro.modeling.constraints import (
    ConstraintRegistry,
    Diagnostic,
    Invariant,
    Severity,
    ValidationReport,
    validate_model,
    validate_object,
)
from repro.modeling.diff import Change, ChangeList, diff_models, diff_objects
from repro.modeling.expr import Expression, ExpressionError, evaluate
from repro.modeling.lts import LTS, LTSError, LTSExecution, State, Transition
from repro.modeling.meta import (
    MetaAttribute,
    MetaClass,
    MetaEnum,
    Metamodel,
    MetamodelError,
    MetaReference,
    build_metamodel,
)
from repro.modeling.model import Model, ModelError, MObject
from repro.modeling.serialize import (
    SerializationError,
    clone_model,
    clone_object,
    metamodel_from_dict,
    metamodel_to_dict,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
    object_to_dict,
)
from repro.modeling.templates import Template, TemplateError, render
from repro.modeling.weave import (
    Override,
    WeaveConflict,
    WeaveResult,
    default_key,
    weave_models,
)

__all__ = [
    # meta
    "Metamodel", "MetaClass", "MetaAttribute", "MetaReference", "MetaEnum",
    "MetamodelError", "build_metamodel",
    # model
    "Model", "MObject", "ModelError",
    # constraints
    "ConstraintRegistry", "Invariant", "Diagnostic", "Severity",
    "ValidationReport", "validate_model", "validate_object",
    # serialize
    "SerializationError", "model_to_dict", "model_from_dict",
    "model_to_json", "model_from_json", "object_to_dict",
    "metamodel_to_dict", "metamodel_from_dict", "clone_model", "clone_object",
    # diff
    "Change", "ChangeList", "diff_models", "diff_objects",
    # lts
    "LTS", "LTSExecution", "LTSError", "State", "Transition",
    # expr
    "Expression", "ExpressionError", "evaluate",
    # templates
    "Template", "TemplateError", "render",
    # weave
    "weave_models", "WeaveResult", "WeaveConflict", "Override", "default_key",
]
