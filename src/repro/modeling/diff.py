"""Model comparison: the heart of the Synthesis layer.

The paper's Synthesis layer "involves comparing two models at runtime:
the model that is currently running (an empty model if the system has
just been started) and a new (updated) model submitted by the user"
(Sec. V-B).  This module computes that difference as a
:class:`ChangeList` of typed change entries, matched by object id.

Change kinds:

* ``add``     — object present only in the new model (one change per
  added object, parents before children),
* ``remove``  — object present only in the old model (one change per
  removed object, children before parents),
* ``set``     — single-valued attribute or reference changed,
* ``list``    — multi-valued feature membership changed (added/removed),
* ``move``    — object re-parented to a different container.

The change list is ordered for safe replay: removals bottom-up, then
sets/moves, then additions top-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.modeling.meta import MetaAttribute, MetaReference
from repro.modeling.model import Model, MObject

__all__ = ["Change", "ChangeList", "diff_models", "diff_objects"]


@dataclass(frozen=True)
class Change:
    """One atomic difference between two models."""

    kind: str                      # add | remove | set | list | move
    object_id: str
    class_name: str
    feature: str | None = None
    old: Any = None
    new: Any = None
    added: tuple[str, ...] = ()    # for kind == "list": ids or values added
    removed: tuple[str, ...] = ()  # for kind == "list": ids or values removed
    new_object: MObject | None = None   # for kind == "add": the subtree
    old_object: MObject | None = None   # for kind == "remove": the subtree

    def __str__(self) -> str:
        if self.kind == "add":
            return f"add {self.class_name}({self.object_id})"
        if self.kind == "remove":
            return f"remove {self.class_name}({self.object_id})"
        if self.kind == "move":
            return (
                f"move {self.class_name}({self.object_id}) "
                f"{self.old} -> {self.new}"
            )
        if self.kind == "list":
            return (
                f"list {self.class_name}({self.object_id}).{self.feature} "
                f"+{list(self.added)} -{list(self.removed)}"
            )
        return (
            f"set {self.class_name}({self.object_id}).{self.feature} "
            f"{self.old!r} -> {self.new!r}"
        )


@dataclass
class ChangeList:
    """Ordered list of changes from an old model to a new model."""

    changes: list[Change] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.changes

    def by_kind(self, kind: str) -> list[Change]:
        return [c for c in self.changes if c.kind == kind]

    def for_class(self, class_name: str) -> list[Change]:
        return [c for c in self.changes if c.class_name == class_name]

    def for_object(self, object_id: str) -> list[Change]:
        return [c for c in self.changes if c.object_id == object_id]

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __repr__(self) -> str:
        counts: dict[str, int] = {}
        for change in self.changes:
            counts[change.kind] = counts.get(change.kind, 0) + 1
        return f"ChangeList({counts})"


def _value_token(value: Any) -> Any:
    """Comparable token for a feature value (objects compare by id)."""
    if isinstance(value, MObject):
        return f"$ref:{value.id}"
    return value


def _feature_changes(
    old_obj: MObject,
    new_obj: MObject,
    *,
    skip_containment: bool,
) -> Iterator[Change]:
    """Feature-level changes; every yielded change carries both the new
    and the old version of the object, so downstream interpreters can
    navigate from either side of the change."""
    cls = new_obj.meta
    for name, attr in cls.all_attributes().items():
        old_value = old_obj.get(name)
        new_value = new_obj.get(name)
        if attr.many:
            old_list = list(old_value)
            new_list = list(new_value)
            if old_list != new_list:
                added = tuple(str(v) for v in new_list if v not in old_list)
                removed = tuple(str(v) for v in old_list if v not in new_list)
                if added or removed:
                    yield Change(
                        "list", new_obj.id, cls.name, feature=name,
                        added=added, removed=removed,
                        old=old_list, new=new_list, new_object=new_obj,
                        old_object=old_obj,
                    )
                else:  # pure reordering
                    yield Change(
                        "set", new_obj.id, cls.name, feature=name,
                        old=old_list, new=new_list, new_object=new_obj,
                        old_object=old_obj,
                    )
        elif old_value != new_value:
            yield Change(
                "set", new_obj.id, cls.name, feature=name,
                old=old_value, new=new_value, new_object=new_obj,
                old_object=old_obj,
            )
    for name, ref in cls.all_references().items():
        if ref.containment and skip_containment:
            continue
        old_value = old_obj.get(name)
        new_value = new_obj.get(name)
        if ref.many:
            old_ids = [_value_token(v) for v in old_value]
            new_ids = [_value_token(v) for v in new_value]
            added = tuple(i[5:] for i in new_ids if i not in old_ids)
            removed = tuple(i[5:] for i in old_ids if i not in new_ids)
            if added or removed:
                yield Change(
                    "list", new_obj.id, cls.name, feature=name,
                    added=added, removed=removed, new_object=new_obj,
                    old_object=old_obj,
                )
        else:
            old_token = _value_token(old_value)
            new_token = _value_token(new_value)
            if old_token != new_token:
                # Store plain object ids (not internal $ref tokens) so
                # interpreters see the same identifiers as list changes.
                yield Change(
                    "set", new_obj.id, cls.name, feature=name,
                    old=_strip_ref(old_token), new=_strip_ref(new_token),
                    new_object=new_obj, old_object=old_obj,
                )


def _strip_ref(token):
    if isinstance(token, str) and token.startswith("$ref:"):
        return token[5:]
    return token


def _containment_parent_id(obj: MObject) -> str | None:
    return obj.container.id if obj.container is not None else None


def _signature(obj: MObject, memo: dict[str, tuple]) -> tuple:
    """Structural signature of an object's subtree, memoized by id.

    Two subtrees with equal signatures would produce no ``set``/``list``
    changes anywhere inside, so the differ can skip them wholesale.
    Signatures embed child signatures, which makes the equality check a
    C-level deep compare instead of a Python feature walk.  Reference
    order is part of the signature, so the fast path is conservative:
    a reordered many-reference disables the skip and falls back to the
    exact per-feature comparison.
    """
    sig = memo.get(obj.id)
    if sig is not None:
        return sig
    cls = obj.meta
    parts: list[Any] = [cls.name, obj.id]
    for name, attr in cls.all_attributes().items():
        value = obj.get(name)
        parts.append(tuple(value) if attr.many else value)
    for name, ref in cls.all_references().items():
        value = obj.get(name)
        if ref.containment:
            if ref.many:
                parts.append(tuple(_signature(child, memo) for child in value))
            else:
                parts.append(
                    _signature(value, memo) if value is not None else None
                )
        elif ref.many:
            parts.append(tuple(_value_token(v) for v in value))
        else:
            parts.append(_value_token(value))
    sig = tuple(parts)
    memo[obj.id] = sig
    return sig


def diff_models(old: Model, new: Model) -> ChangeList:
    """Compute the ordered change list transforming ``old`` into ``new``.

    Objects are matched by id; an object appearing in both models with
    a different class is treated as remove + add.
    """
    old_index = old.index()
    new_index = new.index()
    old_ids = set(old_index)
    new_ids = set(new_index)

    retyped = {
        oid
        for oid in old_ids & new_ids
        if old_index[oid].meta.name != new_index[oid].meta.name
    }
    removed_ids = (old_ids - new_ids) | retyped
    added_ids = (new_ids - old_ids) | retyped
    common_ids = (old_ids & new_ids) - retyped

    removals: list[Change] = []
    # One removal per removed object, children before parents, so
    # interpreters tear entities down bottom-up.
    for oid in sorted(
        removed_ids, key=lambda i: -old_index[i].path().count("/")
    ):
        obj = old_index[oid]
        removals.append(
            Change("remove", oid, obj.meta.name, old_object=obj)
        )

    updates: list[Change] = []
    moves: list[Change] = []
    old_sigs: dict[str, tuple] = {}
    new_sigs: dict[str, tuple] = {}
    #: ids inside an unchanged subtree: feature/move comparison skipped
    #: (an equal signature fixes every descendant's features *and*
    #: containment parent; only the subtree root can still have moved).
    unchanged: set[str] = set()
    for oid in sorted(common_ids, key=lambda i: new_index[i].path()):
        if oid in unchanged:
            continue
        old_obj = old_index[oid]
        new_obj = new_index[oid]
        old_parent = _containment_parent_id(old_obj)
        new_parent = _containment_parent_id(new_obj)
        if old_parent != new_parent:
            moves.append(
                Change(
                    "move", oid, new_obj.meta.name,
                    old=old_parent, new=new_parent, new_object=new_obj,
                )
            )
        if _signature(old_obj, old_sigs) == _signature(new_obj, new_sigs):
            unchanged.update(child.id for child in new_obj.walk())
            continue
        updates.extend(
            _feature_changes(old_obj, new_obj, skip_containment=True)
        )

    additions: list[Change] = []
    # One addition per added object, parents before children, so
    # interpreters build entities top-down (a child's rule may navigate
    # to its container).
    for oid in sorted(added_ids, key=lambda i: new_index[i].path()):
        obj = new_index[oid]
        additions.append(Change("add", oid, obj.meta.name, new_object=obj))

    return ChangeList(changes=removals + updates + moves + additions)


def diff_objects(old_obj: MObject, new_obj: MObject) -> ChangeList:
    """Diff two object subtrees directly (wraps them in throwaway models)."""
    if old_obj.meta.metamodel is None or new_obj.meta.metamodel is None:
        raise ValueError("objects must belong to a metamodel to be diffed")
    old_model = Model(old_obj.meta.metamodel, name="old")
    new_model = Model(new_obj.meta.metamodel, name="new")
    # Roots may be contained elsewhere; walk directly instead of re-rooting.
    old_model.walk = old_obj.walk  # type: ignore[method-assign]
    new_model.walk = new_obj.walk  # type: ignore[method-assign]
    return diff_models(old_model, new_model)
