"""The domain-independent middleware metamodel (paper Figs. 5 and 6).

This is MD-DSM's central artifact: a *single* metamodel whose instances
(middleware models) describe complete middleware configurations for any
application domain.  "A middleware model, which is created as an
instance of this metamodel, defines the mechanisms and structures
needed to interpret user-defined application models" (Sec. V-A).

Structure (macro level, Fig. 5): a ``MiddlewareModel`` root contains
one definition per layer; each layer sub-metamodel provides the
constructs of Secs. V-A/VI:

* Broker layer (Fig. 6): main manager implied by the layer itself,
  plus ``ActionDef``/``EventBindingDef`` (calls/events handling),
  ``SymptomDef``/``ChangePlanDef`` (autonomic manager), resource
  requirements, and manager toggles.
* Controller layer (Sec. VI / Fig. 8): ``DSCDef``, ``ProcedureDef``
  (+ units/instructions), ``ControllerActionDef`` (Case 1),
  ``PolicyDef``, ``ClassifierMapDef`` and ``CaseOverrideDef``
  (command classification).
* Synthesis layer: ``RuleDef`` with an embedded LTS
  (``LtsStateDef``/``LtsTransitionDef``) per DSML metaclass.
* UI layer: a thin definition delegating to the modeling-environment
  tooling (the paper leverages EMF/GMF; we leverage the kernel).

Complex values (constraint maps, instruction operands, action steps)
are stored as JSON strings — the same encoding trade-off EMF models
make for open-ended data — and parsed by the loader.
"""

from __future__ import annotations

import json
from typing import Any

from repro.modeling.meta import Metamodel

__all__ = [
    "middleware_metamodel",
    "dumps_json_attr",
    "loads_json_attr",
]

_METAMODEL: Metamodel | None = None


def dumps_json_attr(value: Any) -> str:
    """Encode a structured value for storage in a JSON-string attribute."""
    return json.dumps(value, sort_keys=True)


def loads_json_attr(text: str | None, default: Any) -> Any:
    """Decode a JSON-string attribute (empty/None -> default)."""
    if not text:
        return default
    return json.loads(text)


def middleware_metamodel() -> Metamodel:
    """Build (once) and return the middleware metamodel."""
    global _METAMODEL
    if _METAMODEL is not None:
        return _METAMODEL
    mm = Metamodel("md-dsm")

    mm.new_enum("LayerKind", ["ui", "synthesis", "controller", "broker"])
    mm.new_enum("DSCKind", ["operation", "data"])
    mm.new_enum("CaseKind", ["actions", "intent"])
    mm.new_enum("UnmatchedKind", ["ignore", "error"])

    # -- root ------------------------------------------------------------
    root = mm.new_class("MiddlewareModel")
    root.attribute("name", "string", required=True)
    root.attribute("domain", "string", required=True)
    root.attribute("description", "string")

    named = mm.new_class("NamedElement", abstract=True)
    named.attribute("name", "string", required=True)

    # -- generic component definitions (runtime factory input) ------------
    parameter = mm.new_class("Parameter")
    parameter.attribute("key", "string", required=True)
    parameter.attribute("value", "any")

    wire = mm.new_class("Wire")
    wire.attribute("port", "string", required=True)
    wire.attribute("target", "string", required=True)

    component = mm.new_class("ComponentDef", supertypes=[named])
    component.attribute("template", "string", required=True)
    component.reference("parameters", "Parameter", containment=True, many=True)
    component.reference("wires", "Wire", containment=True, many=True)

    # -- layers ------------------------------------------------------------
    layer = mm.new_class("LayerDef", abstract=True, supertypes=[named])
    layer.attribute("enabled", "bool", default=True)
    layer.reference("components", "ComponentDef", containment=True, many=True)
    layer.reference("settings", "Parameter", containment=True, many=True)

    mm.new_class("UILayerDef", supertypes=[layer])

    synthesis = mm.new_class("SynthesisLayerDef", supertypes=[layer])
    synthesis.attribute("strict", "bool", default=False)
    synthesis.reference("rules", "RuleDef", containment=True, many=True)

    controller = mm.new_class("ControllerLayerDef", supertypes=[layer])
    controller.attribute("defaultCase", "CaseKind", default="actions")
    controller.attribute("maxConfigurations", "int", default=8)
    controller.attribute("cacheSize", "int", default=512)
    controller.reference("classifiers", "DSCDef", containment=True, many=True)
    controller.reference("procedures", "ProcedureDef", containment=True, many=True)
    controller.reference("actions", "ControllerActionDef", containment=True, many=True)
    controller.reference("policies", "PolicyDef", containment=True, many=True)
    controller.reference("classifierMap", "ClassifierMapDef", containment=True, many=True)
    controller.reference("caseOverrides", "CaseOverrideDef", containment=True, many=True)

    broker = mm.new_class("BrokerLayerDef", supertypes=[layer])
    broker.attribute("enableAutonomic", "bool", default=True)
    broker.attribute("enablePolicies", "bool", default=True)
    broker.attribute("enableStateSnapshots", "bool", default=True)
    broker.reference("actions", "BrokerActionDef", containment=True, many=True)
    broker.reference("eventBindings", "EventBindingDef", containment=True, many=True)
    broker.reference("symptoms", "SymptomDef", containment=True, many=True)
    broker.reference("plans", "ChangePlanDef", containment=True, many=True)
    broker.reference("requiredResources", "ResourceRequirementDef", containment=True, many=True)

    root.reference("ui", "UILayerDef", containment=True)
    root.reference("synthesis", "SynthesisLayerDef", containment=True)
    root.reference("controller", "ControllerLayerDef", containment=True)
    root.reference("broker", "BrokerLayerDef", containment=True)

    # -- broker sub-metamodel (Fig. 6) ----------------------------------------
    step = mm.new_class("StepDef")
    step.attribute("resource", "string")
    step.attribute("resourceExpr", "string")
    step.attribute("operation", "string")
    step.attribute("argsJson", "string")
    step.attribute("argsExprJson", "string")
    step.attribute("result", "string")
    step.attribute("stateKey", "string")
    step.attribute("stateExpr", "string")
    step.attribute("setKey", "string")      # state-only step: setKey+expr
    step.attribute("compute", "string")     # pure transform step: compute(+result)
    step.attribute("expr", "string")

    broker_action = mm.new_class("BrokerActionDef", supertypes=[named])
    broker_action.attribute("pattern", "string", required=True)
    broker_action.attribute("guard", "string")
    broker_action.attribute("priority", "int", default=0)
    broker_action.reference("steps", "StepDef", containment=True, many=True)

    binding = mm.new_class("EventBindingDef")
    binding.attribute("topicPattern", "string", required=True)
    binding.attribute("action", "string", required=True)   # BrokerActionDef name
    binding.attribute("guard", "string")

    symptom = mm.new_class("SymptomDef", supertypes=[named])
    symptom.attribute("condition", "string", required=True)
    symptom.attribute("requestKind", "string", required=True)
    symptom.attribute("onTopic", "string")
    symptom.attribute("cooldown", "float", default=0.0)

    plan = mm.new_class("ChangePlanDef", supertypes=[named])
    plan.attribute("requestKind", "string", required=True)
    plan.attribute("guard", "string")
    plan.reference("steps", "StepDef", containment=True, many=True)

    requirement = mm.new_class("ResourceRequirementDef", supertypes=[named])
    requirement.attribute("kind", "string")
    requirement.attribute("optional", "bool", default=False)

    # -- controller sub-metamodel (Secs. V-B, VI) --------------------------------
    dsc = mm.new_class("DSCDef", supertypes=[named])
    dsc.attribute("kind", "DSCKind", default="operation")
    dsc.attribute("parent", "string")
    dsc.attribute("description", "string")
    dsc.attribute("constraintsJson", "string")

    instruction = mm.new_class("InstructionDef")
    instruction.attribute("opcode", "string", required=True)
    instruction.attribute("operandsJson", "string")

    unit = mm.new_class("UnitDef", supertypes=[named])
    unit.reference("instructions", "InstructionDef", containment=True, many=True)

    procedure = mm.new_class("ProcedureDef", supertypes=[named])
    procedure.attribute("classifier", "string", required=True)
    procedure.attribute("dependencies", "string", many=True)
    procedure.attribute("attributesJson", "string")
    procedure.attribute("description", "string")
    procedure.reference("units", "UnitDef", containment=True, many=True)

    controller_action = mm.new_class("ControllerActionDef", supertypes=[named])
    controller_action.attribute("pattern", "string", required=True)
    controller_action.attribute("guard", "string")
    controller_action.attribute("attributesJson", "string")
    controller_action.reference("steps", "ControllerStepDef", containment=True, many=True)

    controller_step = mm.new_class("ControllerStepDef")
    controller_step.attribute("api", "string", required=True)
    controller_step.attribute("argsJson", "string")
    controller_step.attribute("argsExprJson", "string")
    controller_step.attribute("result", "string")

    policy = mm.new_class("PolicyDef", supertypes=[named])
    policy.attribute("condition", "string", default="True")
    policy.attribute("weightsJson", "string")
    policy.attribute("preferJson", "string")
    policy.attribute("forceCase", "string")
    policy.attribute("appliesTo", "string")
    policy.attribute("adviceJson", "string")
    policy.attribute("priority", "int", default=0)

    classifier_map = mm.new_class("ClassifierMapDef")
    classifier_map.attribute("pattern", "string", required=True)
    classifier_map.attribute("classifier", "string", required=True)

    case_override = mm.new_class("CaseOverrideDef")
    case_override.attribute("pattern", "string", required=True)
    case_override.attribute("case", "CaseKind", required=True)

    # -- synthesis sub-metamodel ----------------------------------------------------
    lts_state = mm.new_class("LtsStateDef", supertypes=[named])
    lts_state.attribute("final", "bool", default=False)

    lts_transition = mm.new_class("LtsTransitionDef")
    lts_transition.attribute("source", "string", required=True)
    lts_transition.attribute("label", "string", required=True)
    lts_transition.attribute("target", "string", required=True)
    lts_transition.attribute("guard", "string")
    lts_transition.attribute("priority", "int", default=0)
    lts_transition.attribute("commandsJson", "string")  # command templates

    rule = mm.new_class("RuleDef")
    rule.attribute("className", "string", required=True)
    rule.attribute("initial", "string", default="initial")
    rule.attribute("onUnmatched", "UnmatchedKind", default="ignore")
    rule.reference("states", "LtsStateDef", containment=True, many=True)
    rule.reference("transitions", "LtsTransitionDef", containment=True, many=True)

    _METAMODEL = mm.resolve()
    return _METAMODEL
