"""Typed builder façade over middleware models.

Middleware engineers (the paper's target users) describe platforms as
*models*, not code.  This module provides an ergonomic builder that
constructs instances of the middleware metamodel
(:func:`~repro.middleware.metamodel.middleware_metamodel`); the result
is an ordinary :class:`~repro.modeling.model.Model` that can be
validated, serialized, diffed, and loaded into a running platform by
:mod:`repro.middleware.loader`.

The domain packages (``repro.domains.*``) use this builder to express
their middleware configurations — demonstrating the paper's claim that
one domain-independent metamodel covers very different domains.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.middleware.metamodel import dumps_json_attr, middleware_metamodel
from repro.modeling.model import Model, MObject

__all__ = [
    "MiddlewareModelBuilder",
    "BrokerLayerBuilder",
    "ControllerLayerBuilder",
    "SynthesisLayerBuilder",
]


class MiddlewareModelBuilder:
    """Builds a complete middleware model for one domain."""

    def __init__(self, name: str, domain: str, *, description: str = "") -> None:
        self.metamodel = middleware_metamodel()
        self.model = Model(self.metamodel, name=name)
        self.root = self.model.create_root(
            "MiddlewareModel", name=name, domain=domain, description=description
        )
        self._broker: BrokerLayerBuilder | None = None
        self._controller: ControllerLayerBuilder | None = None
        self._synthesis: SynthesisLayerBuilder | None = None

    def ui_layer(self, name: str = "ui") -> MObject:
        ui = self.model.create("UILayerDef", name=name)
        self.root.ui = ui
        return ui

    def broker_layer(self, name: str = "broker", **flags: bool) -> "BrokerLayerBuilder":
        if self._broker is None:
            layer = self.model.create("BrokerLayerDef", name=name)
            for key, value in flags.items():
                layer.set(_camel(key), value)
            self.root.broker = layer
            self._broker = BrokerLayerBuilder(self.model, layer)
        return self._broker

    def controller_layer(
        self, name: str = "controller", **settings: Any
    ) -> "ControllerLayerBuilder":
        if self._controller is None:
            layer = self.model.create("ControllerLayerDef", name=name)
            for key, value in settings.items():
                layer.set(_camel(key), value)
            self.root.controller = layer
            self._controller = ControllerLayerBuilder(self.model, layer)
        return self._controller

    def synthesis_layer(
        self, name: str = "synthesis", *, strict: bool = False
    ) -> "SynthesisLayerBuilder":
        if self._synthesis is None:
            layer = self.model.create("SynthesisLayerDef", name=name, strict=strict)
            self.root.synthesis = layer
            self._synthesis = SynthesisLayerBuilder(self.model, layer)
        return self._synthesis

    def build(self) -> Model:
        return self.model


class _LayerBuilder:
    def __init__(self, model: Model, layer: MObject) -> None:
        self.model = model
        self.layer = layer

    def component(
        self,
        name: str,
        template: str,
        *,
        parameters: Mapping[str, Any] | None = None,
        wires: Mapping[str, str] | None = None,
    ) -> "_LayerBuilder":
        """Add a generic component realized by the runtime factory."""
        component = self.model.create("ComponentDef", name=name,
                                      template=template)
        for key, value in dict(parameters or {}).items():
            component.parameters.append(
                self.model.create("Parameter", key=key, value=value)
            )
        for port, target in dict(wires or {}).items():
            component.wires.append(
                self.model.create("Wire", port=port, target=target)
            )
        self.layer.components.append(component)
        return self

    def _steps(self, owner_feature: Any, steps: Sequence[Mapping[str, Any]]) -> None:
        for step in steps:
            element = self.model.create("StepDef")
            if "set" in step:
                element.setKey = str(step["set"])
                element.expr = str(step["expr"])
            elif "compute" in step:
                element.compute = str(step["compute"])
                if step.get("result"):
                    element.result = str(step["result"])
            else:
                if "resource" in step:
                    element.resource = str(step["resource"])
                if "resource_expr" in step:
                    element.resourceExpr = str(step["resource_expr"])
                element.operation = str(step.get("operation", ""))
                if step.get("args"):
                    element.argsJson = dumps_json_attr(dict(step["args"]))
                if step.get("args_expr"):
                    element.argsExprJson = dumps_json_attr(dict(step["args_expr"]))
                if step.get("result"):
                    element.result = str(step["result"])
                if step.get("state"):
                    element.stateKey = str(step["state"])
                if step.get("state_expr"):
                    element.stateExpr = str(step["state_expr"])
            owner_feature.append(element)


class BrokerLayerBuilder(_LayerBuilder):
    """Populates a ``BrokerLayerDef``."""

    def action(
        self,
        name: str,
        pattern: str,
        steps: Sequence[Mapping[str, Any]],
        *,
        guard: str | None = None,
        priority: int = 0,
    ) -> "BrokerLayerBuilder":
        action = self.model.create(
            "BrokerActionDef", name=name, pattern=pattern, priority=priority
        )
        if guard:
            action.guard = guard
        self._steps(action.steps, steps)
        self.layer.actions.append(action)
        return self

    def event_binding(
        self, topic_pattern: str, action_name: str, *, guard: str | None = None
    ) -> "BrokerLayerBuilder":
        binding = self.model.create(
            "EventBindingDef", topicPattern=topic_pattern, action=action_name
        )
        if guard:
            binding.guard = guard
        self.layer.eventBindings.append(binding)
        return self

    def symptom(
        self,
        name: str,
        condition: str,
        request_kind: str,
        *,
        on_topic: str | None = None,
        cooldown: float = 0.0,
    ) -> "BrokerLayerBuilder":
        symptom = self.model.create(
            "SymptomDef",
            name=name,
            condition=condition,
            requestKind=request_kind,
            cooldown=cooldown,
        )
        if on_topic:
            symptom.onTopic = on_topic
        self.layer.symptoms.append(symptom)
        return self

    def plan(
        self,
        name: str,
        request_kind: str,
        steps: Sequence[Mapping[str, Any]],
        *,
        guard: str | None = None,
    ) -> "BrokerLayerBuilder":
        plan = self.model.create("ChangePlanDef", name=name, requestKind=request_kind)
        if guard:
            plan.guard = guard
        self._steps(plan.steps, steps)
        self.layer.plans.append(plan)
        return self

    def requires_resource(
        self, name: str, *, kind: str = "", optional: bool = False
    ) -> "BrokerLayerBuilder":
        requirement = self.model.create(
            "ResourceRequirementDef", name=name, kind=kind, optional=optional
        )
        self.layer.requiredResources.append(requirement)
        return self


class ControllerLayerBuilder(_LayerBuilder):
    """Populates a ``ControllerLayerDef``."""

    def dsc(
        self,
        name: str,
        *,
        kind: str = "operation",
        parent: str | None = None,
        description: str = "",
        constraints: Mapping[str, Any] | None = None,
    ) -> "ControllerLayerBuilder":
        dsc = self.model.create("DSCDef", name=name, kind=kind, description=description)
        if parent:
            dsc.parent = parent
        if constraints:
            dsc.constraintsJson = dumps_json_attr(dict(constraints))
        self.layer.classifiers.append(dsc)
        return self

    def procedure(
        self,
        name: str,
        classifier: str,
        *,
        dependencies: Sequence[str] = (),
        attributes: Mapping[str, Any] | None = None,
        units: Mapping[str, Sequence[tuple[str, Mapping[str, Any]]]] | None = None,
        description: str = "",
    ) -> "ControllerLayerBuilder":
        """Add a procedure; ``units`` maps unit name to a list of
        ``(opcode, operands)`` pairs."""
        procedure = self.model.create(
            "ProcedureDef",
            name=name,
            classifier=classifier,
            dependencies=list(dependencies),
            description=description,
        )
        if attributes:
            procedure.attributesJson = dumps_json_attr(dict(attributes))
        for unit_name, instructions in dict(units or {"main": []}).items():
            unit = self.model.create("UnitDef", name=unit_name)
            for opcode, operands in instructions:
                unit.instructions.append(
                    self.model.create(
                        "InstructionDef",
                        opcode=opcode,
                        operandsJson=dumps_json_attr(dict(operands)),
                    )
                )
            procedure.units.append(unit)
        self.layer.procedures.append(procedure)
        return self

    def action(
        self,
        name: str,
        pattern: str,
        steps: Sequence[Mapping[str, Any]],
        *,
        guard: str | None = None,
        attributes: Mapping[str, Any] | None = None,
    ) -> "ControllerLayerBuilder":
        action = self.model.create("ControllerActionDef", name=name, pattern=pattern)
        if guard:
            action.guard = guard
        if attributes:
            action.attributesJson = dumps_json_attr(dict(attributes))
        for step in steps:
            element = self.model.create("ControllerStepDef", api=str(step["api"]))
            if step.get("args"):
                element.argsJson = dumps_json_attr(dict(step["args"]))
            if step.get("args_expr"):
                element.argsExprJson = dumps_json_attr(dict(step["args_expr"]))
            if step.get("result"):
                element.result = str(step["result"])
            action.steps.append(element)
        self.layer.actions.append(action)
        return self

    def policy(
        self,
        name: str,
        *,
        condition: str = "True",
        weights: Mapping[str, float] | None = None,
        prefer: Mapping[str, float] | None = None,
        force_case: str | None = None,
        applies_to: str = "",
        advice: Mapping[str, Any] | None = None,
        priority: int = 0,
    ) -> "ControllerLayerBuilder":
        policy = self.model.create(
            "PolicyDef",
            name=name,
            condition=condition,
            appliesTo=applies_to,
            priority=priority,
        )
        if weights:
            policy.weightsJson = dumps_json_attr(dict(weights))
        if prefer:
            policy.preferJson = dumps_json_attr(dict(prefer))
        if force_case:
            policy.forceCase = force_case
        if advice:
            policy.adviceJson = dumps_json_attr(dict(advice))
        self.layer.policies.append(policy)
        return self

    def map_operation(self, pattern: str, classifier: str) -> "ControllerLayerBuilder":
        self.layer.classifierMap.append(
            self.model.create(
                "ClassifierMapDef", pattern=pattern, classifier=classifier
            )
        )
        return self

    def case_override(self, pattern: str, case: str) -> "ControllerLayerBuilder":
        self.layer.caseOverrides.append(
            self.model.create("CaseOverrideDef", pattern=pattern, case=case)
        )
        return self


class SynthesisLayerBuilder(_LayerBuilder):
    """Populates a ``SynthesisLayerDef``."""

    def rule(
        self,
        class_name: str,
        *,
        initial: str = "initial",
        on_unmatched: str = "ignore",
        states: Mapping[str, bool] | Sequence[str] = (),
        transitions: Sequence[Mapping[str, Any]] = (),
    ) -> "SynthesisLayerBuilder":
        """Add a synthesis rule.

        ``states`` is a sequence of names or name->final mapping;
        each transition dict has ``source``, ``label``, ``target``, and
        optional ``guard``, ``priority`` and ``commands`` (a list of
        command-template dicts).
        """
        rule = self.model.create(
            "RuleDef",
            className=class_name,
            initial=initial,
            onUnmatched=on_unmatched,
        )
        state_items = (
            states.items() if isinstance(states, Mapping)
            else [(s, False) for s in states]
        )
        for state_name, final in state_items:
            rule.states.append(
                self.model.create("LtsStateDef", name=state_name, final=bool(final))
            )
        for transition in transitions:
            element = self.model.create(
                "LtsTransitionDef",
                source=str(transition["source"]),
                label=str(transition["label"]),
                target=str(transition["target"]),
                priority=int(transition.get("priority", 0)),
            )
            if transition.get("guard"):
                element.guard = str(transition["guard"])
            if transition.get("commands"):
                element.commandsJson = dumps_json_attr(list(transition["commands"]))
            rule.transitions.append(element)
        self.layer.rules.append(rule)
        return self


def _camel(snake: str) -> str:
    parts = snake.split("_")
    return parts[0] + "".join(p.title() for p in parts[1:])
