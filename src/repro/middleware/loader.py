"""Platform loader: middleware model + domain knowledge -> running platform.

Paper Fig. 2: "the middleware platform is generated from two input
models: a model of its structural elements, and a model of the domain
knowledge describing its operational semantics."

:func:`load_platform` interprets a middleware model (instance of the
metamodel in :mod:`repro.middleware.metamodel`) and produces a
:class:`~repro.middleware.platform.Platform` whose layers are
configured exactly as modeled.  Domain knowledge that cannot live in a
serialized model (Python callables: resources, negotiators, textual
parsers) arrives through the :class:`DomainKnowledge` bundle —
mirroring the paper's separation of DSK from the model of execution
(Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.middleware.broker.actions import BrokerAction
from repro.middleware.broker.autonomic import ChangePlan, Symptom
from repro.middleware.broker.layer import BrokerLayer
from repro.middleware.broker.resource import Resource
from repro.middleware.controller.dsc import DSCTaxonomy
from repro.middleware.controller.handlers import Action
from repro.middleware.controller.layer import ControllerLayer
from repro.middleware.controller.policy import Policy
from repro.middleware.controller.procedure import Procedure
from repro.middleware.metamodel import loads_json_attr, middleware_metamodel
from repro.middleware.platform import Platform
from repro.middleware.synthesis.engine import SynthesisEngine
from repro.middleware.synthesis.interpreter import EntityRule
from repro.middleware.ui import ModelWorkspace
from repro.modeling.constraints import ConstraintRegistry
from repro.modeling.lts import LTS
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject
from repro.runtime.clock import Clock, WallClock
from repro.runtime.events import EventBus
from repro.runtime.factory import ComponentFactory, ComponentSpec
from repro.runtime.metrics import MetricsRegistry, default_registry
from repro.runtime.registry import Registry, TypeRegistry

__all__ = ["LoaderError", "DomainKnowledge", "load_platform"]


class LoaderError(Exception):
    """Raised when a middleware model cannot be realized."""


@dataclass
class DomainKnowledge:
    """Non-serializable DSK handed to the loader alongside the model.

    Attributes:
        dsml: the application-level DSML metamodel the platform runs.
        resources: underlying resources to register with the Broker.
        controller_actions: Case 1 actions with Python implementations
            (model-defined declarative actions need no code).
        broker_actions: Broker actions with Python implementations.
        constraints: DSML invariants enforced at UI/Synthesis time.
        parser: optional textual concrete syntax for the DSML.
        negotiator: optional Synthesis-layer negotiation hook.
        event_hooks: (pattern, callback) pairs for Controller events
            surfacing at the Synthesis layer.
    """

    dsml: Metamodel
    resources: list[Resource] = field(default_factory=list)
    #: template name -> Component class, for generic ``ComponentDef``
    #: elements in layer models (the paper's component factory path).
    component_types: "TypeRegistry | None" = None
    controller_actions: list[Action] = field(default_factory=list)
    broker_actions: list[BrokerAction] = field(default_factory=list)
    constraints: ConstraintRegistry | None = None
    parser: Callable[[str], Model] | None = None
    negotiator: Callable[[Model], Model] | None = None
    event_hooks: list[tuple[str, Callable[[str, dict[str, Any]], None]]] = field(
        default_factory=list
    )


def load_platform(
    middleware_model: Model,
    dsk: DomainKnowledge,
    *,
    bus: EventBus | None = None,
    clock: Clock | None = None,
    metrics: MetricsRegistry | None = None,
    start: bool = True,
    aot: bool = False,
    aot_cache_dir: str | None = None,
) -> Platform:
    """Realize a middleware model as a running platform.

    ``aot=True`` additionally compiles the loaded DSK into a Tier-3
    generated module (see :mod:`repro.middleware.synthesis.aot`) once
    the platform is started; requires ``start=True``.
    ``aot_cache_dir`` loads/persists the generated module on disk
    keyed by ``DSK_HASH``, so cold starts with a warm cache skip
    generation entirely (the cluster worker path).
    """
    if middleware_model.metamodel is not middleware_metamodel():
        raise LoaderError(
            "middleware model must conform to the md-dsm metamodel"
        )
    if not middleware_model.roots:
        raise LoaderError("middleware model has no root")
    root = middleware_model.roots[0]
    if not root.is_a("MiddlewareModel"):
        raise LoaderError(f"root must be a MiddlewareModel, got {root.meta.name}")

    clock = clock or WallClock()
    metrics = metrics if metrics is not None else default_registry()
    bus = bus or EventBus(
        name=f"{root.get('name')}.bus", clock=clock, metrics=metrics
    )
    kwargs = {"bus": bus, "clock": clock, "metrics": metrics}

    broker = _load_broker(root.get("broker"), dsk, kwargs)
    controller = _load_controller(root.get("controller"), dsk, kwargs)
    synthesis = _load_synthesis(root.get("synthesis"), dsk, kwargs)
    ui = _load_ui(root.get("ui"), dsk, kwargs)

    platform = Platform(
        name=str(root.get("name")),
        domain=str(root.get("domain")),
        middleware_model=middleware_model,
        dsml=dsk.dsml,
        ui=ui,
        synthesis=synthesis,
        controller=controller,
        broker=broker,
        bus=bus,
        clock=clock,
        metrics=metrics,
    )
    _realize_layer_components(platform, root, dsk, bus, clock)
    if start:
        platform.start()
        _post_start_install(platform, root, dsk)
        if aot and platform.synthesis is not None:
            platform.enable_aot(cache_dir=aot_cache_dir)
    elif aot:
        raise LoaderError("aot=True requires start=True")
    return platform


def _realize_layer_components(
    platform: Platform,
    root: MObject,
    dsk: DomainKnowledge,
    bus: EventBus,
    clock: Clock,
) -> None:
    """Realize generic ``ComponentDef`` elements via the component
    factory (paper Sec. V-A: components generated from templates
    parameterized with model metadata).  Instances land in
    ``platform.components`` and start/stop with the platform."""
    specs: list[ComponentSpec] = []
    for layer_name in ("ui", "synthesis", "controller", "broker"):
        layer_def = root.get(layer_name)
        if layer_def is None:
            continue
        for component_def in layer_def.get("components"):
            specs.append(ComponentSpec.from_model(component_def))
    if not specs:
        return
    if dsk.component_types is None:
        raise LoaderError(
            f"middleware model declares {len(specs)} component(s) but the "
            f"domain knowledge bundle provides no component_types registry"
        )
    factory = ComponentFactory(
        dsk.component_types,
        registry=platform.components,
        bus=bus,
        clock=clock,
        context={"platform": platform.name, "domain": platform.domain},
    )
    factory.realize_all(specs)


# -- per-layer loading --------------------------------------------------


def _load_broker(
    layer_def: MObject | None, dsk: DomainKnowledge, kwargs: dict[str, Any]
) -> BrokerLayer | None:
    if layer_def is None or not layer_def.get("enabled"):
        return None
    broker = BrokerLayer(str(layer_def.get("name")), **kwargs)
    broker.configure(
        {
            "enable_autonomic": layer_def.get("enableAutonomic"),
            "enable_policies": layer_def.get("enablePolicies"),
            "enable_state_snapshots": layer_def.get("enableStateSnapshots"),
        }
    )
    for resource in dsk.resources:
        broker.install_resource(resource)
    _check_resource_requirements(layer_def, broker)
    actions_by_name: dict[str, BrokerAction] = {}
    for action_def in layer_def.get("actions"):
        action = BrokerAction(
            name=str(action_def.get("name")),
            pattern=str(action_def.get("pattern")),
            implementation=[_step_dict(s) for s in action_def.get("steps")],
            guard=action_def.get("guard") or None,
            priority=int(action_def.get("priority")),
        )
        broker.install_action(action)
        actions_by_name[action.name] = action
    for action in dsk.broker_actions:
        broker.install_action(action)
        actions_by_name[action.name] = action
    for binding_def in layer_def.get("eventBindings"):
        action_name = str(binding_def.get("action"))
        action = actions_by_name.get(action_name)
        if action is None:
            raise LoaderError(
                f"event binding {binding_def.get('topicPattern')!r}: unknown "
                f"action {action_name!r}"
            )
        broker.install_event_binding(
            str(binding_def.get("topicPattern")),
            action,
            guard=binding_def.get("guard") or None,
        )
    for symptom_def in layer_def.get("symptoms"):
        broker.install_symptom(
            Symptom(
                name=str(symptom_def.get("name")),
                condition=str(symptom_def.get("condition")),
                request_kind=str(symptom_def.get("requestKind")),
                on_topic=symptom_def.get("onTopic") or None,
                cooldown=float(symptom_def.get("cooldown")),
            )
        )
    for plan_def in layer_def.get("plans"):
        broker.install_plan(
            ChangePlan(
                name=str(plan_def.get("name")),
                request_kind=str(plan_def.get("requestKind")),
                steps=[_step_dict(s) for s in plan_def.get("steps")],
                guard=plan_def.get("guard") or None,
            )
        )
    return broker


def _check_resource_requirements(layer_def: MObject, broker: BrokerLayer) -> None:
    missing: list[str] = []
    for requirement in layer_def.get("requiredResources"):
        name = str(requirement.get("name"))
        if requirement.get("optional"):
            continue
        if name not in broker.resources:
            missing.append(name)
    if missing:
        raise LoaderError(
            f"broker layer requires resources {missing!r} which were not "
            f"provided by the domain knowledge bundle"
        )


def _step_dict(step_def: MObject) -> dict[str, Any]:
    if step_def.get("setKey"):
        return {"set": step_def.get("setKey"), "expr": step_def.get("expr")}
    if step_def.get("compute"):
        computed: dict[str, Any] = {"compute": step_def.get("compute")}
        if step_def.get("result"):
            computed["result"] = step_def.get("result")
        return computed
    step: dict[str, Any] = {
        "operation": step_def.get("operation"),
        "args": loads_json_attr(step_def.get("argsJson"), {}),
        "args_expr": loads_json_attr(step_def.get("argsExprJson"), {}),
    }
    if step_def.get("resource"):
        step["resource"] = step_def.get("resource")
    if step_def.get("resourceExpr"):
        step["resource_expr"] = step_def.get("resourceExpr")
    if step_def.get("result"):
        step["result"] = step_def.get("result")
    if step_def.get("stateKey"):
        step["state"] = step_def.get("stateKey")
    if step_def.get("stateExpr"):
        step["state_expr"] = step_def.get("stateExpr")
    return step


def _load_controller(
    layer_def: MObject | None, dsk: DomainKnowledge, kwargs: dict[str, Any]
) -> ControllerLayer | None:
    if layer_def is None or not layer_def.get("enabled"):
        return None
    controller = ControllerLayer(str(layer_def.get("name")), **kwargs)
    controller.configure(
        {
            "default_case": layer_def.get("defaultCase"),
            "max_configurations": layer_def.get("maxConfigurations"),
            "cache_size": layer_def.get("cacheSize"),
        }
    )
    taxonomy: DSCTaxonomy = controller.taxonomy
    # Parents may be declared in any order: two passes.
    pending = list(layer_def.get("classifiers"))
    while pending:
        progressed = False
        for dsc_def in list(pending):
            parent = dsc_def.get("parent") or None
            if parent and parent not in taxonomy:
                continue
            taxonomy.define(
                str(dsc_def.get("name")),
                kind=str(dsc_def.get("kind")),
                parent=parent,
                description=str(dsc_def.get("description") or ""),
                constraints=loads_json_attr(dsc_def.get("constraintsJson"), {}),
            )
            pending.remove(dsc_def)
            progressed = True
        if not progressed:
            names = [str(d.get("name")) for d in pending]
            raise LoaderError(f"unresolvable DSC parents among {names!r}")
    for procedure_def in layer_def.get("procedures"):
        controller.repository.add(_procedure_from_def(procedure_def))
    for map_def in layer_def.get("classifierMap"):
        controller.classifier_map[str(map_def.get("pattern"))] = str(
            map_def.get("classifier")
        )
    for override_def in layer_def.get("caseOverrides"):
        controller.classifier.overrides[str(override_def.get("pattern"))] = str(
            override_def.get("case")
        )
    for policy_def in layer_def.get("policies"):
        controller.policies.add(
            Policy(
                name=str(policy_def.get("name")),
                condition=str(policy_def.get("condition")),
                weights=loads_json_attr(policy_def.get("weightsJson"), {}),
                prefer=loads_json_attr(policy_def.get("preferJson"), {}),
                force_case=policy_def.get("forceCase") or None,
                applies_to=str(policy_def.get("appliesTo") or ""),
                advice=loads_json_attr(policy_def.get("adviceJson"), {}),
                priority=int(policy_def.get("priority")),
            )
        )
    return controller


def _procedure_from_def(procedure_def: MObject) -> Procedure:
    procedure = Procedure(
        str(procedure_def.get("name")),
        str(procedure_def.get("classifier")),
        dependencies=[str(d) for d in procedure_def.get("dependencies")],
        attributes=loads_json_attr(procedure_def.get("attributesJson"), {}),
        description=str(procedure_def.get("description") or ""),
    )
    for unit_def in procedure_def.get("units"):
        unit = procedure.unit(str(unit_def.get("name")))
        for instruction_def in unit_def.get("instructions"):
            unit.add(
                str(instruction_def.get("opcode")),
                **loads_json_attr(instruction_def.get("operandsJson"), {}),
            )
    return procedure


def _load_synthesis(
    layer_def: MObject | None, dsk: DomainKnowledge, kwargs: dict[str, Any]
) -> SynthesisEngine | None:
    if layer_def is None or not layer_def.get("enabled"):
        return None
    synthesis = SynthesisEngine(
        str(layer_def.get("name")),
        metamodel=dsk.dsml,
        constraints=dsk.constraints,
        strict=bool(layer_def.get("strict")),
        **kwargs,
    )
    synthesis.configure({})
    for rule_def in layer_def.get("rules"):
        synthesis.add_rule(_rule_from_def(rule_def))
    if dsk.negotiator is not None:
        synthesis.negotiator = dsk.negotiator
    for pattern, callback in dsk.event_hooks:
        synthesis.interpreter.on_event(pattern, callback)
    return synthesis


def _rule_from_def(rule_def: MObject) -> EntityRule:
    lts = LTS(
        f"rule:{rule_def.get('className')}",
        initial=str(rule_def.get("initial")),
    )
    for state_def in rule_def.get("states"):
        lts.add_state(str(state_def.get("name")), final=bool(state_def.get("final")))
    for transition_def in rule_def.get("transitions"):
        lts.add_transition(
            str(transition_def.get("source")),
            str(transition_def.get("label")),
            str(transition_def.get("target")),
            guard=transition_def.get("guard") or None,
            actions=tuple(loads_json_attr(transition_def.get("commandsJson"), [])),
            priority=int(transition_def.get("priority")),
        )
    return EntityRule(
        str(rule_def.get("className")),
        lts,
        on_unmatched=str(rule_def.get("onUnmatched")),
    )


def _load_ui(
    layer_def: MObject | None, dsk: DomainKnowledge, kwargs: dict[str, Any]
) -> ModelWorkspace | None:
    if layer_def is None or not layer_def.get("enabled"):
        return None
    ui = ModelWorkspace(
        str(layer_def.get("name")),
        metamodel=dsk.dsml,
        constraints=dsk.constraints,
        **kwargs,
    )
    ui.configure({})
    if dsk.parser is not None:
        ui.set_parser(dsk.parser)
    return ui


def _post_start_install(
    platform: Platform, root: MObject, dsk: DomainKnowledge
) -> None:
    """Install pieces that need started layers (Case 1 action tables
    exist only after the Controller's broker port is live)."""
    controller = platform.controller
    if controller is None:
        return
    layer_def = root.get("controller")
    if layer_def is not None:
        for action_def in layer_def.get("actions"):
            controller.install_action(
                Action(
                    name=str(action_def.get("name")),
                    pattern=str(action_def.get("pattern")),
                    implementation=[
                        _controller_step_dict(s) for s in action_def.get("steps")
                    ],
                    guard=action_def.get("guard") or None,
                    attributes=loads_json_attr(action_def.get("attributesJson"), {}),
                )
            )
    for action in dsk.controller_actions:
        controller.install_action(action)


def _controller_step_dict(step_def: MObject) -> dict[str, Any]:
    step: dict[str, Any] = {
        "api": step_def.get("api"),
        "args": loads_json_attr(step_def.get("argsJson"), {}),
        "args_expr": loads_json_attr(step_def.get("argsExprJson"), {}),
    }
    if step_def.get("result"):
        step["result"] = step_def.get("result")
    return step
