"""Domain-Specific Classifiers (DSCs).

Paper Sec. V-B: "Domain Specific Classifiers, or DSCs, categorize
operations and data based on the business rules of a domain. ... Once
generated, the DSCs serve as a mechanism to describe interfaces with
implicit domain-specific constraints."

A :class:`DSC` is a node in a domain taxonomy: it has a name, an
optional parent (specialization), a kind (``operation`` or ``data``),
and optional attribute constraints that candidate procedures must
satisfy.  Matching is covariant: a procedure classified by a *more
specific* DSC is a valid candidate for a dependency on any of its
ancestors.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

__all__ = ["DSCError", "DSC", "DSCTaxonomy"]


class DSCError(Exception):
    """Raised on malformed or inconsistent classifier definitions."""


class DSC:
    """One classifier in a domain taxonomy."""

    OPERATION = "operation"
    DATA = "data"

    def __init__(
        self,
        name: str,
        *,
        kind: str = OPERATION,
        parent: "DSC | None" = None,
        description: str = "",
        constraints: Mapping[str, Any] | None = None,
    ) -> None:
        if not name:
            raise DSCError("DSC name must be non-empty")
        if kind not in (self.OPERATION, self.DATA):
            raise DSCError(f"DSC {name!r}: kind must be operation|data, got {kind!r}")
        if parent is not None and parent.kind != kind:
            raise DSCError(
                f"DSC {name!r}: kind {kind!r} differs from parent "
                f"{parent.name!r} kind {parent.kind!r}"
            )
        self.name = name
        self.kind = kind
        self.parent = parent
        self.description = description
        #: Attribute constraints a classified procedure must declare,
        #: e.g. {"medium": "video"}.  Exact-match semantics.
        self.constraints = dict(constraints or {})

    def ancestors(self) -> Iterator["DSC"]:
        node = self.parent
        seen: set[str] = set()
        while node is not None:
            if node.name in seen:
                raise DSCError(f"classifier cycle through {node.name!r}")
            seen.add(node.name)
            yield node
            node = node.parent

    def is_a(self, other: "DSC | str") -> bool:
        """True if this classifier equals or specializes ``other``."""
        other_name = other if isinstance(other, str) else other.name
        if self.name == other_name:
            return True
        return any(a.name == other_name for a in self.ancestors())

    def satisfied_by(self, attributes: Mapping[str, Any]) -> bool:
        """True if ``attributes`` satisfy this DSC's constraints (and all
        ancestors' constraints — constraints accumulate down the taxonomy)."""
        for dsc in (self, *self.ancestors()):
            for key, expected in dsc.constraints.items():
                if attributes.get(key) != expected:
                    return False
        return True

    def __repr__(self) -> str:
        parent = f" < {self.parent.name}" if self.parent else ""
        return f"DSC({self.name}{parent} [{self.kind}])"


class DSCTaxonomy:
    """A domain's classifier set with name-based lookup and matching."""

    def __init__(self, domain: str) -> None:
        self.domain = domain
        self._classifiers: dict[str, DSC] = {}

    # -- construction --------------------------------------------------

    def add(self, dsc: DSC) -> DSC:
        if dsc.name in self._classifiers:
            raise DSCError(
                f"taxonomy {self.domain!r}: duplicate classifier {dsc.name!r}"
            )
        if dsc.parent is not None and dsc.parent.name not in self._classifiers:
            raise DSCError(
                f"taxonomy {self.domain!r}: parent {dsc.parent.name!r} of "
                f"{dsc.name!r} must be added first"
            )
        self._classifiers[dsc.name] = dsc
        return dsc

    def define(
        self,
        name: str,
        *,
        kind: str = DSC.OPERATION,
        parent: str | None = None,
        description: str = "",
        constraints: Mapping[str, Any] | None = None,
    ) -> DSC:
        parent_dsc = self.require(parent) if parent is not None else None
        return self.add(
            DSC(
                name,
                kind=kind,
                parent=parent_dsc,
                description=description,
                constraints=constraints,
            )
        )

    # -- lookup ----------------------------------------------------------

    def get(self, name: str) -> DSC | None:
        return self._classifiers.get(name)

    def require(self, name: str) -> DSC:
        dsc = self._classifiers.get(name)
        if dsc is None:
            raise DSCError(f"taxonomy {self.domain!r}: no classifier {name!r}")
        return dsc

    def matches(self, candidate: str, required: str) -> bool:
        """True if classifier ``candidate`` can stand in for ``required``."""
        candidate_dsc = self.get(candidate)
        if candidate_dsc is None:
            return False
        return candidate_dsc.is_a(required)

    def descendants_of(self, name: str) -> list[DSC]:
        base = self.require(name)
        return [d for d in self._classifiers.values() if d.is_a(base)]

    def operations(self) -> list[DSC]:
        return [d for d in self._classifiers.values() if d.kind == DSC.OPERATION]

    def data(self) -> list[DSC]:
        return [d for d in self._classifiers.values() if d.kind == DSC.DATA]

    def roots(self) -> list[DSC]:
        return [d for d in self._classifiers.values() if d.parent is None]

    def merge(self, other: "DSCTaxonomy") -> "DSCTaxonomy":
        """A new taxonomy containing both classifier sets (multi-domain
        deployments); duplicate names raise."""
        merged = DSCTaxonomy(f"{self.domain}+{other.domain}")
        for dsc in self:
            merged._classifiers[dsc.name] = dsc
        for dsc in other:
            if dsc.name in merged._classifiers:
                raise DSCError(
                    f"merge conflict: classifier {dsc.name!r} exists in both "
                    f"{self.domain!r} and {other.domain!r}"
                )
            merged._classifiers[dsc.name] = dsc
        return merged

    def __contains__(self, name: object) -> bool:
        return name in self._classifiers

    def __iter__(self) -> Iterator[DSC]:
        return iter(self._classifiers.values())

    def __len__(self) -> int:
        return len(self._classifiers)

    def __repr__(self) -> str:
        return f"DSCTaxonomy({self.domain!r}, classifiers={len(self)})"
