"""The Controller's execution engine: a stack machine over Intent Models.

Paper Sec. V-B: "The execution engine of the Controller is a stack
machine that operates by executing the EUs of the procedure currently
on top of the stack.  ... a procedure X, through its EUs, can call
procedures that were matched to its declared dependencies, which
results in the called procedure being pushed onto the stack, or it can
signal that it has completed its operation, resulting in the procedure
being popped from the stack."

The machine executes :class:`~repro.middleware.controller.procedure.
Instruction` opcodes; ``BROKER`` instructions call into the Broker
layer through a :class:`BrokerPort`, and ``EMIT`` raises events to the
Controller's event handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol

from repro.middleware.controller.intent import IntentError, IntentModel, IntentNode
from repro.middleware.controller.procedure import Instruction
from repro.modeling.expr import ExpressionError, evaluate

__all__ = [
    "ExecutionError",
    "GuardFailed",
    "BrokerPort",
    "BrokerCallRecord",
    "ExecutionResult",
    "StackMachine",
]


class ExecutionError(Exception):
    """Raised on runaway executions or bad instructions."""


class GuardFailed(ExecutionError):
    """A ``GUARD`` instruction evaluated false (frame aborted)."""


class BrokerPort(Protocol):
    """What the stack machine needs from the Broker layer."""

    def call_api(self, api: str, **args: Any) -> Any:  # pragma: no cover
        ...


@dataclass(frozen=True)
class BrokerCallRecord:
    """Trace entry for one Broker API call (E5 equivalence checking)."""

    api: str
    args: tuple[tuple[str, Any], ...]
    result: Any = None

    @classmethod
    def of(cls, api: str, args: Mapping[str, Any], result: Any) -> "BrokerCallRecord":
        return cls(api=api, args=tuple(sorted(args.items())), result=result)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.args)
        return f"{self.api}({rendered})"


@dataclass
class ExecutionResult:
    """Outcome of executing one Intent Model."""

    status: str = "ok"                        # ok | guard_failed | error
    value: Any = None
    broker_calls: list[BrokerCallRecord] = field(default_factory=list)
    events: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    instructions_executed: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def call_trace(self) -> list[str]:
        return [str(record) for record in self.broker_calls]


@dataclass
class _Frame:
    node: IntentNode
    unit_name: str
    locals: dict[str, Any]
    pc: int = 0
    #: where to store the RETURN value in the parent frame (or None).
    result_var: str | None = None


class StackMachine:
    """Executes Intent Models against a Broker port.

    One machine instance is reusable across executions; it holds no
    per-execution state.
    """

    def __init__(
        self,
        broker: BrokerPort,
        *,
        emit: Callable[[str, dict[str, Any]], None] | None = None,
        context: Mapping[str, Any] | None = None,
        max_instructions: int = 100_000,
        work: Callable[[float], None] | None = None,
    ) -> None:
        self.broker = broker
        self._emit = emit
        self.context = dict(context or {})
        self.max_instructions = max_instructions
        #: hook charging simulated work for NOOP (defaults to a spin).
        self._work = work or _spin

    def execute(
        self,
        model: IntentModel,
        args: Mapping[str, Any] | None = None,
        *,
        unit: str = "main",
    ) -> ExecutionResult:
        result = ExecutionResult()
        root_locals = dict(args or {})
        stack: list[_Frame] = [
            _Frame(node=model.root, unit_name=unit, locals=root_locals)
        ]
        if not model.root.procedure.has_unit(unit):
            raise ExecutionError(
                f"procedure {model.root.procedure.name!r} has no unit {unit!r}"
            )
        try:
            while stack:
                frame = stack[-1]
                instructions = frame.node.procedure.unit(frame.unit_name).instructions
                if frame.pc >= len(instructions):
                    self._pop(stack, frame, None)
                    continue
                instruction = instructions[frame.pc]
                frame.pc += 1
                result.instructions_executed += 1
                if result.instructions_executed > self.max_instructions:
                    raise ExecutionError(
                        f"instruction budget exceeded "
                        f"({self.max_instructions}); runaway execution?"
                    )
                self._step(instruction, frame, stack, result)
        except GuardFailed as exc:
            result.status = "guard_failed"
            result.error = str(exc)
        except (ExecutionError, ExpressionError, IntentError) as exc:
            result.status = "error"
            result.error = str(exc)
        if result.ok:
            result.value = root_locals.get("__result__")
        return result

    # -- instruction dispatch ----------------------------------------------

    def _step(
        self,
        instruction: Instruction,
        frame: _Frame,
        stack: list[_Frame],
        result: ExecutionResult,
    ) -> None:
        opcode = instruction.opcode
        if opcode == "SET":
            var = instruction.operand("var")
            if not var:
                raise ExecutionError("SET requires a 'var' operand")
            frame.locals[var] = self._value(instruction, frame)
        elif opcode == "BROKER":
            api = instruction.operand("api")
            if not api:
                raise ExecutionError("BROKER requires an 'api' operand")
            call_args = self._resolve_args(instruction, frame)
            outcome = self.broker.call_api(api, **call_args)
            result.broker_calls.append(BrokerCallRecord.of(api, call_args, outcome))
            store = instruction.operand("result")
            if store:
                frame.locals[store] = outcome
        elif opcode == "INVOKE":
            dependency = instruction.operand("dependency")
            if not dependency:
                raise ExecutionError("INVOKE requires a 'dependency' operand")
            child = frame.node.resolve(dependency)
            child_unit = instruction.operand("unit", "main")
            if not child.procedure.has_unit(child_unit):
                raise ExecutionError(
                    f"procedure {child.procedure.name!r} has no unit "
                    f"{child_unit!r}"
                )
            stack.append(
                _Frame(
                    node=child,
                    unit_name=child_unit,
                    locals=self._resolve_args(instruction, frame),
                    result_var=instruction.operand("result"),
                )
            )
        elif opcode == "EMIT":
            topic = instruction.operand("topic")
            if not topic:
                raise ExecutionError("EMIT requires a 'topic' operand")
            payload = self._resolve_args(instruction, frame)
            result.events.append((topic, payload))
            if self._emit is not None:
                self._emit(topic, payload)
        elif opcode == "GUARD":
            condition = instruction.operand("condition")
            if not condition:
                raise ExecutionError("GUARD requires a 'condition' operand")
            if not evaluate(condition, self._env(frame)):
                raise GuardFailed(
                    f"guard {condition!r} failed in "
                    f"{frame.node.procedure.name!r}"
                )
        elif opcode == "RETURN":
            value = (
                self._value(instruction, frame)
                if ("value" in instruction.operands or "expr" in instruction.operands)
                else None
            )
            self._pop(stack, frame, value)
        elif opcode == "NOOP":
            self._work(float(instruction.operand("cost", 0.0)))
        else:  # pragma: no cover - opcodes validated at construction
            raise ExecutionError(f"unknown opcode {opcode!r}")

    def _pop(self, stack: list[_Frame], frame: _Frame, value: Any) -> None:
        stack.pop()
        if stack:
            parent = stack[-1]
            if frame.result_var:
                parent.locals[frame.result_var] = value
        else:
            frame.locals["__result__"] = value

    # -- operand evaluation ----------------------------------------------------

    def _env(self, frame: _Frame) -> dict[str, Any]:
        env = dict(self.context)
        env.update(frame.locals)
        env["ctx"] = self.context
        return env

    def _value(self, instruction: Instruction, frame: _Frame) -> Any:
        """Value from a literal ``value`` or expression ``expr`` operand."""
        if "expr" in instruction.operands:
            return evaluate(str(instruction.operand("expr")), self._env(frame))
        return instruction.operand("value")

    def _resolve_args(self, instruction: Instruction, frame: _Frame) -> dict[str, Any]:
        """Merge literal ``args`` with evaluated ``args_expr`` operands."""
        resolved = dict(instruction.operand("args", {}) or {})
        env = self._env(frame)
        for key, expr in dict(instruction.operand("args_expr", {}) or {}).items():
            resolved[key] = evaluate(str(expr), env)
        return resolved


def _spin(cost: float) -> None:
    """Default NOOP work: a tight loop proportional to ``cost``.

    ``cost`` is in abstract work units (~1 unit = one thousand loop
    iterations), so NOOP-heavy procedures consume measurable wall time
    in benchmarks without calling time.sleep (which would put the
    interpreter to sleep rather than model CPU-bound middleware work).
    """
    count = int(cost * 1000)
    total = 0
    for i in range(count):
        total += i
