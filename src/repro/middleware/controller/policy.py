"""Policies and the context store.

Paper Sec. V-A: "the choice of action to use in a particular execution
of an application model element is based on policies and context
variables defined in the middleware model."  Sec. VI adds that command
classification (Case 1 vs Case 2) "takes into account domain policies
and context information".

:class:`ContextStore` holds the environmental context (load, battery,
network quality, user preferences, ...) with change notification.
:class:`Policy` is a guarded rule: when its condition holds, its
*effects* apply — scoring weights for candidate selection, a forced
classification case, or arbitrary advice consumed by handlers.
:class:`PolicyEngine` evaluates the active policy set against the
current context and aggregates effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.modeling.expr import Expression, ExpressionError

__all__ = [
    "PolicyError",
    "ContextStore",
    "Policy",
    "PolicyDecision",
    "PolicyEngine",
]


class PolicyError(Exception):
    """Raised on malformed policies."""


class ContextStore:
    """Mutable key-value context with change subscription.

    The fingerprint is a stable hashable token over the *selection
    relevant* keys; the Intent Model cache uses it so that context
    changes correctly invalidate cached configurations.
    """

    def __init__(self, initial: Mapping[str, Any] | None = None) -> None:
        self._values: dict[str, Any] = dict(initial or {})
        self._watchers: list[Callable[[str, Any, Any], None]] = []

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def set(self, key: str, value: Any) -> None:
        old = self._values.get(key)
        if old == value and key in self._values:
            return
        self._values[key] = value
        for watcher in list(self._watchers):
            watcher(key, old, value)

    def update(self, values: Mapping[str, Any]) -> None:
        for key, value in values.items():
            self.set(key, value)

    def delete(self, key: str) -> None:
        if key in self._values:
            old = self._values.pop(key)
            for watcher in list(self._watchers):
                watcher(key, old, None)

    def watch(self, callback: Callable[[str, Any, Any], None]) -> None:
        self._watchers.append(callback)

    def snapshot(self) -> dict[str, Any]:
        return dict(self._values)

    def fingerprint(self, keys: tuple[str, ...] | None = None) -> tuple:
        """Hashable token of (a subset of) the context."""
        if keys is None:
            keys = tuple(sorted(self._values))
        return tuple((k, _freeze(self._values.get(k))) for k in keys)

    def __contains__(self, key: object) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ContextStore({self._values!r})"


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, set, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass
class Policy:
    """A guarded rule applied when its condition holds for the context.

    Effects (all optional):
        weights: attribute -> weight used when scoring candidate
            procedures (e.g. ``{"cost": -1.0, "reliability": 2.0}``;
            negative weight = lower is better).
        prefer: procedure-name preferences (name -> bonus score).
        force_case: "actions" | "intent" — override command
            classification for matching commands.
        applies_to: classifier-name prefix restricting which commands
            or procedures the policy touches ("" = all).
        advice: free-form mapping consumed by domain handlers.
    """

    name: str
    condition: str = "True"
    weights: Mapping[str, float] = field(default_factory=dict)
    prefer: Mapping[str, float] = field(default_factory=dict)
    force_case: str | None = None
    applies_to: str = ""
    advice: Mapping[str, Any] = field(default_factory=dict)
    priority: int = 0
    _compiled: Expression | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.force_case not in (None, "actions", "intent"):
            raise PolicyError(
                f"policy {self.name!r}: force_case must be actions|intent"
            )
        try:
            self._compiled = Expression(self.condition)
        except ExpressionError as exc:
            raise PolicyError(f"policy {self.name!r}: {exc}") from exc

    def active(self, context: Mapping[str, Any]) -> bool:
        assert self._compiled is not None
        try:
            return bool(self._compiled.evaluate(context))
        except ExpressionError:
            # A policy referencing absent context keys is simply inactive.
            return False

    def concerns(self, classifier: str) -> bool:
        return classifier.startswith(self.applies_to)


@dataclass
class PolicyDecision:
    """Aggregated effects of all active policies for one decision point."""

    weights: dict[str, float] = field(default_factory=dict)
    prefer: dict[str, float] = field(default_factory=dict)
    force_case: str | None = None
    advice: dict[str, Any] = field(default_factory=dict)
    active_policies: list[str] = field(default_factory=list)

    def score(self, attributes: Mapping[str, Any], name: str = "") -> float:
        """Score a candidate: weighted attribute sum + name preference."""
        total = 0.0
        for key, weight in self.weights.items():
            value = attributes.get(key)
            if isinstance(value, bool):
                value = 1.0 if value else 0.0
            if isinstance(value, (int, float)):
                total += weight * float(value)
        total += self.prefer.get(name, 0.0)
        return total


class PolicyEngine:
    """Evaluates the registered policy set against a context."""

    def __init__(self, context: ContextStore | None = None) -> None:
        self.context = context if context is not None else ContextStore()
        self._policies: dict[str, Policy] = {}

    def add(self, policy: Policy) -> Policy:
        if policy.name in self._policies:
            raise PolicyError(f"duplicate policy {policy.name!r}")
        self._policies[policy.name] = policy
        return policy

    def remove(self, name: str) -> Policy:
        policy = self._policies.pop(name, None)
        if policy is None:
            raise PolicyError(f"no policy {name!r}")
        return policy

    def decide(self, classifier: str = "") -> PolicyDecision:
        """Aggregate the effects of all active, applicable policies.

        Later (higher-priority) policies win conflicting scalar effects
        (``force_case``); weights and preferences accumulate.
        """
        env = self.context.snapshot()
        decision = PolicyDecision()
        applicable = [
            p
            for p in self._policies.values()
            if p.concerns(classifier) and p.active(env)
        ]
        applicable.sort(key=lambda p: p.priority)
        for policy in applicable:
            decision.active_policies.append(policy.name)
            for key, weight in policy.weights.items():
                decision.weights[key] = decision.weights.get(key, 0.0) + weight
            for name, bonus in policy.prefer.items():
                decision.prefer[name] = decision.prefer.get(name, 0.0) + bonus
            if policy.force_case is not None:
                decision.force_case = policy.force_case
            decision.advice.update(policy.advice)
        return decision

    def relevant_context_keys(self) -> tuple[str, ...]:
        """Context keys mentioned by any policy condition (cache keying)."""
        keys: set[str] = set()
        for policy in self._policies.values():
            for name in _names_in(policy.condition):
                keys.add(name)
        return tuple(sorted(keys))

    def __iter__(self) -> Iterator[Policy]:
        return iter(self._policies.values())

    def __len__(self) -> int:
        return len(self._policies)


def _names_in(source: str) -> set[str]:
    import ast

    try:
        tree = ast.parse(source, mode="eval")
    except SyntaxError:
        return set()
    return {
        node.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Name) and node.id not in ("True", "False", "None")
    }
