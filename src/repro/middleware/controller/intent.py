"""Intent Model (IM) generation, validation and selection.

Paper Sec. V-B: "The generation of an execution model operates on
procedure metadata to determine the optimal configuration of a set of
procedures to carry out a requested operation based on active policies.
It determines valid configurations by examining the DSC-described
dependencies of a procedure X, and matches them with other procedures
that are classified by the DSCs on which X depends.  This step is
repeated recursively while ensuring that unwanted configurations such
as cycles are avoided, until a procedure dependency tree is generated.
This tree is referred to as an Intent Model (IM)."

The full cycle measured in the paper's evaluation (Sec. VII-B) is
**generation, validation, and selection**; the ~1 ms amortized figure
at 100 000 cycles arises from the configuration cache, which this
module implements as an LRU keyed by (classifier, repository version,
policy-relevant context fingerprint).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

from repro.middleware.controller.policy import PolicyDecision, PolicyEngine
from repro.middleware.controller.procedure import Procedure, ProcedureRepository

__all__ = [
    "IntentError",
    "IntentNode",
    "IntentModel",
    "GenerationStats",
    "IntentModelGenerator",
]


class IntentError(Exception):
    """Raised when no valid Intent Model exists for a request."""


@dataclass
class IntentNode:
    """One node of the procedure dependency tree."""

    procedure: Procedure
    #: dependency DSC name -> resolved child node (one per declared dep).
    children: dict[str, "IntentNode"] = field(default_factory=dict)

    def walk(self) -> Iterator["IntentNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def resolve(self, dependency: str) -> "IntentNode":
        child = self.children.get(dependency)
        if child is None:
            raise IntentError(
                f"procedure {self.procedure.name!r}: no resolved dependency "
                f"{dependency!r}"
            )
        return child

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children.values())

    def __repr__(self) -> str:
        return f"IntentNode({self.procedure.name!r}, children={len(self.children)})"


@dataclass
class IntentModel:
    """A validated procedure dependency tree for one abstract operation."""

    classifier: str
    root: IntentNode
    score: float = 0.0
    from_cache: bool = False
    configurations_examined: int = 0

    def procedures(self) -> list[Procedure]:
        return [node.procedure for node in self.root.walk()]

    def size(self) -> int:
        return self.root.size()

    def depth(self) -> int:
        return self.root.depth()

    def signature(self) -> tuple[str, ...]:
        """Stable identity of the selected configuration."""
        return tuple(node.procedure.name for node in self.root.walk())

    def __repr__(self) -> str:
        return (
            f"IntentModel({self.classifier!r}, size={self.size()}, "
            f"score={self.score:.3f}, cached={self.from_cache})"
        )


@dataclass
class GenerationStats:
    """Counters accumulated across generator invocations."""

    requests: int = 0
    cache_hits: int = 0
    generated: int = 0
    configurations_examined: int = 0
    validations: int = 0
    failures: int = 0

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.cache_hits / self.requests


class IntentModelGenerator:
    """Generates, validates, selects and caches Intent Models.

    Parameters:
        repository: procedure store (provides candidate matching).
        policies: policy engine; its decision both *filters* (via DSC
            constraints, handled by the repository) and *ranks*
            candidate configurations.
        max_depth: defensive bound on dependency recursion.
        max_configurations: how many complete configurations to examine
            per request before selecting the best (the paper's
            "various ways of executing a particular command").
        cache_size: number of (classifier, context) entries retained.
    """

    def __init__(
        self,
        repository: ProcedureRepository,
        policies: PolicyEngine,
        *,
        max_depth: int = 16,
        max_configurations: int = 8,
        cache_size: int = 512,
    ) -> None:
        self.repository = repository
        self.policies = policies
        self.max_depth = max_depth
        self.max_configurations = max_configurations
        self.cache_size = cache_size
        self.stats = GenerationStats()
        self._cache: OrderedDict[tuple, IntentModel] = OrderedDict()

    # -- public API ------------------------------------------------------

    def generate(self, classifier: str, *, use_cache: bool = True) -> IntentModel:
        """Run a full cycle: generation, validation, selection.

        Raises :class:`IntentError` when no valid configuration exists.
        """
        self.stats.requests += 1
        key = self._cache_key(classifier)
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.stats.cache_hits += 1
                return IntentModel(
                    classifier=cached.classifier,
                    root=cached.root,
                    score=cached.score,
                    from_cache=True,
                    configurations_examined=0,
                )
        model = self._generate_uncached(classifier)
        if use_cache:
            self._cache[key] = model
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return model

    def invalidate(self) -> None:
        self._cache.clear()

    @property
    def cache_entries(self) -> int:
        return len(self._cache)

    # -- generation ---------------------------------------------------------

    def _generate_uncached(self, classifier: str) -> IntentModel:
        # Policies are scoped by classifier (``applies_to``), so each
        # resolution level ranks candidates under the decision for *its*
        # classifier — memoized for the duration of this generation.
        decisions: dict[str, PolicyDecision] = {}

        def decision_for(name: str) -> PolicyDecision:
            found = decisions.get(name)
            if found is None:
                found = self.policies.decide(name)
                decisions[name] = found
            return found

        configurations: list[IntentNode] = []
        examined = 0
        for tree in self._enumerate(
            classifier, path=(), depth=0, decision_for=decision_for
        ):
            examined += 1
            if self._validate(tree):
                configurations.append(tree)
            if examined >= self.max_configurations:
                break
        self.stats.configurations_examined += examined
        if not configurations:
            self.stats.failures += 1
            raise IntentError(
                f"no valid Intent Model for classifier {classifier!r} "
                f"(examined {examined} configurations)"
            )
        best = max(
            configurations, key=lambda t: self._tree_score(t, decision_for)
        )
        self.stats.generated += 1
        return IntentModel(
            classifier=classifier,
            root=best,
            score=self._tree_score(best, decision_for),
            configurations_examined=examined,
        )

    def _enumerate(
        self,
        classifier: str,
        *,
        path: tuple[str, ...],
        depth: int,
        decision_for,
    ) -> Iterator[IntentNode]:
        """Yield complete dependency trees for ``classifier``, best-first.

        ``path`` carries the procedure names on the current resolution
        branch; re-entering one is the cycle the paper's generator must
        avoid.
        """
        if depth > self.max_depth:
            return
        decision = decision_for(classifier)
        candidates = self.repository.candidates_for(classifier)
        candidates.sort(
            key=lambda p: decision.score(p.attributes, p.name), reverse=True
        )
        for candidate in candidates:
            if candidate.name in path:
                continue  # cycle avoidance
            yield from self._expand(
                candidate, path=path + (candidate.name,), depth=depth,
                decision_for=decision_for,
            )

    def _expand(
        self,
        procedure: Procedure,
        *,
        path: tuple[str, ...],
        depth: int,
        decision_for,
    ) -> Iterator[IntentNode]:
        """Yield trees rooted at ``procedure`` with all deps resolved."""
        if not procedure.dependencies:
            yield IntentNode(procedure=procedure)
            return
        yield from self._expand_deps(
            procedure, list(procedure.dependencies), {}, path=path,
            depth=depth, decision_for=decision_for,
        )

    def _expand_deps(
        self,
        procedure: Procedure,
        remaining: list[str],
        resolved: dict[str, IntentNode],
        *,
        path: tuple[str, ...],
        depth: int,
        decision_for,
    ) -> Iterator[IntentNode]:
        if not remaining:
            yield IntentNode(procedure=procedure, children=dict(resolved))
            return
        dependency, rest = remaining[0], remaining[1:]
        for subtree in self._enumerate(
            dependency, path=path, depth=depth + 1, decision_for=decision_for
        ):
            resolved[dependency] = subtree
            yield from self._expand_deps(
                procedure, rest, resolved, path=path, depth=depth,
                decision_for=decision_for,
            )
            del resolved[dependency]

    # -- validation & selection ----------------------------------------------

    def _validate(self, tree: IntentNode) -> bool:
        """Structural validation of a candidate configuration.

        Checks: every declared dependency of every node is resolved;
        resolved children are classified compatibly; no procedure
        repeats along any root-to-leaf path (cycle freedom); depth
        bound respected.
        """
        self.stats.validations += 1
        taxonomy = self.repository.taxonomy
        if tree.depth() > self.max_depth + 1:
            return False

        def check(node: IntentNode, lineage: set[str]) -> bool:
            if node.procedure.name in lineage:
                return False
            declared = set(node.procedure.dependencies)
            if declared != set(node.children):
                return False
            for dependency, child in node.children.items():
                if not taxonomy.matches(child.procedure.classifier, dependency):
                    return False
                if not check(child, lineage | {node.procedure.name}):
                    return False
            return True

        return check(tree, set())

    def _tree_score(self, tree: IntentNode, decision_for) -> float:
        """Total score: each node under its own classifier's decision."""
        return sum(
            decision_for(node.procedure.classifier).score(
                node.procedure.attributes, node.procedure.name
            )
            for node in tree.walk()
        )

    # -- caching ---------------------------------------------------------------

    def _cache_key(self, classifier: str) -> tuple:
        return (
            classifier,
            self.repository.version,
            self.policies.context.fingerprint(self.policies.relevant_context_keys()),
        )

    def __repr__(self) -> str:
        return (
            f"IntentModelGenerator(repo={len(self.repository)} procedures, "
            f"cache={len(self._cache)}/{self.cache_size})"
        )
