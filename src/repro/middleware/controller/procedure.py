"""Procedures and Execution Units (EUs).

Paper Sec. V-B: "Procedures, and their accompanying execution units
(EUs), undertake the domain specific operations of the controller.
They are classified by DSCs (... a single procedure [is] classified by
a single DSC), allowing them to be considered as candidates to realize
the abstract operation (i.e., the interface) that matches their
classifying DSC."

A :class:`Procedure` is pure metadata + behaviour description; its
behaviour is a sequence of :class:`Instruction` objects executed by the
Controller's stack machine.  The instruction set is the Controller's
*model of execution* (domain-independent): memory management, event
handling, message passing and remote (Broker) calls — exactly the
categories the paper lists.

Instruction opcodes:

=============  =========================================================
``SET``        bind a local variable from a safe expression
``BROKER``     call a Broker-layer API (``api``, templated ``args``)
``INVOKE``     DSC-based call of a declared dependency (pushes a frame)
``EMIT``       raise an event to the Controller's event handler
``GUARD``      abort this frame unless the expression holds
``RETURN``     finish this frame (optionally yielding a value)
``NOOP``       spin ``cost`` units of simulated work (calibration)
=============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.middleware.controller.dsc import DSCError, DSCTaxonomy

__all__ = [
    "ProcedureError",
    "Instruction",
    "ExecutionUnit",
    "Procedure",
    "ProcedureRepository",
]


class ProcedureError(Exception):
    """Raised on malformed procedures or repository inconsistencies."""


_OPCODES = {"SET", "BROKER", "INVOKE", "EMIT", "GUARD", "RETURN", "NOOP"}


@dataclass(frozen=True)
class Instruction:
    """One stack-machine instruction."""

    opcode: str
    operands: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.opcode not in _OPCODES:
            raise ProcedureError(f"unknown opcode {self.opcode!r}")

    def operand(self, key: str, default: Any = None) -> Any:
        return self.operands.get(key, default)

    def __str__(self) -> str:
        return f"{self.opcode} {dict(self.operands)!r}"


@dataclass
class ExecutionUnit:
    """A named, ordered block of instructions within a procedure.

    Procedures usually have a single ``main`` EU; compensation/rollback
    behaviour goes in additional EUs (e.g. ``on_error``).
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def add(self, opcode: str, **operands: Any) -> "ExecutionUnit":
        self.instructions.append(Instruction(opcode, operands))
        return self

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


class Procedure:
    """Metadata and behaviour of one domain operation implementation.

    Attributes:
        name: unique within a repository.
        classifier: the single DSC classifying this procedure.
        dependencies: DSC names this procedure may ``INVOKE``.
        attributes: quality/constraint metadata consulted by DSC
            constraint matching and policy scoring (e.g. ``cost``,
            ``reliability``, ``medium``).
        execution_units: named EU blocks; ``main`` is the entry point.
    """

    def __init__(
        self,
        name: str,
        classifier: str,
        *,
        dependencies: list[str] | tuple[str, ...] = (),
        attributes: Mapping[str, Any] | None = None,
        description: str = "",
    ) -> None:
        if not name:
            raise ProcedureError("procedure name must be non-empty")
        if not classifier:
            raise ProcedureError(f"procedure {name!r} requires a classifier")
        self.name = name
        self.classifier = classifier
        self.dependencies: tuple[str, ...] = tuple(dependencies)
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.description = description
        self.execution_units: dict[str, ExecutionUnit] = {}

    # -- behaviour construction ------------------------------------------

    def unit(self, name: str = "main") -> ExecutionUnit:
        """Get or create an execution unit."""
        if name not in self.execution_units:
            self.execution_units[name] = ExecutionUnit(name)
        return self.execution_units[name]

    @property
    def main(self) -> ExecutionUnit:
        return self.unit("main")

    def has_unit(self, name: str) -> bool:
        return name in self.execution_units

    # -- metadata queries ---------------------------------------------------

    @property
    def cost(self) -> float:
        """Estimated execution cost (policy scoring input; default 1.0)."""
        return float(self.attributes.get("cost", 1.0))

    @property
    def reliability(self) -> float:
        """Estimated reliability in [0, 1] (default 1.0)."""
        return float(self.attributes.get("reliability", 1.0))

    def instruction_count(self) -> int:
        return sum(len(eu) for eu in self.execution_units.values())

    def __repr__(self) -> str:
        return (
            f"Procedure({self.name!r}: {self.classifier}, "
            f"deps={list(self.dependencies)})"
        )


class ProcedureRepository:
    """The Controller's procedure store, indexed by classifier.

    Candidate lookup implements the paper's covariant matching: a
    dependency on DSC ``D`` is satisfied by any procedure whose
    classifier `is_a` ``D`` and whose attributes satisfy ``D``'s
    accumulated constraints.
    """

    def __init__(self, taxonomy: DSCTaxonomy) -> None:
        self.taxonomy = taxonomy
        self._procedures: dict[str, Procedure] = {}
        self._by_classifier: dict[str, list[Procedure]] = {}
        #: bumped on every mutation; used to invalidate IM caches.
        self.version = 0

    def add(self, procedure: Procedure) -> Procedure:
        if procedure.name in self._procedures:
            raise ProcedureError(f"duplicate procedure {procedure.name!r}")
        try:
            self.taxonomy.require(procedure.classifier)
        except DSCError as exc:
            raise ProcedureError(str(exc)) from exc
        for dep in procedure.dependencies:
            if dep not in self.taxonomy:
                raise ProcedureError(
                    f"procedure {procedure.name!r}: unknown dependency DSC {dep!r}"
                )
        self._procedures[procedure.name] = procedure
        self._by_classifier.setdefault(procedure.classifier, []).append(procedure)
        self.version += 1
        return procedure

    def remove(self, name: str) -> Procedure:
        procedure = self._procedures.pop(name, None)
        if procedure is None:
            raise ProcedureError(f"no procedure {name!r}")
        self._by_classifier[procedure.classifier].remove(procedure)
        self.version += 1
        return procedure

    def get(self, name: str) -> Procedure | None:
        return self._procedures.get(name)

    def require(self, name: str) -> Procedure:
        procedure = self._procedures.get(name)
        if procedure is None:
            raise ProcedureError(f"no procedure {name!r}")
        return procedure

    def candidates_for(self, classifier: str) -> list[Procedure]:
        """All procedures that can realize the abstract operation
        described by ``classifier`` (covariant + constraint matching)."""
        required = self.taxonomy.get(classifier)
        if required is None:
            return []
        result: list[Procedure] = []
        for dsc in self.taxonomy.descendants_of(classifier):
            for procedure in self._by_classifier.get(dsc.name, []):
                if required.satisfied_by(procedure.attributes):
                    result.append(procedure)
        return result

    def classifiers_in_use(self) -> set[str]:
        return set(self._by_classifier)

    def check_closure(self) -> list[str]:
        """Diagnostics: dependencies with no candidate at all.

        Returns a list of human-readable problems (empty = closed).
        The middleware engineer runs this at model-load time (paper:
        "automated tools to verify the consistency of the generated
        middleware").
        """
        problems: list[str] = []
        for procedure in self._procedures.values():
            for dep in procedure.dependencies:
                if not self.candidates_for(dep):
                    problems.append(
                        f"procedure {procedure.name!r}: dependency {dep!r} "
                        f"has no candidate procedure"
                    )
        return problems

    def __contains__(self, name: object) -> bool:
        return name in self._procedures

    def __iter__(self) -> Iterator[Procedure]:
        return iter(self._procedures.values())

    def __len__(self) -> int:
        return len(self._procedures)

    def __repr__(self) -> str:
        return (
            f"ProcedureRepository(domain={self.taxonomy.domain!r}, "
            f"procedures={len(self)})"
        )
