"""Controller-layer handlers and command classification.

Paper Sec. VI: "The metamodel enables coexistence of two distinct
approaches to define the operational semantics of commands: Case 1 —
selection of predefined actions; and Case 2 — dynamic generation of
intent models (IMs). ... the choice of which approach to use for each
received command is determined by a command classification step that
precedes actual command execution.  Command classification takes into
account domain policies and context information."

* :class:`Action` / :class:`ActionHandler` implement Case 1.
* :class:`IntentModelHandler` implements Case 2 on top of the
  generator and stack machine.
* :class:`CommandClassifier` implements the classification step.
* :class:`EventHandler` processes exceptional conditions raised during
  command execution (paper Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.middleware.controller.intent import IntentError, IntentModelGenerator
from repro.middleware.controller.policy import PolicyEngine
from repro.middleware.controller.stackmachine import (
    BrokerCallRecord,
    BrokerPort,
    ExecutionResult,
    StackMachine,
)
from repro.middleware.synthesis.scripts import Command
from repro.modeling.expr import evaluate
from repro.runtime.events import Event, EventDeliveryError
from repro.runtime.topics import TopicMatcher

__all__ = [
    "HandlerError",
    "Action",
    "ActionHandler",
    "IntentModelHandler",
    "CommandClassifier",
    "EventHandler",
]


class HandlerError(Exception):
    """Raised when no handler can process a command."""


@dataclass
class Action:
    """A predefined action bound to an operation pattern (Case 1).

    ``implementation`` is either a Python callable
    ``(command, broker, context) -> Any`` or a declarative list of
    Broker calls (``[{"api": ..., "args": {...}, "args_expr": {...}},
    ...]``) — the form actions take when defined inside a middleware
    model.

    ``pattern`` matches the command operation: exact, or prefix when it
    ends with ``*`` (``"session.*"``).
    """

    name: str
    pattern: str
    implementation: (
        Callable[[Command, BrokerPort, dict[str, Any]], Any]
        | list[Mapping[str, Any]]
    )
    guard: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def matches(self, operation: str, env: Mapping[str, Any]) -> bool:
        if not TopicMatcher.matches(self.pattern, operation):
            return False
        if self.guard is not None:
            return bool(evaluate(self.guard, dict(env)))
        return True

    def run(
        self,
        command: Command,
        broker: BrokerPort,
        context: dict[str, Any],
        result: ExecutionResult,
    ) -> Any:
        if callable(self.implementation):
            return self.implementation(command, broker, context)
        env = dict(context)
        env.update(command.args)
        env["command"] = command
        value: Any = None
        for step in self.implementation:
            api = step.get("api")
            if not api:
                raise HandlerError(f"action {self.name!r}: step missing 'api'")
            call_args = dict(step.get("args", {}))
            for key, expr in dict(step.get("args_expr", {})).items():
                call_args[key] = evaluate(str(expr), env)
            value = broker.call_api(api, **call_args)
            result.broker_calls.append(BrokerCallRecord.of(api, call_args, value))
            store = step.get("result")
            if store:
                env[store] = value
        return value


class ActionHandler:
    """Case 1: select and execute a predefined action for a command.

    Among matching actions the policy decision picks the best by
    attribute score; ties resolve to registration order.
    """

    def __init__(
        self,
        broker: BrokerPort,
        policies: PolicyEngine,
    ) -> None:
        self.broker = broker
        self.policies = policies
        self._actions: list[Action] = []
        self.executed = 0

    def register(self, action: Action) -> Action:
        if any(a.name == action.name for a in self._actions):
            raise HandlerError(f"duplicate action {action.name!r}")
        self._actions.append(action)
        return self

    def add(
        self,
        name: str,
        pattern: str,
        implementation: Any,
        **kwargs: Any,
    ) -> Action:
        action = Action(name=name, pattern=pattern, implementation=implementation, **kwargs)
        self.register(action)
        return action

    def select(self, command: Command) -> Action | None:
        env = self.policies.context.snapshot()
        env.update(command.args)
        matching = [a for a in self._actions if a.matches(command.operation, env)]
        if not matching:
            return None
        decision = self.policies.decide(command.classifier or command.operation)
        return max(
            matching,
            key=lambda a: decision.score(a.attributes, a.name),
        )

    def can_handle(self, command: Command) -> bool:
        return self.select(command) is not None

    def handle(self, command: Command) -> ExecutionResult:
        action = self.select(command)
        if action is None:
            raise HandlerError(
                f"no action matches operation {command.operation!r}"
            )
        result = ExecutionResult()
        context = self.policies.context.snapshot()
        try:
            result.value = action.run(command, self.broker, context, result)
        except HandlerError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced in result
            result.status = "error"
            result.error = f"{type(exc).__name__}: {exc}"
        self.executed += 1
        return result

    @property
    def action_count(self) -> int:
        return len(self._actions)

    def table_size_estimate(self) -> int:
        """Rough resident size of the action table (A1 ablation metric):
        number of declarative steps plus one per callable action."""
        total = 0
        for action in self._actions:
            if callable(action.implementation):
                total += 1
            else:
                total += len(action.implementation)
        return total


class IntentModelHandler:
    """Case 2: dynamic Intent Model generation + stack-machine execution."""

    def __init__(
        self,
        generator: IntentModelGenerator,
        machine: StackMachine,
        *,
        classifier_map: Mapping[str, str] | None = None,
    ) -> None:
        self.generator = generator
        self.machine = machine
        #: operation (or prefix ending in '*') -> classifier name.
        self.classifier_map = dict(classifier_map or {})
        self.executed = 0

    def classifier_for(self, command: Command) -> str:
        if command.classifier:
            return command.classifier
        exact = self.classifier_map.get(command.operation)
        if exact is not None:
            return exact
        for pattern, classifier in self.classifier_map.items():
            if pattern.endswith("*") and TopicMatcher.matches(
                pattern, command.operation
            ):
                return classifier
        # Fall back to the operation name itself (domains may name DSCs
        # after operations).
        return command.operation

    def can_handle(self, command: Command) -> bool:
        classifier = self.classifier_for(command)
        return bool(self.generator.repository.candidates_for(classifier))

    def handle(self, command: Command) -> ExecutionResult:
        classifier = self.classifier_for(command)
        try:
            model = self.generator.generate(classifier)
        except IntentError as exc:
            raise HandlerError(str(exc)) from exc
        result = self.machine.execute(model, dict(command.args))
        self.executed += 1
        return result


class CommandClassifier:
    """The classification step preceding command execution (Sec. VI).

    Decision order:

    1. an active policy ``force_case`` wins;
    2. a per-operation override configured in the middleware model;
    3. the layer default (``"actions"`` when an action matches —
       predefined actions are the fast path — else ``"intent"``).
    """

    CASE_ACTIONS = "actions"
    CASE_INTENT = "intent"

    def __init__(
        self,
        policies: PolicyEngine,
        *,
        default_case: str = CASE_ACTIONS,
        overrides: Mapping[str, str] | None = None,
    ) -> None:
        if default_case not in (self.CASE_ACTIONS, self.CASE_INTENT):
            raise HandlerError(f"bad default case {default_case!r}")
        self.policies = policies
        self.default_case = default_case
        self.overrides = dict(overrides or {})

    def classify(
        self,
        command: Command,
        *,
        action_available: bool,
        intent_available: bool,
    ) -> str:
        decision = self.policies.decide(command.classifier or command.operation)
        chosen: str | None = decision.force_case
        if chosen is None:
            chosen = self._override_for(command.operation)
        if chosen is None:
            if self.default_case == self.CASE_ACTIONS and action_available:
                chosen = self.CASE_ACTIONS
            else:
                chosen = self.CASE_INTENT
        # Fall through to whichever side can actually serve the command.
        if chosen == self.CASE_ACTIONS and not action_available:
            chosen = self.CASE_INTENT
        if chosen == self.CASE_INTENT and not intent_available:
            chosen = self.CASE_ACTIONS
        if (chosen == self.CASE_ACTIONS and not action_available) or (
            chosen == self.CASE_INTENT and not intent_available
        ):
            raise HandlerError(
                f"command {command.operation!r}: no handler available "
                f"(actions={action_available}, intent={intent_available})"
            )
        return chosen

    def _override_for(self, operation: str) -> str | None:
        exact = self.overrides.get(operation)
        if exact is not None:
            return exact
        for pattern, case in self.overrides.items():
            if pattern.endswith("*") and TopicMatcher.matches(pattern, operation):
                return case
        return None


class EventHandler:
    """Dispatches Controller-internal events to registered callbacks."""

    def __init__(self) -> None:
        self._handlers: list[tuple[str, Callable[[str, dict[str, Any]], None]]] = []
        #: per-topic route cache (topic -> matching callbacks): every
        #: Broker resource event passes through here, so the repeated
        #: pattern scan is replaced with one dict hit.  Invalidated on
        #: registration; bounded against unbounded distinct topics.
        self._routes: dict[str, tuple[Callable[[str, dict[str, Any]], None], ...]] = {}
        self.handled = 0
        self.unhandled = 0

    def on(self, pattern: str, callback: Callable[[str, dict[str, Any]], None]) -> None:
        self._handlers.append((pattern, callback))
        self._routes = {}

    def routes(self, topic: str) -> tuple[Callable[[str, dict[str, Any]], None], ...]:
        """The callbacks matching ``topic``, cached per topic."""
        cached = self._routes.get(topic)
        if cached is None:
            cached = tuple(
                callback
                for pattern, callback in self._handlers
                if TopicMatcher.matches(pattern, topic)
            )
            if len(self._routes) >= 1024:
                self._routes = {}
            self._routes[topic] = cached
        return cached

    def dispatch(self, topic: str, payload: dict[str, Any]) -> int:
        """Invoke every matching callback; handler exceptions are
        aggregated into one :class:`EventDeliveryError` after all
        callbacks ran (same contract as the event bus)."""
        matched = 0
        errors: list[Exception] = []
        for callback in self.routes(topic):
            matched += 1
            try:
                callback(topic, payload)
            except Exception as exc:  # noqa: BLE001 - aggregated below
                errors.append(exc)
        if matched:
            self.handled += 1
        else:
            self.unhandled += 1
        if errors:
            raise EventDeliveryError(Event(topic=topic, payload=payload), errors)
        return matched
