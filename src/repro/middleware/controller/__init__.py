"""Controller layer: command classification, DSCs, procedures,
Intent Model generation, and the stack-machine execution engine
(paper Secs. V-B and VI)."""

from repro.middleware.controller.dsc import DSC, DSCError, DSCTaxonomy
from repro.middleware.controller.handlers import (
    Action,
    ActionHandler,
    CommandClassifier,
    EventHandler,
    HandlerError,
    IntentModelHandler,
)
from repro.middleware.controller.intent import (
    GenerationStats,
    IntentError,
    IntentModel,
    IntentModelGenerator,
    IntentNode,
)
from repro.middleware.controller.layer import (
    CommandOutcome,
    ControllerLayer,
    ScriptOutcome,
)
from repro.middleware.controller.policy import (
    ContextStore,
    Policy,
    PolicyDecision,
    PolicyEngine,
    PolicyError,
)
from repro.middleware.controller.procedure import (
    ExecutionUnit,
    Instruction,
    Procedure,
    ProcedureError,
    ProcedureRepository,
)
from repro.middleware.controller.stackmachine import (
    BrokerCallRecord,
    BrokerPort,
    ExecutionError,
    ExecutionResult,
    GuardFailed,
    StackMachine,
)

__all__ = [
    "DSC", "DSCTaxonomy", "DSCError",
    "Procedure", "ProcedureRepository", "ProcedureError",
    "Instruction", "ExecutionUnit",
    "IntentModel", "IntentNode", "IntentModelGenerator", "IntentError",
    "GenerationStats",
    "StackMachine", "ExecutionResult", "ExecutionError", "GuardFailed",
    "BrokerPort", "BrokerCallRecord",
    "Policy", "PolicyEngine", "PolicyDecision", "PolicyError", "ContextStore",
    "Action", "ActionHandler", "IntentModelHandler", "CommandClassifier",
    "EventHandler", "HandlerError",
    "ControllerLayer", "CommandOutcome", "ScriptOutcome",
]
