"""UI layer: the user's model workspace.

Paper Sec. III: "the User Interface layer provides a language
environment for users to specify application models."  The original
platforms leverage EMF/GMF-generated editors; here the workspace
provides the equivalent programmatic environment:

* holds named user models (conforming to the domain DSML metamodel),
* supports *checkout / edit / submit* cycles: checkout clones the
  current runtime model so the user edits a private copy (the
  models@runtime loop),
* accepts textual models through pluggable parser callbacks (each
  domain may register a concrete syntax),
* receives runtime-model updates from the Synthesis dispatcher.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.modeling.constraints import ConstraintRegistry, ValidationReport, validate_model
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model
from repro.modeling.serialize import (
    clone_model,
    model_from_dict,
    model_from_json,
    model_to_dict,
)
from repro.modeling.weave import WeaveResult, weave_models
from repro.runtime.component import Component

__all__ = ["UIError", "ModelWorkspace"]


class UIError(Exception):
    """Raised on workspace misuse (unknown models, missing parser)."""


class ModelWorkspace(Component):
    """The user-facing language environment for one DSML."""

    required_ports = ("synthesis",)

    def __init__(
        self,
        name: str = "ui",
        *,
        metamodel: Metamodel,
        constraints: ConstraintRegistry | None = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        self.metamodel = metamodel
        self.constraints = constraints if constraints is not None else ConstraintRegistry()
        self._models: dict[str, Model] = {}
        self._parser: Callable[[str], Model] | None = None
        self._runtime_view: Model | None = None
        self.submissions = 0

    # -- lifecycle --------------------------------------------------------

    def on_start(self) -> None:
        synthesis = self.port("synthesis")
        synthesis.dispatcher.on_model_update(self._on_runtime_update)

    # -- model management ----------------------------------------------------

    def new_model(self, name: str) -> Model:
        """Create an empty user model in the workspace."""
        if name in self._models:
            raise UIError(f"workspace already has a model named {name!r}")
        model = Model(self.metamodel, name=name)
        self._models[name] = model
        return model

    def put_model(self, model: Model) -> Model:
        """Adopt an externally built model into the workspace."""
        if model.metamodel is not self.metamodel:
            raise UIError(
                f"model conforms to {model.metamodel.name!r}, workspace "
                f"expects {self.metamodel.name!r}"
            )
        self._models[model.name] = model
        return model

    def get_model(self, name: str) -> Model:
        model = self._models.get(name)
        if model is None:
            raise UIError(f"no model named {name!r} in the workspace")
        return model

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def checkout(self, name: str | None = None) -> Model:
        """A private editable copy of a workspace model, or of the
        current runtime model when ``name`` is None."""
        if name is not None:
            return clone_model(self.get_model(name))
        if self._runtime_view is None:
            raise UIError("no runtime model to check out yet")
        return clone_model(self._runtime_view)

    # -- textual syntax --------------------------------------------------------

    def set_parser(self, parser: Callable[[str], Model]) -> None:
        self._parser = parser

    def parse(self, text: str, *, name: str | None = None) -> Model:
        """Parse a textual model using the registered domain syntax."""
        if self._parser is not None:
            model = self._parser(text)
        else:
            # Default concrete syntax: the kernel's JSON documents.
            model = model_from_json(text, self.metamodel)
        if name:
            model.name = name
        return self.put_model(model)

    # -- validation & submission --------------------------------------------------

    def validate(self, model: Model) -> ValidationReport:
        return validate_model(model, self.constraints)

    def submit(self, model: Model | str, **context: Any) -> Any:
        """Submit a model to the Synthesis layer; returns its result.

        The workspace validates first so users get model-level
        diagnostics before synthesis begins.
        """
        self.require_running()
        if isinstance(model, str):
            model = self.get_model(model)
        report = self.validate(model)
        report.raise_if_invalid()
        self.submissions += 1
        return self.port("synthesis").synthesize(model, context=context or None)

    def submit_woven(
        self,
        base: Model | str,
        *aspects: Model | str,
        strict: bool = False,
        **context: Any,
    ) -> tuple[WeaveResult, Any]:
        """Weave several concern models and submit the composition.

        Realizes the paper's aspect-oriented execution goal (Sec. IX):
        "simultaneously executing (through a weaving step) multiple
        related models that describe the different concerns of an
        application."  Returns (weave result, synthesis result).
        """
        base_model = self.get_model(base) if isinstance(base, str) else base
        aspect_models = [
            self.get_model(a) if isinstance(a, str) else a for a in aspects
        ]
        woven = weave_models(
            base_model, *aspect_models,
            name=f"{base_model.name}+{len(aspect_models)}aspects",
            strict=strict,
        )
        self.put_model(woven.model)
        return woven, self.submit(woven.model, **context)

    # -- externalization (PR 5) ----------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture the user's workspace models and the submit counter.

        The runtime view is *not* captured here: it is re-announced by
        the synthesis dispatcher when its restored runtime model is
        installed, so serializing it twice would only invite skew.
        """
        return {
            "models": {
                name: model_to_dict(self._models[name])
                for name in sorted(self._models)
            },
            "submissions": self.submissions,
        }

    def restore_external(self, doc: dict[str, Any]) -> None:
        for name, model_doc in doc.get("models", {}).items():
            self._models[name] = model_from_dict(model_doc, self.metamodel)
        self.submissions = int(doc.get("submissions", 0))

    # -- runtime view ------------------------------------------------------------------

    @property
    def runtime_view(self) -> Model | None:
        """Read-only view of the model currently in execution."""
        return self._runtime_view

    def _on_runtime_update(self, model: Model) -> None:
        self._runtime_view = model
