"""Resource management: the Broker's interface to the world below.

Paper Sec. V-A: the Broker metamodel defines a resource manager "to
interface with the underlying resources", and the layer is
"responsible for interacting with the underlying resources and
services for the actual execution of commands, considering systems
issues such as heterogeneity and concurrency" (Sec. III).

A :class:`Resource` is the uniform adapter contract every underlying
service implements (simulated network services, plant controllers,
smart objects, sensing devices).  :class:`ResourceManager` hides
heterogeneity behind name-based dispatch and forwards resource events
upward.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, Mapping

from repro.runtime.clock import Clock
from repro.runtime.events import EventBus, mint_event
from repro.runtime.faults import (
    PASSTHROUGH as PASSTHROUGH_POLICY,
    CircuitBreaker,
    InvocationOutcome,
    RetryPolicy,
    call_guarded,
)
from repro.runtime.metrics import MetricsRegistry, default_registry

__all__ = [
    "ResourceError",
    "TransientResourceError",
    "BreakerOpenError",
    "Resource",
    "CallableResource",
    "ResourceManager",
]


class ResourceError(Exception):
    """Raised on unknown resources/operations or failed invocations."""


class TransientResourceError(ResourceError):
    """A fault worth retrying (network glitch, injected fault, busy
    device).  The default Broker fault policies retry only these."""


class BreakerOpenError(ResourceError):
    """An invocation was rejected by an open circuit breaker."""


class Resource:
    """Adapter contract for an underlying resource or service.

    Subclasses implement :meth:`invoke`; they emit asynchronous
    occurrences by calling :meth:`notify` (wired to the Broker's bus by
    the resource manager).
    """

    def __init__(self, name: str, *, kind: str = "generic") -> None:
        self.name = name
        self.kind = kind
        self._notify: Callable[[str, dict[str, Any]], None] | None = None

    def invoke(self, operation: str, **args: Any) -> Any:
        raise NotImplementedError

    def operations(self) -> list[str]:
        """Advertised operations (diagnostics; empty = unadvertised)."""
        return []

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "operations": self.operations()}

    # -- event plumbing ---------------------------------------------------

    def attach(self, notify: Callable[[str, dict[str, Any]], None]) -> None:
        self._notify = notify

    def detach(self) -> None:
        self._notify = None

    def notify(self, topic: str, **payload: Any) -> None:
        if self._notify is not None:
            self._notify(topic, payload)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} kind={self.kind!r}>"


class CallableResource(Resource):
    """A resource backed by a mapping of operation name -> callable."""

    def __init__(
        self,
        name: str,
        operations: Mapping[str, Callable[..., Any]],
        *,
        kind: str = "callable",
    ) -> None:
        super().__init__(name, kind=kind)
        self._operations = dict(operations)

    def invoke(self, operation: str, **args: Any) -> Any:
        fn = self._operations.get(operation)
        if fn is None:
            raise ResourceError(
                f"resource {self.name!r} has no operation {operation!r}"
            )
        return fn(**args)

    def operations(self) -> list[str]:
        return sorted(self._operations)


class ResourceManager:
    """Registers resources and dispatches operations onto them.

    Resource events surface on the Broker's bus under
    ``resource.<resource-name>.<topic>``.

    Fault tolerance: :meth:`set_fault_policy` / :meth:`protect` install
    per-resource retry policies and circuit breakers (``"*"`` installs
    a default for every resource).  Unprotected resources keep the
    bare, zero-overhead invocation path.  Breaker state changes are
    published as ``resource.<name>.breaker_<state>`` events, which the
    Broker's autonomic manager observes as symptoms.
    """

    def __init__(
        self,
        bus: EventBus,
        *,
        name: str = "resources",
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.bus = bus
        self.name = name
        self.clock = clock
        self.metrics = metrics if metrics is not None else default_registry()
        self._resources: dict[str, Resource] = {}
        self._policies: dict[str, RetryPolicy] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        #: resources confirmed unprotected (no policy, no breaker, no
        #: effect journal installed): one dict hit replaces the
        #: policy/breaker/journal lookups on every invocation.
        #: Invalidated whenever protection state can change.
        self._unguarded: dict[str, Resource] = {}
        #: deterministic jitter source (policies opt into jitter)
        self._rng = random.Random(0)
        #: exactly-once interceptor (see repro.runtime.wal.EffectJournal);
        #: None keeps the bare invocation paths untouched.
        self.effect_journal: Any = None
        self.invocations = 0
        self.retries = 0

    def install_effect_journal(self, journal: Any) -> None:
        """Route every resource invocation through ``journal.around``.

        While a journal entry is open, live operations are recorded as
        ``effect`` frames and replayed operations return their memoized
        outcome without touching the resource — the exactly-once half
        of WAL recovery.  Passing ``None`` uninstalls.  The journal's
        ``error_factory`` is defaulted to the broker fault taxonomy so
        replayed error outcomes re-raise with their original types
        (retry policies and handlers behave identically on replay).
        """
        self.effect_journal = journal
        self._unguarded = {}
        if journal is not None and journal.error_factory is None:
            journal.error_factory = _replay_error

    def register(self, resource: Resource) -> Resource:
        if resource.name in self._resources:
            raise ResourceError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        bus = self.bus
        name = resource.name
        prefix = f"resource.{name}."
        full_topics: dict[str, str] = {}

        def _notify(topic: str, payload: dict[str, Any]) -> None:
            # Flattened _resource_event: the full topic string is
            # built once per distinct op topic and reused, so every
            # downstream per-topic cache (bus routes, instruments,
            # binding/handler routes) keys on an interned string with
            # a cached hash.
            full = full_topics.get(topic)
            if full is None:
                full = full_topics[topic] = prefix + topic
            payload.setdefault("resource", name)
            bus.publish(mint_event(full, payload, name))

        resource.attach(_notify)
        return resource

    def deregister(self, name: str) -> Resource:
        resource = self._resources.pop(name, None)
        if resource is None:
            raise ResourceError(f"no resource {name!r}")
        self._unguarded.pop(name, None)
        resource.detach()
        return resource

    def get(self, name: str) -> Resource | None:
        return self._resources.get(name)

    def require(self, name: str) -> Resource:
        resource = self._resources.get(name)
        if resource is None:
            raise ResourceError(f"no resource {name!r}")
        return resource

    # -- fault policies ---------------------------------------------------

    def set_fault_policy(
        self,
        resource_name: str,
        policy: RetryPolicy | None = None,
        *,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        """Install a retry policy and/or breaker for ``resource_name``
        (``"*"`` = default for every resource without its own)."""
        self._unguarded = {}
        if policy is not None:
            self._policies[resource_name] = policy
        if breaker is not None:
            breaker.name = breaker.name or resource_name
            previous = breaker.on_transition
            breaker.on_transition = (
                self._breaker_transition if previous is None
                else lambda b, old, new: (
                    previous(b, old, new), self._breaker_transition(b, old, new)
                )
            )
            self._breakers[resource_name] = breaker

    def protect(
        self,
        resource_name: str,
        policy: RetryPolicy | None = None,
        *,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_trials: int = 1,
    ) -> CircuitBreaker:
        """Convenience: build a clock-aware breaker for a resource and
        install it together with ``policy``."""
        breaker = CircuitBreaker(
            resource_name,
            failure_threshold=failure_threshold,
            recovery_time=recovery_time,
            half_open_trials=half_open_trials,
            now=self._now,
        )
        self.set_fault_policy(resource_name, policy, breaker=breaker)
        return breaker

    def breaker(self, resource_name: str) -> CircuitBreaker | None:
        return self._breakers.get(resource_name)

    def fault_policy(self, resource_name: str) -> RetryPolicy | None:
        policy = self._policies.get(resource_name)
        return policy if policy is not None else self._policies.get("*")

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _breaker_transition(
        self, breaker: CircuitBreaker, old: str, new: str
    ) -> None:
        self.metrics.count(
            "faults.breaker_transition", f"{breaker.name}:{new}"
        )
        self.bus.publish(
            _resource_event(
                breaker.name,
                f"breaker_{new}",
                {"previous": old, "state": new,
                 "failures": breaker.consecutive_failures},
            )
        )

    # -- invocation -------------------------------------------------------

    def invoke(self, resource_name: str, operation: str, **args: Any) -> Any:
        fast = self._unguarded.get(resource_name)
        if fast is not None:
            # Confirmed unprotected on a previous invocation and no
            # protection change since: skip the policy/breaker lookups.
            # The journal check stays in the fast path — ``active``
            # toggles per entry, so it cannot be cached — but it is one
            # attribute read when no journal is installed, keeping the
            # undurable hot path effectively unchanged.
            self.invocations += 1
            journal = self.effect_journal
            if journal is not None and journal.active:
                return journal.around_invoke(
                    f"{resource_name}.{operation}",
                    fast.invoke,
                    operation,
                    args,
                )
            return fast.invoke(operation, **args)
        self.invocations += 1
        resource = self.require(resource_name)
        policy = self.fault_policy(resource_name)
        breaker = self._breakers.get(resource_name)
        if policy is None and breaker is None:
            self._unguarded[resource_name] = resource
            journal = self.effect_journal
            if journal is not None and journal.active:
                return journal.around_invoke(
                    f"{resource_name}.{operation}",
                    resource.invoke,
                    operation,
                    args,
                )
            # Unprotected fast path: semantics and overhead unchanged.
            return resource.invoke(operation, **args)
        outcome = self._guarded(resource, operation, args, policy, breaker)
        if outcome.ok:
            return outcome.value
        if outcome.status == InvocationOutcome.REJECTED:
            raise BreakerOpenError(str(outcome.error)) from outcome.error
        assert outcome.error is not None
        raise outcome.error

    def invoke_guarded(
        self, resource_name: str, operation: str, **args: Any
    ) -> InvocationOutcome:
        """Like :meth:`invoke`, but degrade gracefully: failures come
        back as a typed :class:`InvocationOutcome`, never an exception."""
        self.invocations += 1
        label = f"{resource_name}.{operation}"
        resource = self._resources.get(resource_name)
        if resource is None:
            return InvocationOutcome(
                status=InvocationOutcome.FAILED, label=label,
                error=ResourceError(f"no resource {resource_name!r}"),
            )
        return self._guarded(
            resource, operation, args,
            self.fault_policy(resource_name),
            self._breakers.get(resource_name),
        )

    def _guarded(
        self,
        resource: Resource,
        operation: str,
        args: Mapping[str, Any],
        policy: RetryPolicy | None,
        breaker: CircuitBreaker | None,
    ) -> InvocationOutcome:
        label = f"{resource.name}.{operation}"

        def on_retry(attempt: int, exc: BaseException, delay: float) -> None:
            self.retries += 1
            self.metrics.count("faults.retries", resource.name)

        # Each *attempt* passes through the journal separately, so on
        # replay the recorded attempt outcomes line up one-to-one with
        # the retry loop's calls (policy decisions are deterministic:
        # seeded rng, breaker state restored from the snapshot).
        journal = self.effect_journal
        if journal is not None and journal.active:
            attempt_call: Callable[[], Any] = lambda: journal.around_invoke(
                label, resource.invoke, operation, args
            )
        else:
            attempt_call = lambda: resource.invoke(operation, **args)

        outcome = call_guarded(
            attempt_call,
            policy=policy or PASSTHROUGH_POLICY,
            breaker=breaker,
            clock=self.clock,
            rng=self._rng,
            label=label,
            on_retry=on_retry,
        )
        self.metrics.count(f"faults.outcome.{outcome.status}", resource.name)
        if outcome.status == InvocationOutcome.REJECTED:
            self.metrics.count("faults.rejected", resource.name)
        return outcome

    def by_kind(self, kind: str) -> list[Resource]:
        return [r for r in self._resources.values() if r.kind == kind]

    def inventory(self) -> list[dict[str, Any]]:
        return [r.describe() for r in self._resources.values()]

    def __contains__(self, name: object) -> bool:
        return name in self._resources

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def __len__(self) -> int:
        return len(self._resources)


#: replayed error outcomes re-raise with their original broker types so
#: retry policies (``retry_on=TransientResourceError``) and API error
#: handling behave identically during WAL replay.
_REPLAY_ERROR_TYPES: dict[str, type[Exception]] = {
    "ResourceError": ResourceError,
    "TransientResourceError": TransientResourceError,
    "BreakerOpenError": BreakerOpenError,
}


def _replay_error(type_name: str, message: str) -> Exception:
    cls = _REPLAY_ERROR_TYPES.get(type_name)
    if cls is not None:
        return cls(message)
    from repro.runtime.faults import ReplayedFault

    return ReplayedFault(f"{type_name}: {message}")


def _resource_event(resource_name: str, topic: str, payload: dict[str, Any]):
    """Build a ``resource.<name>.<topic>`` event from a *fresh* payload.

    Takes ownership of ``payload`` (every caller builds it per event —
    ``Resource.notify`` kwargs, breaker-transition literals), so the
    hot path skips a defensive copy and the dataclass constructor
    (see :func:`~repro.runtime.events.mint_event`).
    """
    payload.setdefault("resource", resource_name)
    return mint_event(
        f"resource.{resource_name}.{topic}", payload, resource_name
    )
