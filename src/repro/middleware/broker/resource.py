"""Resource management: the Broker's interface to the world below.

Paper Sec. V-A: the Broker metamodel defines a resource manager "to
interface with the underlying resources", and the layer is
"responsible for interacting with the underlying resources and
services for the actual execution of commands, considering systems
issues such as heterogeneity and concurrency" (Sec. III).

A :class:`Resource` is the uniform adapter contract every underlying
service implements (simulated network services, plant controllers,
smart objects, sensing devices).  :class:`ResourceManager` hides
heterogeneity behind name-based dispatch and forwards resource events
upward.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.runtime.events import EventBus

__all__ = ["ResourceError", "Resource", "CallableResource", "ResourceManager"]


class ResourceError(Exception):
    """Raised on unknown resources/operations or failed invocations."""


class Resource:
    """Adapter contract for an underlying resource or service.

    Subclasses implement :meth:`invoke`; they emit asynchronous
    occurrences by calling :meth:`notify` (wired to the Broker's bus by
    the resource manager).
    """

    def __init__(self, name: str, *, kind: str = "generic") -> None:
        self.name = name
        self.kind = kind
        self._notify: Callable[[str, dict[str, Any]], None] | None = None

    def invoke(self, operation: str, **args: Any) -> Any:
        raise NotImplementedError

    def operations(self) -> list[str]:
        """Advertised operations (diagnostics; empty = unadvertised)."""
        return []

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "operations": self.operations()}

    # -- event plumbing ---------------------------------------------------

    def attach(self, notify: Callable[[str, dict[str, Any]], None]) -> None:
        self._notify = notify

    def detach(self) -> None:
        self._notify = None

    def notify(self, topic: str, **payload: Any) -> None:
        if self._notify is not None:
            self._notify(topic, payload)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} kind={self.kind!r}>"


class CallableResource(Resource):
    """A resource backed by a mapping of operation name -> callable."""

    def __init__(
        self,
        name: str,
        operations: Mapping[str, Callable[..., Any]],
        *,
        kind: str = "callable",
    ) -> None:
        super().__init__(name, kind=kind)
        self._operations = dict(operations)

    def invoke(self, operation: str, **args: Any) -> Any:
        fn = self._operations.get(operation)
        if fn is None:
            raise ResourceError(
                f"resource {self.name!r} has no operation {operation!r}"
            )
        return fn(**args)

    def operations(self) -> list[str]:
        return sorted(self._operations)


class ResourceManager:
    """Registers resources and dispatches operations onto them.

    Resource events surface on the Broker's bus under
    ``resource.<resource-name>.<topic>``.
    """

    def __init__(self, bus: EventBus, *, name: str = "resources") -> None:
        self.bus = bus
        self.name = name
        self._resources: dict[str, Resource] = {}
        self.invocations = 0

    def register(self, resource: Resource) -> Resource:
        if resource.name in self._resources:
            raise ResourceError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource
        resource.attach(
            lambda topic, payload, _name=resource.name: self.bus.publish(
                _resource_event(_name, topic, payload)
            )
        )
        return resource

    def deregister(self, name: str) -> Resource:
        resource = self._resources.pop(name, None)
        if resource is None:
            raise ResourceError(f"no resource {name!r}")
        resource.detach()
        return resource

    def get(self, name: str) -> Resource | None:
        return self._resources.get(name)

    def require(self, name: str) -> Resource:
        resource = self._resources.get(name)
        if resource is None:
            raise ResourceError(f"no resource {name!r}")
        return resource

    def invoke(self, resource_name: str, operation: str, **args: Any) -> Any:
        self.invocations += 1
        return self.require(resource_name).invoke(operation, **args)

    def by_kind(self, kind: str) -> list[Resource]:
        return [r for r in self._resources.values() if r.kind == kind]

    def inventory(self) -> list[dict[str, Any]]:
        return [r.describe() for r in self._resources.values()]

    def __contains__(self, name: object) -> bool:
        return name in self._resources

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def __len__(self) -> int:
        return len(self._resources)


def _resource_event(resource_name: str, topic: str, payload: dict[str, Any]):
    from repro.runtime.events import Event

    merged = dict(payload)
    merged.setdefault("resource", resource_name)
    return Event(
        topic=f"resource.{resource_name}.{topic}",
        payload=merged,
        origin=resource_name,
    )
