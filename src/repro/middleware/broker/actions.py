"""Broker actions and handlers.

Paper Sec. V-A: "Calls and events are handled by selecting and
dispatching appropriate actions. ... the middleware engineer also
needs to specify the actions to be executed in response to calls and
events received by the Broker layer.  These are specified in the model
as instances of Action and Handler, respectively, which define the
mechanisms to select the appropriate action in each case."

* :class:`BrokerAction` — behaviour bound to an API pattern.  Either a
  Python callable or a declarative list of resource invocations (the
  model-defined form).
* :class:`BrokerActionTable` — the call Handler: selects the action for
  an API call (pattern + guard + priority).
* :class:`EventBinding` — the event Handler: maps resource-event topics
  to actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.middleware.broker.resource import ResourceManager
from repro.middleware.broker.state import StateManager
from repro.modeling.expr import compile_expression
from repro.runtime.topics import TopicMatcher

__all__ = [
    "BrokerActionError",
    "ActionContext",
    "BrokerAction",
    "BrokerActionTable",
    "EventBinding",
    "EventBindingTable",
]


class BrokerActionError(Exception):
    """Raised when no action matches or an action is malformed."""


@dataclass
class ActionContext:
    """Everything a broker action may touch."""

    resources: ResourceManager
    state: StateManager
    args: dict[str, Any] = field(default_factory=dict)

    def env(self) -> dict[str, Any]:
        env: dict[str, Any] = dict(self.state.as_dict())
        env.update(self.args)
        env["state"] = self.state.as_dict()
        return env


def _guard_evaluator(source: str) -> Callable[[Mapping[str, Any]], Any]:
    """Compiled guard evaluator; a syntactically broken guard behaves
    like the reference path (evaluate raised -> guard never holds)."""
    try:
        return compile_expression(source).evaluate_fast
    except Exception:  # noqa: BLE001 - malformed guard = never matches
        def broken(env: Mapping[str, Any]) -> Any:
            raise BrokerActionError(f"malformed guard {source!r}")

        return broken


class _CompiledStep:
    """One declarative step pre-parsed into bound evaluators, so
    ``BrokerAction.run`` stops re-reading the step mapping (and
    re-resolving its expression strings) on every dispatch."""

    __slots__ = (
        "kind", "state_key", "expr_fn", "resource", "resource_fn",
        "operation", "args", "args_fns", "result", "state", "state_fn",
    )

    def __init__(self, action_name: str, step: Mapping[str, Any]) -> None:
        if "set" in step:
            self.kind = "set"
            self.state_key = str(step["set"])
            self.expr_fn = compile_expression(str(step["expr"])).evaluate_fast
            return
        if "compute" in step:
            self.kind = "compute"
            self.expr_fn = compile_expression(str(step["compute"])).evaluate_fast
            self.result = step.get("result")
            return
        self.kind = "invoke"
        self.resource = step.get("resource")
        self.resource_fn = (
            compile_expression(str(step["resource_expr"])).evaluate_fast
            if self.resource is None and "resource_expr" in step
            else None
        )
        self.operation = step.get("operation")
        if (self.resource is None and self.resource_fn is None) or not self.operation:
            raise BrokerActionError(
                f"action {action_name!r}: step needs resource+operation "
                f"or set+expr: {dict(step)!r}"
            )
        self.args = dict(step.get("args", {}))
        self.args_fns = [
            (key, compile_expression(str(expr)).evaluate_fast)
            for key, expr in dict(step.get("args_expr", {})).items()
        ]
        self.result = step.get("result")
        self.state = step.get("state")
        self.state_fn = (
            compile_expression(str(step["state_expr"])).evaluate_fast
            if self.state is None and "state_expr" in step
            else None
        )


@dataclass
class BrokerAction:
    """One action selectable by the Broker's handlers.

    Declarative steps have the form::

        {"resource": "net0",          # or "resource_expr": "device_id"
         "operation": "open_session",
         "args": {...}, "args_expr": {...},
         "result": "session",          # store into step env
         "state": "last_session"}      # store into the state manager

    A step may instead update state only: ``{"set": "key",
    "expr": "..."} ``.

    The topic predicate, the guard, and declarative steps are compiled
    once per action (the step plan is re-derived if the
    ``implementation`` list is *replaced*; in-place mutation of a live
    step list is not supported).
    """

    name: str
    pattern: str
    implementation: (
        Callable[[ActionContext], Any] | list[Mapping[str, Any]]
    )
    guard: str | None = None
    priority: int = 0

    def __post_init__(self) -> None:
        self._topic_match = TopicMatcher.compile(self.pattern)
        self._guard_fn = (
            _guard_evaluator(str(self.guard)) if self.guard is not None else None
        )
        self._plan: list[_CompiledStep] | None = None
        self._plan_source: Any = None

    def matches(self, api: str, env: Mapping[str, Any]) -> bool:
        if not self._topic_match(api):
            return False
        if self._guard_fn is not None:
            try:
                return bool(self._guard_fn(dict(env)))
            except Exception:  # noqa: BLE001 - unmatched guard = no match
                return False
        return True

    def _steps(self) -> list[_CompiledStep]:
        steps = self.implementation
        if self._plan is None or self._plan_source is not steps:
            self._plan = [_CompiledStep(self.name, step) for step in steps]
            self._plan_source = steps
        return self._plan

    def run(self, context: ActionContext) -> Any:
        if callable(self.implementation):
            return self.implementation(context)
        env = context.env()
        value: Any = None
        for step in self._steps():
            kind = step.kind
            if kind == "set":
                context.state.set(step.state_key, step.expr_fn(env))
                env = context.env()
                continue
            if kind == "compute":
                # Pure transformation step: evaluate an expression over
                # the step environment; becomes the action value.
                value = step.expr_fn(env)
                if step.result:
                    env[step.result] = value
                continue
            resource_name = (
                step.resource
                if step.resource is not None
                else str(step.resource_fn(env))
            )
            if step.args_fns:
                call_args = dict(step.args)
                for key, fn in step.args_fns:
                    call_args[key] = fn(env)
            else:
                call_args = step.args
            value = context.resources.invoke(
                resource_name, step.operation, **call_args
            )
            if step.result:
                env[step.result] = value
            state_key = (
                step.state if step.state is not None
                else (step.state_fn(env) if step.state_fn is not None else None)
            )
            if state_key:
                context.state.set(str(state_key), value)
                env = context.env()
        return value


class BrokerActionTable:
    """Selects and runs the best action for an API call."""

    def __init__(self, resources: ResourceManager, state: StateManager) -> None:
        self.resources = resources
        self.state = state
        self._actions: list[BrokerAction] = []
        #: exact patterns resolve with one dict hit; only wildcard
        #: patterns are scanned per call.  Registration order is kept
        #: alongside each action so priority ties still break the same
        #: way they did with the stable full-list sort.
        self._exact: dict[str, list[tuple[int, BrokerAction]]] = {}
        self._wildcards: list[tuple[int, BrokerAction]] = []
        self.dispatched = 0

    def register(self, action: BrokerAction) -> BrokerAction:
        if any(a.name == action.name for a in self._actions):
            raise BrokerActionError(f"duplicate broker action {action.name!r}")
        order = len(self._actions)
        self._actions.append(action)
        if TopicMatcher.is_wildcard(action.pattern):
            self._wildcards.append((order, action))
        else:
            self._exact.setdefault(action.pattern, []).append((order, action))
        return action

    def add(
        self, name: str, pattern: str, implementation: Any, **kwargs: Any
    ) -> BrokerAction:
        return self.register(
            BrokerAction(name=name, pattern=pattern, implementation=implementation, **kwargs)
        )

    def select(self, api: str, args: Mapping[str, Any]) -> BrokerAction | None:
        candidates = list(self._exact.get(api, ()))
        for entry in self._wildcards:
            if entry[1]._topic_match(api):
                candidates.append(entry)
        if not candidates:
            return None
        # The guard environment (a state-manager snapshot) is only
        # built when a surviving candidate actually has a guard.
        env: dict[str, Any] | None = None
        best: tuple[int, int, BrokerAction] | None = None
        for order, action in candidates:
            if action._guard_fn is not None:
                if env is None:
                    env = dict(self.state.as_dict())
                    env.update(args)
                if not action.matches(api, env):
                    continue
            key = (-action.priority, order)
            if best is None or key < (best[0], best[1]):
                best = (key[0], key[1], action)
        return best[2] if best is not None else None

    def dispatch(self, api: str, **args: Any) -> Any:
        action = self.select(api, args)
        if action is None:
            raise BrokerActionError(f"no broker action for API {api!r}")
        self.dispatched += 1
        return action.run(
            ActionContext(resources=self.resources, state=self.state, args=dict(args))
        )

    @property
    def action_count(self) -> int:
        return len(self._actions)

    def known_apis(self) -> list[str]:
        return sorted(a.pattern for a in self._actions)


@dataclass
class EventBinding:
    """Routes resource events matching ``topic_pattern`` to an action."""

    topic_pattern: str
    action: BrokerAction
    guard: str | None = None

    def __post_init__(self) -> None:
        self._topic_match = TopicMatcher.compile(self.topic_pattern)
        self._guard_fn = (
            _guard_evaluator(str(self.guard)) if self.guard is not None else None
        )

    def matches(self, topic: str, payload: Mapping[str, Any]) -> bool:
        if not self._topic_match(topic):
            return False
        if self._guard_fn is not None:
            try:
                return bool(self._guard_fn(dict(payload)))
            except Exception:  # noqa: BLE001
                return False
        return True


class EventBindingTable:
    """The Broker's event Handler: runs actions for resource events."""

    def __init__(self, resources: ResourceManager, state: StateManager) -> None:
        self.resources = resources
        self.state = state
        self._bindings: list[EventBinding] = []
        #: per-topic route cache (topic -> bindings whose *pattern*
        #: matches; guards stay payload-dependent and are evaluated per
        #: dispatch).  Every resource event funnels through here, so
        #: the repeated pattern scan collapses to one dict hit.
        #: Invalidated on bind(); bounded against topic cardinality.
        self._routes: dict[str, tuple[EventBinding, ...]] = {}
        self.handled = 0

    def bind(
        self,
        topic_pattern: str,
        action: BrokerAction,
        *,
        guard: str | None = None,
    ) -> EventBinding:
        binding = EventBinding(topic_pattern=topic_pattern, action=action, guard=guard)
        self._bindings.append(binding)
        self._routes = {}
        return binding

    def routes(self, topic: str) -> tuple[EventBinding, ...]:
        """The bindings whose topic pattern matches ``topic``, cached."""
        cached = self._routes.get(topic)
        if cached is None:
            cached = tuple(
                binding for binding in self._bindings
                if binding._topic_match(topic)
            )
            if len(self._routes) >= 1024:
                self._routes = {}
            self._routes[topic] = cached
        return cached

    def dispatch(self, topic: str, payload: Mapping[str, Any]) -> int:
        """Run all matching bindings; returns how many fired."""
        fired = 0
        for binding in self.routes(topic):
            if binding.matches(topic, payload):
                args = dict(payload)
                args["topic"] = topic
                binding.action.run(
                    ActionContext(
                        resources=self.resources, state=self.state, args=args
                    )
                )
                fired += 1
        if fired:
            self.handled += 1
        return fired

    @property
    def binding_count(self) -> int:
        return len(self._bindings)
