"""Broker actions and handlers.

Paper Sec. V-A: "Calls and events are handled by selecting and
dispatching appropriate actions. ... the middleware engineer also
needs to specify the actions to be executed in response to calls and
events received by the Broker layer.  These are specified in the model
as instances of Action and Handler, respectively, which define the
mechanisms to select the appropriate action in each case."

* :class:`BrokerAction` — behaviour bound to an API pattern.  Either a
  Python callable or a declarative list of resource invocations (the
  model-defined form).
* :class:`BrokerActionTable` — the call Handler: selects the action for
  an API call (pattern + guard + priority).
* :class:`EventBinding` — the event Handler: maps resource-event topics
  to actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.middleware.broker.resource import ResourceManager
from repro.middleware.broker.state import StateManager
from repro.modeling.expr import evaluate
from repro.runtime.topics import TopicMatcher

__all__ = [
    "BrokerActionError",
    "ActionContext",
    "BrokerAction",
    "BrokerActionTable",
    "EventBinding",
    "EventBindingTable",
]


class BrokerActionError(Exception):
    """Raised when no action matches or an action is malformed."""


@dataclass
class ActionContext:
    """Everything a broker action may touch."""

    resources: ResourceManager
    state: StateManager
    args: dict[str, Any] = field(default_factory=dict)

    def env(self) -> dict[str, Any]:
        env: dict[str, Any] = dict(self.state.as_dict())
        env.update(self.args)
        env["state"] = self.state.as_dict()
        return env


@dataclass
class BrokerAction:
    """One action selectable by the Broker's handlers.

    Declarative steps have the form::

        {"resource": "net0",          # or "resource_expr": "device_id"
         "operation": "open_session",
         "args": {...}, "args_expr": {...},
         "result": "session",          # store into step env
         "state": "last_session"}      # store into the state manager

    A step may instead update state only: ``{"set": "key",
    "expr": "..."} ``.
    """

    name: str
    pattern: str
    implementation: (
        Callable[[ActionContext], Any] | list[Mapping[str, Any]]
    )
    guard: str | None = None
    priority: int = 0

    def matches(self, api: str, env: Mapping[str, Any]) -> bool:
        if not TopicMatcher.matches(self.pattern, api):
            return False
        if self.guard is not None:
            try:
                return bool(evaluate(self.guard, dict(env)))
            except Exception:  # noqa: BLE001 - unmatched guard = no match
                return False
        return True

    def run(self, context: ActionContext) -> Any:
        if callable(self.implementation):
            return self.implementation(context)
        env = context.env()
        value: Any = None
        for step in self.implementation:
            if "set" in step:
                context.state.set(
                    str(step["set"]), evaluate(str(step["expr"]), env)
                )
                env = context.env()
                continue
            if "compute" in step:
                # Pure transformation step: evaluate an expression over
                # the step environment; becomes the action value.
                value = evaluate(str(step["compute"]), env)
                store = step.get("result")
                if store:
                    env[store] = value
                continue
            resource_name = step.get("resource")
            if resource_name is None and "resource_expr" in step:
                resource_name = str(evaluate(str(step["resource_expr"]), env))
            operation = step.get("operation")
            if not resource_name or not operation:
                raise BrokerActionError(
                    f"action {self.name!r}: step needs resource+operation "
                    f"or set+expr: {dict(step)!r}"
                )
            call_args = dict(step.get("args", {}))
            for key, expr in dict(step.get("args_expr", {})).items():
                call_args[key] = evaluate(str(expr), env)
            value = context.resources.invoke(resource_name, operation, **call_args)
            store = step.get("result")
            if store:
                env[store] = value
            state_key = step.get("state")
            if state_key is None and "state_expr" in step:
                state_key = evaluate(str(step["state_expr"]), env)
            if state_key:
                context.state.set(str(state_key), value)
                env = context.env()
        return value


class BrokerActionTable:
    """Selects and runs the best action for an API call."""

    def __init__(self, resources: ResourceManager, state: StateManager) -> None:
        self.resources = resources
        self.state = state
        self._actions: list[BrokerAction] = []
        self.dispatched = 0

    def register(self, action: BrokerAction) -> BrokerAction:
        if any(a.name == action.name for a in self._actions):
            raise BrokerActionError(f"duplicate broker action {action.name!r}")
        self._actions.append(action)
        return action

    def add(
        self, name: str, pattern: str, implementation: Any, **kwargs: Any
    ) -> BrokerAction:
        return self.register(
            BrokerAction(name=name, pattern=pattern, implementation=implementation, **kwargs)
        )

    def select(self, api: str, args: Mapping[str, Any]) -> BrokerAction | None:
        env = dict(self.state.as_dict())
        env.update(args)
        matching = [a for a in self._actions if a.matches(api, env)]
        if not matching:
            return None
        matching.sort(key=lambda a: -a.priority)
        return matching[0]

    def dispatch(self, api: str, **args: Any) -> Any:
        action = self.select(api, args)
        if action is None:
            raise BrokerActionError(f"no broker action for API {api!r}")
        self.dispatched += 1
        return action.run(
            ActionContext(resources=self.resources, state=self.state, args=dict(args))
        )

    @property
    def action_count(self) -> int:
        return len(self._actions)

    def known_apis(self) -> list[str]:
        return sorted(a.pattern for a in self._actions)


@dataclass
class EventBinding:
    """Routes resource events matching ``topic_pattern`` to an action."""

    topic_pattern: str
    action: BrokerAction
    guard: str | None = None

    def matches(self, topic: str, payload: Mapping[str, Any]) -> bool:
        if not TopicMatcher.matches(self.topic_pattern, topic):
            return False
        if self.guard is not None:
            try:
                return bool(evaluate(self.guard, dict(payload)))
            except Exception:  # noqa: BLE001
                return False
        return True


class EventBindingTable:
    """The Broker's event Handler: runs actions for resource events."""

    def __init__(self, resources: ResourceManager, state: StateManager) -> None:
        self.resources = resources
        self.state = state
        self._bindings: list[EventBinding] = []
        self.handled = 0

    def bind(
        self,
        topic_pattern: str,
        action: BrokerAction,
        *,
        guard: str | None = None,
    ) -> EventBinding:
        binding = EventBinding(topic_pattern=topic_pattern, action=action, guard=guard)
        self._bindings.append(binding)
        return binding

    def dispatch(self, topic: str, payload: Mapping[str, Any]) -> int:
        """Run all matching bindings; returns how many fired."""
        fired = 0
        for binding in self._bindings:
            if binding.matches(topic, payload):
                args = dict(payload)
                args["topic"] = topic
                binding.action.run(
                    ActionContext(
                        resources=self.resources, state=self.state, args=args
                    )
                )
                fired += 1
        if fired:
            self.handled += 1
        return fired

    @property
    def binding_count(self) -> int:
        return len(self._bindings)
