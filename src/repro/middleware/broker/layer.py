"""The Broker layer façade (main Manager).

Paper Sec. V-A / Fig. 6: "the main Manager ... is responsible for
exposing the layer's interface and handling calls received from the
upper layer and events received from the underlying resources.  Calls
and events are handled by selecting and dispatching appropriate
actions."

:class:`BrokerLayer` composes the specialized managers — state, policy,
autonomic and resource — and exposes ``call_api`` (the
:class:`~repro.middleware.controller.stackmachine.BrokerPort` consumed
by the Controller) plus upward event forwarding.
"""

from __future__ import annotations

from typing import Any

from repro.middleware.broker.actions import (
    BrokerAction,
    BrokerActionError,
    BrokerActionTable,
    EventBindingTable,
)
from repro.middleware.broker.autonomic import AutonomicManager, ChangePlan, Symptom
from repro.middleware.broker.resource import (
    BreakerOpenError,
    Resource,
    ResourceManager,
)
from repro.runtime.faults import CircuitBreaker, InvocationOutcome, RetryPolicy
from repro.middleware.broker.state import StateManager
from repro.middleware.controller.policy import ContextStore, PolicyEngine
from repro.runtime.component import Component
from repro.runtime.events import Signal

__all__ = ["BrokerLayer"]


class BrokerLayer(Component):
    """Main manager of the Broker layer.

    Manager sub-structure follows the Broker metamodel (Fig. 6); any
    manager can be disabled through configuration metadata, which is
    how leaner configurations are modeled (the paper argues leaner
    layer configurations offset the model-based overhead, Sec. VII-A):

    * ``enable_autonomic`` (default true)
    * ``enable_policies`` (default true)
    * ``enable_state_snapshots`` (default true)
    """

    def __init__(self, name: str = "broker", **kwargs: Any) -> None:
        super().__init__(name, **kwargs)
        self.state = StateManager(name=f"{name}.state")
        self.resources = ResourceManager(
            self.bus,
            name=f"{name}.resources",
            clock=self.clock,
            metrics=self.metrics,
        )
        self.calls = BrokerActionTable(self.resources, self.state)
        self.events = EventBindingTable(self.resources, self.state)
        self.policies = PolicyEngine(ContextStore())
        self.autonomic = AutonomicManager(
            self.resources, self.state, now=lambda: self.clock.now()
        )
        self.api_calls = 0
        self.events_forwarded = 0
        self._subscription = None
        #: the upward port, resolved once per running window (on_start).
        self._upward: Any = None
        #: actions installed while running (reflection, autonomic
        #: plans) — the loader installs model-defined actions before
        #: start, so anything arriving later must travel with the
        #: session snapshot (PR 5).
        self._dynamic_actions: list[BrokerAction] = []
        #: Tier-3 generated call table (exact API -> fn) or None;
        #: dropped — all calls fall back to table dispatch — whenever
        #: an action is installed at runtime.
        self._aot_calls: dict[str, Any] | None = None
        #: pre-resolved per-label instruments for the two per-signal
        #: counters, valid for single-writer registries only (see
        #: MetricsRegistry.counter); the registry is fixed at
        #: construction, so no invalidation is needed.
        self._api_counters: dict[str, Any] = {}
        self._fwd_counters: dict[str, Any] = {}

    # -- lifecycle -------------------------------------------------------

    def on_configure(self) -> None:
        self.autonomic.enabled = _as_bool(self.metadata.get("enable_autonomic", True))
        self._policies_enabled = _as_bool(
            self.metadata.get("enable_policies", True)
        )
        self._snapshots_enabled = _as_bool(
            self.metadata.get("enable_state_snapshots", True)
        )

    def on_start(self) -> None:
        # Receive events from every registered resource — unless this
        # configuration has nobody to deliver them to (lean configs
        # with no bindings, no autonomic manager, and no upper layer
        # skip the whole event path).
        needs_events = (
            self.events.binding_count > 0
            or self.autonomic.enabled
            or self.port_or_none("upward") is not None
        )
        if needs_events:
            self._subscription = self.bus.subscribe(
                "resource.*", self._on_resource_event
            )
        # Ports cannot be rewired while running (Component.wire), so
        # the upward target is fixed for the whole running window.
        self._upward = self.port_or_none("upward")
        if self.autonomic.enabled:
            self.state.watch(lambda *_: self.autonomic.observe_state())

    def on_stop(self) -> None:
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        self._upward = None

    # -- the layer interface (BrokerPort) -------------------------------------

    def call_api(self, api: str, **args: Any) -> Any:
        """Handle a call from the Controller layer."""
        self.require_running()
        aot = self._aot_calls
        if aot is not None and "_transactional" not in args:
            # Tier-3 fast path: a generated per-API function with the
            # exact dispatch/step semantics of the action table, minus
            # per-call env dict construction.  Documented tier property:
            # the per-call latency histogram sample is skipped (the
            # call counter still ticks).  Transactional calls take the
            # slow path for its snapshot/rollback bracket.
            fn = aot.get(api)
            if fn is not None:
                self.api_calls += 1
                metrics = self.metrics
                if metrics.enabled:
                    if metrics.thread_safe:
                        metrics.count("broker.call_api", api)
                    else:
                        counter = self._api_counters.get(api)
                        if counter is None:
                            counter = self._api_counters[api] = (
                                metrics.live_counter("broker.call_api", api)
                            )
                        counter.value += 1
                self.calls.dispatched += 1
                return fn(self.resources, self.state, self.state._values, args)
        self.api_calls += 1
        self.metrics.count("broker.call_api", api)
        snapshot_taken = False
        if self._snapshots_enabled and args.pop("_transactional", False):
            self.state.snapshot()
            snapshot_taken = True
        try:
            with self.metrics.time("broker.call_api", api, clock=self.clock):
                result = self.calls.dispatch(api, **args)
        except Exception:
            # Any failure inside a transactional call rolls state back
            # (resource faults included, not just dispatch errors).
            if snapshot_taken:
                self.state.restore()
            raise
        if snapshot_taken:
            self.state.drop_snapshot()
        return result

    def call_api_guarded(self, api: str, **args: Any) -> InvocationOutcome:
        """Graceful-degradation variant of :meth:`call_api`: failures
        (breaker rejections included) come back as a typed outcome
        instead of an exception — the contract heavy-traffic callers
        use so one misbehaving resource cannot crash the caller."""
        try:
            value = self.call_api(api, **args)
        except BreakerOpenError as exc:
            return InvocationOutcome(
                status=InvocationOutcome.REJECTED, label=api, error=exc
            )
        except Exception as exc:  # noqa: BLE001 - typed-outcome contract
            return InvocationOutcome(
                status=InvocationOutcome.FAILED, label=api, error=exc
            )
        return InvocationOutcome(
            status=InvocationOutcome.OK, label=api, value=value, attempts=1
        )

    # -- installation API (used by the model loader and DSK modules) -----------

    def install_resource(self, resource: Resource) -> Resource:
        return self.resources.register(resource)

    def install_action(self, action: BrokerAction) -> BrokerAction:
        registered = self.calls.register(action)
        if self.running:
            self._dynamic_actions.append(registered)
        # The new action may displace a generated winner (priority,
        # wildcard overlap): drop the Tier-3 table; the synthesis-cycle
        # refresh hook regenerates it from the updated action list.
        self._aot_calls = None
        return registered

    def install_aot(self, calls: dict[str, Any] | None) -> None:
        """Install (or with ``None`` remove) a validated Tier-3 call
        table (``AotProgram.broker_calls``)."""
        self._aot_calls = dict(calls) if calls is not None else None

    def install_event_binding(
        self, topic_pattern: str, action: BrokerAction, *, guard: str | None = None
    ) -> None:
        self.events.bind(topic_pattern, action, guard=guard)

    def install_fault_policy(
        self,
        resource_name: str,
        policy: RetryPolicy | None = None,
        *,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_trials: int = 1,
    ) -> CircuitBreaker:
        """Protect a resource with a retry policy + circuit breaker;
        breaker transitions surface as ``resource.<name>.breaker_*``
        events the autonomic manager can consume as symptoms."""
        return self.resources.protect(
            resource_name,
            policy,
            failure_threshold=failure_threshold,
            recovery_time=recovery_time,
            half_open_trials=half_open_trials,
        )

    def install_symptom(self, symptom: Symptom) -> Symptom:
        return self.autonomic.add_symptom(symptom)

    def install_plan(self, plan: ChangePlan) -> ChangePlan:
        return self.autonomic.add_plan(plan)

    # -- event path -----------------------------------------------------------------

    def _on_resource_event(self, signal: Signal) -> None:
        # 1. layer-local event bindings (model-defined reactions) and
        # 2. autonomic monitoring — both get a defensive payload copy,
        #    built only when at least one of them will look at it (the
        #    common resource event matches no binding pattern and the
        #    autonomic manager is disabled; the copy would be pure
        #    overhead).  The binding table's per-topic route cache
        #    makes the "any binding for this topic?" probe one dict hit.
        events = self.events
        if (events._bindings and events.routes(signal.topic)) or (
            self.autonomic.enabled
        ):
            payload = dict(signal.payload)
            events.dispatch(signal.topic, payload)
            self.autonomic.observe_event(signal.topic, payload)
        # 3. forward upward for the Controller's event handler
        self.events_forwarded += 1
        metrics = self.metrics
        if metrics.enabled:
            if metrics.thread_safe:
                metrics.count("broker.events_forwarded", signal.topic)
            else:
                counter = self._fwd_counters.get(signal.topic)
                if counter is None:
                    counter = self._fwd_counters[signal.topic] = (
                        metrics.live_counter("broker.events_forwarded", signal.topic)
                    )
                counter.value += 1
        upward = self._upward
        if upward is not None:
            upward.receive_signal(signal)

    # -- externalization (PR 5) -------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture the broker's mutable surface for migration/recovery.

        Covered: the state manager (values + snapshot stack + model
        slot), per-resource circuit-breaker state, resource/dispatch
        counters, the autonomic manager's history, and *dynamic*
        action-table entries (actions installed after start — e.g. by
        reflection or autonomic plans).  Model-defined actions are
        rebuilt from the session model by the loader and are not
        duplicated here.  A dynamic action with a Python-callable
        implementation cannot travel as data; it is recorded as a named
        marker and must already exist on the restoring side.
        """
        breakers = {}
        for resource in self.resources:
            breaker = self.resources.breaker(resource.name)
            if breaker is not None:
                breakers[resource.name] = breaker.externalize()
        dynamic = []
        for action in self._dynamic_actions:
            entry: dict[str, Any] = {
                "name": action.name,
                "pattern": action.pattern,
                "guard": action.guard,
                "priority": action.priority,
            }
            if callable(action.implementation):
                entry["callable"] = True
            else:
                entry["steps"] = [dict(step) for step in action.implementation]
            dynamic.append(entry)
        return {
            "state": self.state.externalize(),
            "breakers": dict(sorted(breakers.items())),
            "dynamic_actions": dynamic,
            "autonomic": self.autonomic.externalize(),
            "api_calls": self.api_calls,
            "events_forwarded": self.events_forwarded,
            "invocations": self.resources.invocations,
            "retries": self.resources.retries,
            "dispatched": self.calls.dispatched,
        }

    def restore_external(self, doc: dict[str, Any], *, metamodel: Any = None) -> None:
        """Apply a captured document onto this (compatible) layer.

        Quiet restore: state values are written without watcher
        notification so the autonomic manager does not re-evaluate
        symptoms for history that already played out.  Dynamic actions
        whose name already exists in the table are skipped — the loader
        rebuilds reflective additions from the mirrored session model,
        and re-registering would raise a duplicate error.  ``metamodel``
        is only needed when the state manager carried a model slot.
        """
        self.state.restore_external(doc.get("state", {}), metamodel=metamodel)
        for name, breaker_doc in doc.get("breakers", {}).items():
            breaker = self.resources.breaker(name)
            if breaker is not None:
                breaker.restore_external(breaker_doc)
        existing = {action.name for action in self.calls._actions}
        for entry in doc.get("dynamic_actions", []):
            if entry["name"] in existing:
                continue
            if entry.get("callable"):
                raise BrokerActionError(
                    f"dynamic action {entry['name']!r} has a callable "
                    f"implementation and is not installed on the "
                    f"restoring side"
                )
            self.install_action(
                BrokerAction(
                    name=entry["name"],
                    pattern=entry["pattern"],
                    implementation=list(entry.get("steps", [])),
                    guard=entry.get("guard"),
                    priority=int(entry.get("priority", 0)),
                )
            )
        self.autonomic.restore_external(doc.get("autonomic", {}))
        self.api_calls = int(doc.get("api_calls", 0))
        self.events_forwarded = int(doc.get("events_forwarded", 0))
        self.resources.invocations = int(doc.get("invocations", 0))
        self.resources.retries = int(doc.get("retries", 0))
        self.calls.dispatched = int(doc.get("dispatched", 0))

    def stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "api_calls": self.api_calls,
            "actions": self.calls.action_count,
            "resources": len(self.resources),
            "events_forwarded": self.events_forwarded,
            "autonomic_requests": len(self.autonomic.requests_raised),
            "autonomic_plans_executed": self.autonomic.plans_executed,
        }
        if self.resources.retries:
            stats["resource_retries"] = self.resources.retries
        breakers = {
            resource.name: breaker.state
            for resource in self.resources
            if (breaker := self.resources.breaker(resource.name)) is not None
        }
        if breakers:
            stats["breakers"] = breakers
        return stats


def _as_bool(value: Any) -> bool:
    if isinstance(value, str):
        return value.lower() in ("1", "true", "yes", "on")
    return bool(value)
