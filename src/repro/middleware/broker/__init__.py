"""Broker layer: resource interfacing, actions/handlers, state,
policy and autonomic management (paper Sec. V-A, Fig. 6)."""

from repro.middleware.broker.actions import (
    ActionContext,
    BrokerAction,
    BrokerActionError,
    BrokerActionTable,
    EventBinding,
    EventBindingTable,
)
from repro.middleware.broker.autonomic import (
    AutonomicManager,
    ChangePlan,
    ChangeRequest,
    Symptom,
)
from repro.middleware.broker.layer import BrokerLayer
from repro.middleware.broker.resource import (
    CallableResource,
    Resource,
    ResourceError,
    ResourceManager,
)
from repro.middleware.broker.state import StateError, StateManager

__all__ = [
    "BrokerLayer",
    "BrokerAction", "BrokerActionTable", "BrokerActionError", "ActionContext",
    "EventBinding", "EventBindingTable",
    "Resource", "CallableResource", "ResourceManager", "ResourceError",
    "StateManager", "StateError",
    "AutonomicManager", "Symptom", "ChangeRequest", "ChangePlan",
]
