"""State management: the layer's runtime model.

Paper Sec. V-A: the Broker metamodel includes "state management (to
store and manipulate the layer's runtime model)".  The runtime model
has two parts:

* a *variable store* — flat key/value state with snapshot/restore
  (used by actions and the autonomic manager's monitored metrics), and
* an optional *model slot* — an :class:`~repro.modeling.model.Model`
  instance representing the layer's structured runtime model, enabling
  the models@runtime reflection path (Sec. III).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from repro.modeling.meta import Metamodel
from repro.modeling.model import Model
from repro.modeling.serialize import clone_model, model_from_dict, model_to_dict

__all__ = ["StateError", "StateManager"]


class StateError(Exception):
    """Raised on invalid snapshot/restore operations."""


class StateManager:
    """Key/value runtime state with snapshots plus a structured model slot."""

    def __init__(self, *, name: str = "state") -> None:
        self.name = name
        self._values: dict[str, Any] = {}
        self._snapshots: list[dict[str, Any]] = []
        self._model: Model | None = None
        self._watchers: list[Callable[[str, Any, Any], None]] = []

    # -- variable store -----------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def set(self, key: str, value: Any) -> None:
        old = self._values.get(key)
        if key in self._values and old == value:
            return  # no change: watchers stay quiet (loop hygiene)
        self._values[key] = value
        for watcher in list(self._watchers):
            watcher(key, old, value)

    def update(self, values: Mapping[str, Any]) -> None:
        for key, value in values.items():
            self.set(key, value)

    def delete(self, key: str) -> None:
        if key in self._values:
            old = self._values.pop(key)
            for watcher in list(self._watchers):
                watcher(key, old, None)

    def increment(self, key: str, delta: float = 1) -> Any:
        value = self._values.get(key, 0) + delta
        self.set(key, value)
        return value

    def keys(self) -> list[str]:
        return sorted(self._values)

    def watch(self, callback: Callable[[str, Any, Any], None]) -> None:
        self._watchers.append(callback)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    # -- snapshots (failure recovery) ------------------------------------------

    def snapshot(self) -> int:
        """Push a snapshot; returns its index."""
        self._snapshots.append(dict(self._values))
        return len(self._snapshots) - 1

    def restore(self, index: int | None = None) -> None:
        """Restore the given (default: latest) snapshot, popping it and
        any later ones."""
        if not self._snapshots:
            raise StateError(f"state {self.name!r}: no snapshot to restore")
        if index is None:
            index = len(self._snapshots) - 1
        elif isinstance(index, bool) or not isinstance(index, int):
            raise StateError(
                f"state {self.name!r}: snapshot index must be an integer, "
                f"got {index!r}"
            )
        if index < 0:
            raise StateError(
                f"state {self.name!r}: snapshot index {index} is negative "
                f"(indices count up from 0; latest is "
                f"{len(self._snapshots) - 1})"
            )
        if index >= len(self._snapshots):
            raise StateError(
                f"state {self.name!r}: no snapshot {index} "
                f"(only {len(self._snapshots)} on the stack)"
            )
        restored = self._snapshots[index]
        del self._snapshots[index:]
        old = self._values
        self._values = dict(restored)
        for key in set(old) | set(self._values):
            if old.get(key) != self._values.get(key):
                for watcher in list(self._watchers):
                    watcher(key, old.get(key), self._values.get(key))

    def drop_snapshot(self) -> None:
        """Discard the latest snapshot (commit point reached)."""
        if not self._snapshots:
            raise StateError(f"state {self.name!r}: no snapshot to drop")
        self._snapshots.pop()

    @property
    def snapshot_count(self) -> int:
        return len(self._snapshots)

    # -- structured runtime model -------------------------------------------------

    @property
    def runtime_model(self) -> Model | None:
        return self._model

    def install_model(self, model: Model) -> None:
        self._model = model

    def checkpoint_model(self) -> Model:
        """A deep copy of the runtime model (comparator input)."""
        if self._model is None:
            raise StateError(f"state {self.name!r}: no runtime model installed")
        return clone_model(self._model)

    # -- externalization (PR 5) -------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture values, the snapshot stack, and the model slot."""
        doc: dict[str, Any] = {
            "values": {key: self._values[key] for key in sorted(self._values)},
            "snapshots": [
                {key: snap[key] for key in sorted(snap)}
                for snap in self._snapshots
            ],
        }
        doc["model"] = model_to_dict(self._model) if self._model else None
        return doc

    def restore_external(
        self,
        doc: Mapping[str, Any],
        *,
        metamodel: Metamodel | None = None,
    ) -> None:
        """Apply an externalized document.

        Quiet by design: watchers are *not* notified — the effects the
        source session's watchers produced have already happened, and
        replaying them here (e.g. autonomic symptom evaluation) would
        diverge the restored session from the original.

        ``metamodel`` is needed only when the document carries a model
        slot; the model is rebuilt in this manager's own space.
        """
        self._values = dict(doc.get("values", {}))
        self._snapshots = [dict(snap) for snap in doc.get("snapshots", [])]
        model_doc = doc.get("model")
        if model_doc is not None:
            if metamodel is None:
                raise StateError(
                    f"state {self.name!r}: document carries a runtime model "
                    f"but no metamodel was provided to rebuild it"
                )
            self._model = model_from_dict(model_doc, metamodel)

    def __contains__(self, key: object) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return (
            f"StateManager({self.name!r}, keys={len(self._values)}, "
            f"snapshots={len(self._snapshots)})"
        )
