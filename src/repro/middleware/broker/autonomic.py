"""Autonomic management: self-configuration of the Broker layer.

Paper Sec. V-A: "for the Autonomic Manager, different symptoms, change
requests and change plans may be defined to specify the different
situations in which autonomic behavior is triggered and how to handle
each such occurrence."

This is a compact MAPE-K loop over the layer's monitored state:

* :class:`Symptom` — *monitor/analyze*: a condition over state-manager
  metrics (optionally narrowed to an event topic) that, when it becomes
  true, raises a :class:`ChangeRequest`.
* :class:`ChangeRequest` — the analyzed problem, carrying the symptom
  and a snapshot of the triggering context.
* :class:`ChangePlan` — *plan/execute*: a named recipe of broker
  actions / resource invocations executed to handle a class of change
  requests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.middleware.broker.actions import ActionContext, BrokerActionError
from repro.middleware.broker.resource import ResourceManager
from repro.middleware.broker.state import StateManager
from repro.modeling.expr import evaluate
from repro.runtime.topics import TopicMatcher

__all__ = ["Symptom", "ChangeRequest", "ChangePlan", "AutonomicManager"]

_request_seq = itertools.count(1)


@dataclass
class Symptom:
    """A monitored condition that triggers autonomic behaviour.

    ``condition`` is evaluated against the state manager's variables
    merged with the triggering event payload (if any).  ``on_topic``
    restricts evaluation to matching events; a symptom without a topic
    is (re)evaluated on every state change.
    """

    name: str
    condition: str
    request_kind: str
    on_topic: str | None = None
    cooldown: float = 0.0           # seconds between consecutive firings
    _last_fired: float = field(default=float("-inf"), repr=False)

    @classmethod
    def for_breaker(
        cls,
        resource: str,
        *,
        state: str = "open",
        request_kind: str = "resource-outage",
        cooldown: float = 0.0,
    ) -> "Symptom":
        """A symptom firing on circuit-breaker transitions of
        ``resource`` (events published by the resource manager as
        ``resource.<name>.breaker_<state>``) — the bridge from the
        fault layer into the MAPE-K loop."""
        return cls(
            name=f"breaker-{state}:{resource}",
            condition="True",
            request_kind=request_kind,
            on_topic=f"resource.{resource}.breaker_{state}",
            cooldown=cooldown,
        )

    def topic_matches(self, topic: str | None) -> bool:
        if self.on_topic is None:
            return True
        if topic is None:
            return False
        return TopicMatcher.matches(self.on_topic, topic)

    def holds(self, env: Mapping[str, Any]) -> bool:
        try:
            return bool(evaluate(self.condition, dict(env)))
        except Exception:  # noqa: BLE001 - missing metrics = not firing
            return False


@dataclass(frozen=True)
class ChangeRequest:
    """An analyzed problem awaiting a plan."""

    kind: str
    symptom: str
    context: Mapping[str, Any]
    request_id: int = field(default_factory=lambda: next(_request_seq))


@dataclass
class ChangePlan:
    """A recipe handling one kind of change request.

    ``steps`` follow the declarative broker-action step format, or the
    plan may carry a Python callable.
    """

    name: str
    request_kind: str
    steps: list[Mapping[str, Any]] | Callable[[ChangeRequest, ActionContext], Any]
    guard: str | None = None

    def applicable(self, request: ChangeRequest, env: Mapping[str, Any]) -> bool:
        if request.kind != self.request_kind:
            return False
        if self.guard is None:
            return True
        try:
            return bool(evaluate(self.guard, dict(env)))
        except Exception:  # noqa: BLE001
            return False

    def execute(self, request: ChangeRequest, context: ActionContext) -> Any:
        if callable(self.steps):
            return self.steps(request, context)
        from repro.middleware.broker.actions import BrokerAction

        action = BrokerAction(
            name=f"plan:{self.name}", pattern="*", implementation=list(self.steps)
        )
        return action.run(context)


class AutonomicManager:
    """Evaluates symptoms and executes change plans (MAPE-K loop)."""

    def __init__(
        self,
        resources: ResourceManager,
        state: StateManager,
        *,
        now: Callable[[], float] | None = None,
    ) -> None:
        self.resources = resources
        self.state = state
        self._now = now or (lambda: 0.0)
        self._symptoms: list[Symptom] = []
        self._plans: list[ChangePlan] = []
        self.requests_raised: list[ChangeRequest] = []
        self.plans_executed = 0
        self.unplanned_requests: list[ChangeRequest] = []
        self.enabled = True
        #: re-entrancy guard: plans mutate state, which re-triggers
        #: observation; nested evaluation is suppressed.
        self._evaluating = False

    # -- knowledge installation ----------------------------------------------

    def add_symptom(self, symptom: Symptom) -> Symptom:
        self._symptoms.append(symptom)
        return symptom

    def add_plan(self, plan: ChangePlan) -> ChangePlan:
        self._plans.append(plan)
        return plan

    # -- monitor/analyze entry points ------------------------------------------

    def observe_event(self, topic: str, payload: Mapping[str, Any]) -> int:
        """Evaluate topic-scoped symptoms against an event; returns the
        number of change requests raised."""
        if not self.enabled or self._evaluating:
            return 0
        self._evaluating = True
        try:
            env = dict(self.state.as_dict())
            env.update(payload)
            raised = 0
            for symptom in self._symptoms:
                if symptom.on_topic is None or not symptom.topic_matches(topic):
                    continue
                raised += self._maybe_fire(symptom, env)
            return raised
        finally:
            self._evaluating = False

    def observe_state(self) -> int:
        """Evaluate topic-free symptoms against current state."""
        if not self.enabled or self._evaluating:
            return 0
        self._evaluating = True
        try:
            env = dict(self.state.as_dict())
            raised = 0
            for symptom in self._symptoms:
                if symptom.on_topic is not None:
                    continue
                raised += self._maybe_fire(symptom, env)
            return raised
        finally:
            self._evaluating = False

    def _maybe_fire(self, symptom: Symptom, env: Mapping[str, Any]) -> int:
        now = self._now()
        if now - symptom._last_fired < symptom.cooldown:
            return 0
        if not symptom.holds(env):
            return 0
        symptom._last_fired = now
        request = ChangeRequest(
            kind=symptom.request_kind, symptom=symptom.name, context=dict(env)
        )
        self.requests_raised.append(request)
        self._plan_and_execute(request)
        return 1

    # -- plan/execute -----------------------------------------------------------

    def _plan_and_execute(self, request: ChangeRequest) -> None:
        env = dict(self.state.as_dict())
        env.update(request.context)
        for plan in self._plans:
            if plan.applicable(request, env):
                context = ActionContext(
                    resources=self.resources,
                    state=self.state,
                    args=dict(request.context),
                )
                try:
                    plan.execute(request, context)
                    self.plans_executed += 1
                except BrokerActionError:
                    continue  # try the next applicable plan
                return
        self.unplanned_requests.append(request)

    # -- externalization (PR 5) ------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture MAPE-K history: cooldown clocks, raised requests,
        execution counters.  Symptoms and plans themselves are domain
        knowledge the restoring side installs independently."""
        return {
            "last_fired": {
                symptom.name: symptom._last_fired
                for symptom in self._symptoms
                if symptom._last_fired != float("-inf")
            },
            "requests": [
                {"kind": request.kind, "symptom": request.symptom}
                for request in self.requests_raised
            ],
            "unplanned": [
                {"kind": request.kind, "symptom": request.symptom}
                for request in self.unplanned_requests
            ],
            "plans_executed": self.plans_executed,
            "enabled": self.enabled,
        }

    def restore_external(self, doc: Mapping[str, Any]) -> None:
        """Apply captured history onto locally installed symptoms/plans.

        Restored requests are history entries only — no plan is
        re-executed for them (the source session already did).
        """
        last_fired = dict(doc.get("last_fired", {}))
        for symptom in self._symptoms:
            symptom._last_fired = float(
                last_fired.get(symptom.name, float("-inf"))
            )
        self.requests_raised = [
            ChangeRequest(kind=entry["kind"], symptom=entry["symptom"], context={})
            for entry in doc.get("requests", [])
        ]
        self.unplanned_requests = [
            ChangeRequest(kind=entry["kind"], symptom=entry["symptom"], context={})
            for entry in doc.get("unplanned", [])
        ]
        self.plans_executed = int(doc.get("plans_executed", 0))
        self.enabled = bool(doc.get("enabled", True))

    @property
    def symptom_count(self) -> int:
        return len(self._symptoms)

    @property
    def plan_count(self) -> int:
        return len(self._plans)
