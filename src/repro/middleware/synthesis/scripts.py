"""Control scripts: the Synthesis -> Controller interface.

Paper Sec. IV-A: the Synthesis layer "transforms CML models into
control scripts"; the Controller "interprets the control scripts".
A :class:`ControlScript` is an ordered sequence of :class:`Command`
objects; each command names a domain *operation* (dot-separated) and
carries arguments plus an optional classifier hint used by command
classification (Sec. VI).

Scripts are themselves model data: :func:`script_metamodel` exposes the
script structure as a metamodel so scripts can be serialized, validated
and shipped across nodes (the 2SVM smart-space configuration installs
scripts on remote smart objects).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.modeling.meta import Metamodel

__all__ = [
    "Command",
    "ControlScript",
    "ScriptError",
    "script_metamodel",
    "script_to_dict",
    "script_from_dict",
]

_script_seq = itertools.count(1)


class ScriptError(Exception):
    """Raised on malformed scripts or commands."""


@dataclass(frozen=True)
class Command:
    """One step of a control script.

    Attributes:
        operation: dot-separated domain operation, e.g.
            ``"session.establish"`` or ``"device.set_mode"``.
        args: operation arguments.
        classifier: optional DSC name hinting classification; when
            absent, the Controller derives it from the operation.
        target: optional entity id the command concerns.
        guard: optional safe-expression string; a false guard skips the
            command at execution time.
    """

    operation: str
    args: Mapping[str, Any] = field(default_factory=dict)
    classifier: str | None = None
    target: str | None = None
    guard: str | None = None

    def __post_init__(self) -> None:
        if not self.operation:
            raise ScriptError("command operation must be non-empty")

    @property
    def category(self) -> str:
        """Leading segment of the operation (coarse classification)."""
        return self.operation.split(".", 1)[0]

    def with_args(self, **extra: Any) -> "Command":
        merged = dict(self.args)
        merged.update(extra)
        return Command(
            operation=self.operation,
            args=merged,
            classifier=self.classifier,
            target=self.target,
            guard=self.guard,
        )

    def __str__(self) -> str:
        target = f" @{self.target}" if self.target else ""
        return f"{self.operation}({dict(self.args)!r}){target}"


@dataclass
class ControlScript:
    """An ordered command sequence produced by one synthesis cycle."""

    name: str = ""
    commands: list[Command] = field(default_factory=list)
    source_model: str = ""          # id/name of the application model
    script_id: str = field(default_factory=lambda: f"script#{next(_script_seq)}")
    metadata: dict[str, Any] = field(default_factory=dict)

    def add(self, command: Command) -> "ControlScript":
        self.commands.append(command)
        return self

    def command(self, operation: str, **args: Any) -> "ControlScript":
        """Shorthand to append a command."""
        return self.add(Command(operation=operation, args=args))

    def operations(self) -> list[str]:
        return [c.operation for c in self.commands]

    @property
    def empty(self) -> bool:
        return not self.commands

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    def __len__(self) -> int:
        return len(self.commands)

    def __repr__(self) -> str:
        return (
            f"ControlScript({self.script_id}, name={self.name!r}, "
            f"commands={len(self.commands)})"
        )


_SCRIPT_METAMODEL: Metamodel | None = None


def script_metamodel() -> Metamodel:
    """The metamodel for control scripts (part of the DSK, Sec. V-B)."""
    global _SCRIPT_METAMODEL
    if _SCRIPT_METAMODEL is not None:
        return _SCRIPT_METAMODEL
    metamodel = Metamodel("control-scripts")
    script = metamodel.new_class("Script")
    script.attribute("name", "string")
    script.attribute("sourceModel", "string")
    script.reference("commands", "ScriptCommand", containment=True, many=True)
    command = metamodel.new_class("ScriptCommand")
    command.attribute("operation", "string", required=True)
    command.attribute("classifier", "string")
    command.attribute("target", "string")
    command.attribute("guard", "string")
    command.attribute("argsJson", "string")
    _SCRIPT_METAMODEL = metamodel.resolve()
    return _SCRIPT_METAMODEL


def script_to_dict(script: ControlScript) -> dict[str, Any]:
    """Serialize a script to a plain document (for shipping/installing)."""
    return {
        "script_id": script.script_id,
        "name": script.name,
        "source_model": script.source_model,
        "metadata": dict(script.metadata),
        "commands": [
            {
                "operation": c.operation,
                "args": dict(c.args),
                "classifier": c.classifier,
                "target": c.target,
                "guard": c.guard,
            }
            for c in script.commands
        ],
    }


def script_from_dict(doc: Mapping[str, Any]) -> ControlScript:
    try:
        script = ControlScript(
            name=str(doc.get("name", "")),
            source_model=str(doc.get("source_model", "")),
        )
        if "script_id" in doc:
            script.script_id = str(doc["script_id"])
        script.metadata = dict(doc.get("metadata", {}))
        for command_doc in doc.get("commands", []):
            script.add(
                Command(
                    operation=command_doc["operation"],
                    args=dict(command_doc.get("args", {})),
                    classifier=command_doc.get("classifier"),
                    target=command_doc.get("target"),
                    guard=command_doc.get("guard"),
                )
            )
    except (KeyError, TypeError) as exc:
        raise ScriptError(f"malformed script document: {exc}") from exc
    return script


def script_to_json(script: ControlScript) -> str:
    return json.dumps(script_to_dict(script), indent=2)


def script_from_json(text: str) -> ControlScript:
    try:
        return script_from_dict(json.loads(text))
    except json.JSONDecodeError as exc:
        raise ScriptError(f"invalid JSON: {exc}") from exc


__all__ += ["script_to_json", "script_from_json"]
