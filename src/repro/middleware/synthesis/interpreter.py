"""The change interpreter: change lists -> control scripts.

Paper Sec. V-A: "(2) change interpreter — processes the change list to
generate control scripts (using the current state of the labeled
transition system) and handles events from the Controller layer."

Domain knowledge enters as :class:`EntityRule` objects: one per DSML
metaclass, each carrying an :class:`~repro.modeling.lts.LTS` that
encodes the entity's synthesis lifecycle.  The interpreter maintains a
live LTS execution per model object; each change steps the matching
execution with a label derived from the change kind
(``add``/``remove``/``move``/``set:<feature>``/``list:<feature>``),
and the transition's actions are command templates rendered into
:class:`~repro.middleware.synthesis.scripts.Command` objects.

Command template format (a dict)::

    {"operation": "session.establish",
     "args": {...literals...},
     "args_expr": {"sid": "obj.id"},        # safe expressions
     "target_expr": "obj.id",               # or "target": literal
     "classifier": "comm.control",
     "guard": "..."}
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.middleware.synthesis.scripts import Command, ControlScript
from repro.modeling.diff import Change, ChangeList
from repro.modeling.lts import LTS, LTSError, LTSExecution
from repro.modeling.expr import compile_expression
from repro.runtime.events import Event, EventDeliveryError
from repro.runtime.topics import TopicMatcher

__all__ = ["InterpreterError", "EntityRule", "ChangeInterpreter"]


class InterpreterError(Exception):
    """Raised on unhandled changes in strict mode or bad rules."""


def _interp(source: str, env: Mapping[str, Any]) -> Any:
    """Reference-tier evaluation: cached parse, interpreted AST walk."""
    return compile_expression(source).evaluate(env)


class EntityRule:
    """Synthesis semantics for one DSML metaclass.

    ``lts`` transitions carry command-template actions (see module
    docstring).  ``on_unmatched`` controls what happens when a change
    label has no enabled transition: ``"ignore"`` (default; the change
    is synthesis-irrelevant) or ``"error"``.
    """

    def __init__(
        self,
        class_name: str,
        lts: LTS,
        *,
        on_unmatched: str = "ignore",
    ) -> None:
        if on_unmatched not in ("ignore", "error"):
            raise InterpreterError(
                f"rule {class_name!r}: on_unmatched must be ignore|error"
            )
        lts.check()
        self.class_name = class_name
        self.lts = lts
        self.on_unmatched = on_unmatched

    def __repr__(self) -> str:
        return f"EntityRule({self.class_name!r}, lts={self.lts.name!r})"


class _CompiledTemplate:
    """A command template lowered into compiled evaluators.

    Built once per ``(rule, transition, template)`` and reused across
    every change the template fires for, so the hot path never parses
    or AST-walks an expression string again.
    """

    __slots__ = (
        "template", "operation", "args", "classifier", "target", "guard",
        "when_fn", "args_fns", "target_fn", "foreach_fn",
    )

    def __init__(self, template: Mapping[str, Any]) -> None:
        operation = template.get("operation")
        if not operation:
            raise InterpreterError(
                f"command template missing operation: {template!r}"
            )
        self.template = template
        self.operation = str(operation)
        self.args = dict(template.get("args", {}))
        self.classifier = template.get("classifier")
        self.target = template.get("target")
        self.guard = template.get("guard")
        self.when_fn = (
            compile_expression(str(template["when"])).evaluate_fast
            if "when" in template
            else None
        )
        self.args_fns = tuple(
            (key, compile_expression(str(expr)).evaluate_fast)
            for key, expr in dict(template.get("args_expr", {})).items()
        )
        self.target_fn = (
            compile_expression(str(template["target_expr"])).evaluate_fast
            if self.target is None and "target_expr" in template
            else None
        )
        self.foreach_fn = (
            compile_expression(str(template["foreach"])).evaluate_fast
            if "foreach" in template
            else None
        )

    def render(self, env: dict[str, Any]) -> Command | None:
        if self.when_fn is not None and not self.when_fn(env):
            return None
        args = dict(self.args)
        for key, fn in self.args_fns:
            args[key] = fn(env)
        target = self.target
        if target is None and self.target_fn is not None:
            target = str(self.target_fn(env))
        return Command(
            operation=self.operation,
            args=args,
            classifier=self.classifier,
            target=target,
            guard=self.guard,
        )


class ChangeInterpreter:
    """Stateful interpreter mapping change lists to control scripts."""

    def __init__(self, *, strict: bool = False, compiled: bool = True) -> None:
        #: class name -> rule; subclass matching is by exact class name
        #: of the change (DSMLs are flat enough for exact matching).
        self._rules: dict[str, EntityRule] = {}
        #: object id -> live LTS execution for that entity.
        self._executions: dict[str, LTSExecution] = {}
        #: class name -> {id(template) -> compiled plan}; dropped when
        #: the class's rule is replaced via :meth:`add_rule`.
        self._plans: dict[str, dict[int, _CompiledTemplate]] = {}
        #: event topic pattern -> callback(topic, payload) for events
        #: from the Controller layer (failure recovery hooks).
        self._event_hooks: list[
            tuple[str, Callable[[str, dict[str, Any]], None]]
        ] = []
        self.strict = strict
        #: when False, templates are re-evaluated from their source
        #: strings per change (the reference/authoring tier).
        self.compiled = compiled
        self.changes_processed = 0
        self.commands_emitted = 0

    # -- DSK installation -------------------------------------------------

    def add_rule(self, rule: EntityRule, *, replace: bool = False) -> EntityRule:
        existing = self._rules.get(rule.class_name)
        if existing is not None and not replace:
            raise InterpreterError(f"duplicate rule for class {rule.class_name!r}")
        self._rules[rule.class_name] = rule
        if existing is not None:
            # Invalidate the compiled plan: the new rule's templates
            # must be lowered fresh (stale closures would keep emitting
            # the replaced semantics).
            self._plans.pop(rule.class_name, None)
        return rule

    def on_event(
        self, pattern: str, callback: Callable[[str, dict[str, Any]], None]
    ) -> None:
        self._event_hooks.append((pattern, callback))

    # -- change interpretation ------------------------------------------------

    def interpret(
        self,
        changes: ChangeList,
        *,
        script_name: str = "",
        context: Mapping[str, Any] | None = None,
    ) -> ControlScript:
        """Produce the control script realizing ``changes``."""
        script = ControlScript(name=script_name)
        env_base = dict(context or {})
        for change in changes:
            self.changes_processed += 1
            for command in self._interpret_change(change, env_base):
                script.add(command)
                self.commands_emitted += 1
        return script

    def _interpret_change(
        self, change: Change, env_base: dict[str, Any]
    ) -> list[Command]:
        rule = self._rules.get(change.class_name)
        if rule is None:
            if self.strict:
                raise InterpreterError(
                    f"no synthesis rule for class {change.class_name!r}"
                )
            return []
        execution = self._execution_for(change, rule)
        label = self._label_for(change)
        env = dict(env_base)
        env.update(self._change_env(change))
        commands: list[Command] = []
        actions = execution.try_step(label, env)
        if actions is None:
            if rule.on_unmatched == "error" or self.strict:
                raise InterpreterError(
                    f"rule {rule.class_name!r}: no transition for {label!r} "
                    f"from state {execution.state!r} (change: {change})"
                )
            return []
        if self.compiled:
            plan = self._plans.get(rule.class_name)
            if plan is None:
                plan = self._plans[rule.class_name] = {}
            for template in actions:
                compiled = plan.get(id(template))
                if compiled is None or compiled.template is not template:
                    compiled = plan[id(template)] = _CompiledTemplate(template)
                if compiled.foreach_fn is not None:
                    for item in compiled.foreach_fn(env):
                        item_env = dict(env)
                        item_env["item"] = item
                        command = compiled.render(item_env)
                        if command is not None:
                            commands.append(command)
                else:
                    command = compiled.render(env)
                    if command is not None:
                        commands.append(command)
        else:
            for template in actions:
                if "foreach" in template:
                    items = _interp(str(template["foreach"]), env)
                    for item in items:
                        item_env = dict(env)
                        item_env["item"] = item
                        command = self._render_command(template, item_env)
                        if command is not None:
                            commands.append(command)
                else:
                    command = self._render_command(template, env)
                    if command is not None:
                        commands.append(command)
        if change.kind == "remove":
            # Entity left the model; discard its execution state.
            self._executions.pop(change.object_id, None)
        return commands

    def _execution_for(self, change: Change, rule: EntityRule) -> LTSExecution:
        execution = self._executions.get(change.object_id)
        if execution is None or execution.lts is not rule.lts:
            execution = rule.lts.new_execution()
            self._executions[change.object_id] = execution
        return execution

    @staticmethod
    def _label_for(change: Change) -> str:
        if change.kind in ("add", "remove", "move"):
            return change.kind
        return f"{change.kind}:{change.feature}"

    @staticmethod
    def _change_env(change: Change) -> dict[str, Any]:
        env: dict[str, Any] = {
            "change": change,
            "object_id": change.object_id,
            "class_name": change.class_name,
            "feature": change.feature,
            "old": change.old,
            "new": change.new,
            "added": list(change.added),
            "removed": list(change.removed),
        }
        obj = change.new_object or change.old_object
        if obj is not None:
            env["obj"] = obj
            for attr_name in obj.meta.all_attributes():
                env.setdefault(attr_name, obj.get(attr_name))
        # the pre-change version, for templates that must address state
        # derived from old values (e.g. unbinding at an old target)
        env["old_obj"] = change.old_object if change.old_object is not None else obj
        return env

    @staticmethod
    def _render_command(
        template: Mapping[str, Any], env: dict[str, Any]
    ) -> Command | None:
        operation = template.get("operation")
        if not operation:
            raise InterpreterError(f"command template missing operation: {template!r}")
        if "when" in template and not _interp(str(template["when"]), env):
            return None
        args = dict(template.get("args", {}))
        for key, expr in dict(template.get("args_expr", {})).items():
            args[key] = _interp(str(expr), env)
        target = template.get("target")
        if target is None and "target_expr" in template:
            target = str(_interp(str(template["target_expr"]), env))
        return Command(
            operation=str(operation),
            args=args,
            classifier=template.get("classifier"),
            target=target,
            guard=template.get("guard"),
        )

    # -- Controller events ------------------------------------------------------

    def handle_event(self, topic: str, payload: dict[str, Any]) -> int:
        """Route an event from the Controller layer to DSK hooks.

        Hook exceptions are collected and re-raised as one
        :class:`~repro.runtime.events.EventDeliveryError` after every
        matching hook ran — the same aggregation the event bus applies,
        so one raising DSK hook cannot starve the hooks behind it.
        """
        matched = 0
        errors: list[Exception] = []
        for pattern, callback in self._event_hooks:
            if not TopicMatcher.matches(pattern, topic):
                continue
            matched += 1
            try:
                callback(topic, payload)
            except Exception as exc:  # noqa: BLE001 - aggregated below
                errors.append(exc)
        if errors:
            raise EventDeliveryError(Event(topic=topic, payload=payload), errors)
        return matched

    # -- externalization (PR 5) --------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture live LTS executions and counters.

        Rules are domain knowledge, not state — the restoring side is
        expected to have installed the same DSK, so executions are
        recorded as ``(object id, lts name, current state)`` and
        re-attached by LTS name on restore.
        """
        return {
            "executions": [
                {
                    "id": object_id,
                    "lts": execution.lts.name,
                    "state": execution.state,
                }
                for object_id, execution in sorted(self._executions.items())
            ],
            "changes_processed": self.changes_processed,
            "commands_emitted": self.commands_emitted,
        }

    def restore_external(self, doc: Mapping[str, Any]) -> None:
        """Rebuild executions against the locally installed rules."""
        by_lts_name = {rule.lts.name: rule.lts for rule in self._rules.values()}
        executions: dict[str, LTSExecution] = {}
        for entry in doc.get("executions", []):
            lts = by_lts_name.get(entry["lts"])
            if lts is None:
                raise InterpreterError(
                    f"cannot restore execution for {entry['id']!r}: no "
                    f"installed rule carries LTS {entry['lts']!r}"
                )
            try:
                executions[entry["id"]] = lts.new_execution(
                    state=entry["state"]
                )
            except LTSError as exc:
                raise InterpreterError(
                    f"cannot restore execution for {entry['id']!r}: {exc}"
                ) from exc
        self._executions = executions
        self.changes_processed = int(doc.get("changes_processed", 0))
        self.commands_emitted = int(doc.get("commands_emitted", 0))

    # -- diagnostics ---------------------------------------------------------------

    def entity_state(self, object_id: str) -> str | None:
        execution = self._executions.get(object_id)
        return execution.state if execution is not None else None

    def reset(self) -> None:
        self._executions.clear()

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    @property
    def tracked_entities(self) -> int:
        return len(self._executions)
