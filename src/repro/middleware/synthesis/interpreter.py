"""The change interpreter: change lists -> control scripts.

Paper Sec. V-A: "(2) change interpreter — processes the change list to
generate control scripts (using the current state of the labeled
transition system) and handles events from the Controller layer."

Domain knowledge enters as :class:`EntityRule` objects: one per DSML
metaclass, each carrying an :class:`~repro.modeling.lts.LTS` that
encodes the entity's synthesis lifecycle.  The interpreter maintains a
live LTS execution per model object; each change steps the matching
execution with a label derived from the change kind
(``add``/``remove``/``move``/``set:<feature>``/``list:<feature>``),
and the transition's actions are command templates rendered into
:class:`~repro.middleware.synthesis.scripts.Command` objects.

Command template format (a dict)::

    {"operation": "session.establish",
     "args": {...literals...},
     "args_expr": {"sid": "obj.id"},        # safe expressions
     "target_expr": "obj.id",               # or "target": literal
     "classifier": "comm.control",
     "guard": "..."}
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Callable, Mapping

from repro.middleware.synthesis.scripts import Command, ControlScript
from repro.modeling.diff import Change, ChangeList
from repro.modeling.lts import LTS, LTSError, LTSExecution
from repro.modeling.expr import compile_expression
from repro.runtime.events import Event, EventDeliveryError
from repro.runtime.topics import TopicMatcher

__all__ = ["InterpreterError", "EntityRule", "ChangeInterpreter"]


class InterpreterError(Exception):
    """Raised on unhandled changes in strict mode or bad rules."""


def _interp(source: str, env: Mapping[str, Any]) -> Any:
    """Reference-tier evaluation: cached parse, interpreted AST walk."""
    return compile_expression(source).evaluate(env)


#: Sentinel returned by the Tier-3 fast path to defer one change to
#: the Tier-2 interpreter (shape not covered by the generated module).
_AOT_MISS = object()


class EntityRule:
    """Synthesis semantics for one DSML metaclass.

    ``lts`` transitions carry command-template actions (see module
    docstring).  ``on_unmatched`` controls what happens when a change
    label has no enabled transition: ``"ignore"`` (default; the change
    is synthesis-irrelevant) or ``"error"``.
    """

    def __init__(
        self,
        class_name: str,
        lts: LTS,
        *,
        on_unmatched: str = "ignore",
    ) -> None:
        if on_unmatched not in ("ignore", "error"):
            raise InterpreterError(
                f"rule {class_name!r}: on_unmatched must be ignore|error"
            )
        lts.check()
        self.class_name = class_name
        self.lts = lts
        self.on_unmatched = on_unmatched

    def __repr__(self) -> str:
        return f"EntityRule({self.class_name!r}, lts={self.lts.name!r})"


class _CompiledTemplate:
    """A command template lowered into compiled evaluators.

    Built once per ``(rule, transition, template)`` and reused across
    every change the template fires for, so the hot path never parses
    or AST-walks an expression string again.
    """

    __slots__ = (
        "template", "operation", "args", "classifier", "target", "guard",
        "when_fn", "args_fns", "target_fn", "foreach_fn",
    )

    def __init__(self, template: Mapping[str, Any]) -> None:
        operation = template.get("operation")
        if not operation:
            raise InterpreterError(
                f"command template missing operation: {template!r}"
            )
        self.template = template
        self.operation = str(operation)
        self.args = dict(template.get("args", {}))
        self.classifier = template.get("classifier")
        self.target = template.get("target")
        self.guard = template.get("guard")
        self.when_fn = (
            compile_expression(str(template["when"])).evaluate_fast
            if "when" in template
            else None
        )
        self.args_fns = tuple(
            (key, compile_expression(str(expr)).evaluate_fast)
            for key, expr in dict(template.get("args_expr", {})).items()
        )
        self.target_fn = (
            compile_expression(str(template["target_expr"])).evaluate_fast
            if self.target is None and "target_expr" in template
            else None
        )
        self.foreach_fn = (
            compile_expression(str(template["foreach"])).evaluate_fast
            if "foreach" in template
            else None
        )

    def render(self, env: dict[str, Any]) -> Command | None:
        if self.when_fn is not None and not self.when_fn(env):
            return None
        args = dict(self.args)
        for key, fn in self.args_fns:
            args[key] = fn(env)
        target = self.target
        if target is None and self.target_fn is not None:
            target = str(self.target_fn(env))
        return Command(
            operation=self.operation,
            args=args,
            classifier=self.classifier,
            target=target,
            guard=self.guard,
        )


class _TemplatePlanCache:
    """Compiled-template cache keyed by template *structure*.

    PR3 keyed plans ``{id(template) -> plan}`` per class: identity
    keying confuses two structurally different templates whenever an id
    is reused, and entries for replaced rules pinned dead templates
    alive without bound.  Keys are now the canonical JSON of the
    template dict — structurally equal templates share one compiled
    plan, structurally different ones can never collide — inside an
    LRU bound.  An identity memo in front keeps the common case (the
    same template object firing change after change) at one dict hit
    instead of a JSON encode.
    """

    __slots__ = ("max_entries", "_by_structure", "_by_id")

    def __init__(self, max_entries: int = 1024) -> None:
        self.max_entries = max_entries
        self._by_structure: OrderedDict[str, _CompiledTemplate] = OrderedDict()
        #: id(template) -> (template, plan); the stored reference keeps
        #: the id valid, the identity check rejects lookups for a
        #: different object that was never memoized under this id.
        self._by_id: dict[int, tuple[Any, _CompiledTemplate]] = {}

    def lookup(self, template: Mapping[str, Any]) -> _CompiledTemplate:
        memo = self._by_id.get(id(template))
        if memo is not None and memo[0] is template:
            return memo[1]
        key = json.dumps(template, sort_keys=True, default=repr)
        cache = self._by_structure
        compiled = cache.get(key)
        if compiled is None:
            compiled = _CompiledTemplate(template)
            cache[key] = compiled
            if len(cache) > self.max_entries:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        if len(self._by_id) >= self.max_entries:
            self._by_id.clear()  # memo only: rebuilt on demand
        self._by_id[id(template)] = (template, compiled)
        return compiled

    def __len__(self) -> int:
        return len(self._by_structure)


class ChangeInterpreter:
    """Stateful interpreter mapping change lists to control scripts."""

    def __init__(self, *, strict: bool = False, compiled: bool = True) -> None:
        #: class name -> rule; subclass matching is by exact class name
        #: of the change (DSMLs are flat enough for exact matching).
        self._rules: dict[str, EntityRule] = {}
        #: object id -> live LTS execution for that entity.
        self._executions: dict[str, LTSExecution] = {}
        #: structural-hash-keyed LRU of compiled template plans; safe
        #: across rule replacement (same structure -> same semantics).
        self._plans = _TemplatePlanCache()
        #: installed Tier-3 program (synthesis.aot.AotProgram) or None;
        #: dropped — falling back to Tier-2 — on any rule edit.
        self._aot: Any = None
        #: event topic pattern -> callback(topic, payload) for events
        #: from the Controller layer (failure recovery hooks).
        self._event_hooks: list[
            tuple[str, Callable[[str, dict[str, Any]], None]]
        ] = []
        self.strict = strict
        #: when False, templates are re-evaluated from their source
        #: strings per change (the reference/authoring tier).
        self.compiled = compiled
        self.changes_processed = 0
        self.commands_emitted = 0

    # -- DSK installation -------------------------------------------------

    def add_rule(self, rule: EntityRule, *, replace: bool = False) -> EntityRule:
        existing = self._rules.get(rule.class_name)
        if existing is not None and not replace:
            raise InterpreterError(f"duplicate rule for class {rule.class_name!r}")
        self._rules[rule.class_name] = rule
        # The structural plan cache needs no invalidation (new templates
        # lower under their own structural keys), but any installed
        # Tier-3 program was generated from the previous rule set:
        # drop it so edited entities run on Tier-2 until the next
        # completed synthesis cycle regenerates the module.
        if existing is not None:
            self._aot = None
        return rule

    def install_aot(self, program: Any) -> None:
        """Install (or with ``None`` remove) a validated Tier-3 program
        (:class:`repro.middleware.synthesis.aot.AotProgram`)."""
        self._aot = program

    def on_event(
        self, pattern: str, callback: Callable[[str, dict[str, Any]], None]
    ) -> None:
        self._event_hooks.append((pattern, callback))

    # -- change interpretation ------------------------------------------------

    def interpret(
        self,
        changes: ChangeList,
        *,
        script_name: str = "",
        context: Mapping[str, Any] | None = None,
    ) -> ControlScript:
        """Produce the control script realizing ``changes``."""
        script = ControlScript(name=script_name)
        env_base = dict(context or {})
        for change in changes:
            self.changes_processed += 1
            for command in self._interpret_change(change, env_base):
                script.add(command)
                self.commands_emitted += 1
        return script

    def _interpret_change(
        self, change: Change, env_base: dict[str, Any]
    ) -> list[Command]:
        rule = self._rules.get(change.class_name)
        if rule is None:
            if self.strict:
                raise InterpreterError(
                    f"no synthesis rule for class {change.class_name!r}"
                )
            return []
        execution = self._execution_for(change, rule)
        label = self._label_for(change)
        if (
            self._aot is not None
            and self.compiled
            and not env_base
            and change.class_name in self._aot.syn_classes
        ):
            commands = self._aot_change(change, rule, execution, label)
            if commands is not _AOT_MISS:
                return commands
        env = dict(env_base)
        env.update(self._change_env(change))
        commands: list[Command] = []
        actions = execution.try_step(label, env)
        if actions is None:
            if rule.on_unmatched == "error" or self.strict:
                raise InterpreterError(
                    f"rule {rule.class_name!r}: no transition for {label!r} "
                    f"from state {execution.state!r} (change: {change})"
                )
            return []
        if self.compiled:
            for template in actions:
                compiled = self._plans.lookup(template)
                if compiled.foreach_fn is not None:
                    for item in compiled.foreach_fn(env):
                        item_env = dict(env)
                        item_env["item"] = item
                        command = compiled.render(item_env)
                        if command is not None:
                            commands.append(command)
                else:
                    command = compiled.render(env)
                    if command is not None:
                        commands.append(command)
        else:
            for template in actions:
                if "foreach" in template:
                    items = _interp(str(template["foreach"]), env)
                    for item in items:
                        item_env = dict(env)
                        item_env["item"] = item
                        command = self._render_command(template, item_env)
                        if command is not None:
                            commands.append(command)
                else:
                    command = self._render_command(template, env)
                    if command is not None:
                        commands.append(command)
        if change.kind == "remove":
            # Entity left the model; discard its execution state.
            self._executions.pop(change.object_id, None)
        return commands

    def _aot_change(
        self,
        change: Change,
        rule: EntityRule,
        execution: LTSExecution,
        label: str,
    ) -> list[Command] | Any:
        """Tier-3 dispatch for one change; ``_AOT_MISS`` defers to
        Tier-2 for shapes the generated module does not cover.

        Mirrors the Tier-2 path exactly: all guards in the dispatch
        group are evaluated (guard errors propagate even when an
        earlier transition already matched, like ``LTSExecution.
        enabled``), the winning *live* transition mutates the same
        execution state/trace, and the many-valued feature touches
        Tier-2's env construction performs are replayed so the slot
        store materializes identically.
        """
        obj = change.new_object or change.old_object
        if obj is None:
            return _AOT_MISS  # templates resolve names against obj
        program = self._aot
        # Tier-2 builds the change env *before* stepping, calling
        # obj.get() on every declared attribute — which materializes
        # many-valued lists into the slot store even for changes that
        # end up unmatched.  Replay those touches first.
        for attr_name in program.syn_many.get(change.class_name, ()):
            obj.get(attr_name)
        entries = program.syn_dispatch.get(
            (change.class_name, execution.state, label)
        )
        chosen = None
        if entries is not None:
            for guard_fn, transition, renders in entries:
                enabled = guard_fn is None or guard_fn(change, obj)
                if enabled and chosen is None:
                    chosen = (transition, renders)
        if chosen is None:
            if rule.on_unmatched == "error" or self.strict:
                raise InterpreterError(
                    f"rule {rule.class_name!r}: no transition for {label!r} "
                    f"from state {execution.state!r} (change: {change})"
                )
            return []
        transition, renders = chosen
        execution.state = transition.target
        execution.trace.append(transition)
        commands: list[Command] = []
        for render in renders:
            commands.extend(render(change, obj))
        if change.kind == "remove":
            self._executions.pop(change.object_id, None)
        return commands

    def _execution_for(self, change: Change, rule: EntityRule) -> LTSExecution:
        execution = self._executions.get(change.object_id)
        if execution is None or execution.lts is not rule.lts:
            execution = rule.lts.new_execution()
            self._executions[change.object_id] = execution
        return execution

    @staticmethod
    def _label_for(change: Change) -> str:
        if change.kind in ("add", "remove", "move"):
            return change.kind
        return f"{change.kind}:{change.feature}"

    @staticmethod
    def _change_env(change: Change) -> dict[str, Any]:
        env: dict[str, Any] = {
            "change": change,
            "object_id": change.object_id,
            "class_name": change.class_name,
            "feature": change.feature,
            "old": change.old,
            "new": change.new,
            "added": list(change.added),
            "removed": list(change.removed),
        }
        obj = change.new_object or change.old_object
        if obj is not None:
            env["obj"] = obj
            for attr_name in obj.meta.all_attributes():
                env.setdefault(attr_name, obj.get(attr_name))
        # the pre-change version, for templates that must address state
        # derived from old values (e.g. unbinding at an old target)
        env["old_obj"] = change.old_object if change.old_object is not None else obj
        return env

    @staticmethod
    def _render_command(
        template: Mapping[str, Any], env: dict[str, Any]
    ) -> Command | None:
        operation = template.get("operation")
        if not operation:
            raise InterpreterError(f"command template missing operation: {template!r}")
        if "when" in template and not _interp(str(template["when"]), env):
            return None
        args = dict(template.get("args", {}))
        for key, expr in dict(template.get("args_expr", {})).items():
            args[key] = _interp(str(expr), env)
        target = template.get("target")
        if target is None and "target_expr" in template:
            target = str(_interp(str(template["target_expr"]), env))
        return Command(
            operation=str(operation),
            args=args,
            classifier=template.get("classifier"),
            target=target,
            guard=template.get("guard"),
        )

    # -- Controller events ------------------------------------------------------

    def handle_event(self, topic: str, payload: dict[str, Any]) -> int:
        """Route an event from the Controller layer to DSK hooks.

        Hook exceptions are collected and re-raised as one
        :class:`~repro.runtime.events.EventDeliveryError` after every
        matching hook ran — the same aggregation the event bus applies,
        so one raising DSK hook cannot starve the hooks behind it.
        """
        matched = 0
        errors: list[Exception] = []
        for pattern, callback in self._event_hooks:
            if not TopicMatcher.matches(pattern, topic):
                continue
            matched += 1
            try:
                callback(topic, payload)
            except Exception as exc:  # noqa: BLE001 - aggregated below
                errors.append(exc)
        if errors:
            raise EventDeliveryError(Event(topic=topic, payload=payload), errors)
        return matched

    # -- externalization (PR 5) --------------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture live LTS executions and counters.

        Rules are domain knowledge, not state — the restoring side is
        expected to have installed the same DSK, so executions are
        recorded as ``(object id, lts name, current state)`` and
        re-attached by LTS name on restore.
        """
        return {
            "executions": [
                {
                    "id": object_id,
                    "lts": execution.lts.name,
                    "state": execution.state,
                }
                for object_id, execution in sorted(self._executions.items())
            ],
            "changes_processed": self.changes_processed,
            "commands_emitted": self.commands_emitted,
        }

    def restore_external(self, doc: Mapping[str, Any]) -> None:
        """Rebuild executions against the locally installed rules."""
        by_lts_name = {rule.lts.name: rule.lts for rule in self._rules.values()}
        executions: dict[str, LTSExecution] = {}
        for entry in doc.get("executions", []):
            lts = by_lts_name.get(entry["lts"])
            if lts is None:
                raise InterpreterError(
                    f"cannot restore execution for {entry['id']!r}: no "
                    f"installed rule carries LTS {entry['lts']!r}"
                )
            try:
                executions[entry["id"]] = lts.new_execution(
                    state=entry["state"]
                )
            except LTSError as exc:
                raise InterpreterError(
                    f"cannot restore execution for {entry['id']!r}: {exc}"
                ) from exc
        self._executions = executions
        self.changes_processed = int(doc.get("changes_processed", 0))
        self.commands_emitted = int(doc.get("commands_emitted", 0))

    # -- diagnostics ---------------------------------------------------------------

    def entity_state(self, object_id: str) -> str | None:
        execution = self._executions.get(object_id)
        return execution.state if execution is not None else None

    def reset(self) -> None:
        self._executions.clear()

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    @property
    def tracked_entities(self) -> int:
        return len(self._executions)
