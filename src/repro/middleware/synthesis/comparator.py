"""The model comparator component of the Synthesis layer.

Paper Sec. V-A: "(1) model comparator — compares the new user-defined
model and the current runtime model to produce a change list."

This wraps the kernel's :func:`~repro.modeling.diff.diff_models` with
the Synthesis layer's conventions: an absent runtime model compares as
an *empty* model ("an empty model if the system has just been
started"), and comparisons are validated to be same-metamodel.
"""

from __future__ import annotations

from repro.modeling.diff import ChangeList, diff_models
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model

__all__ = ["ComparatorError", "ModelComparator"]


class ComparatorError(Exception):
    """Raised when models cannot be compared."""


class ModelComparator:
    """Produces change lists between runtime and user models."""

    def __init__(self, metamodel: Metamodel) -> None:
        self.metamodel = metamodel
        self.comparisons = 0

    def empty_model(self) -> Model:
        return Model(self.metamodel, name="empty")

    def compare(self, current: Model | None, new: Model) -> ChangeList:
        """Diff ``current`` (None = system just started) against ``new``."""
        if new.metamodel is not self.metamodel:
            raise ComparatorError(
                f"new model conforms to {new.metamodel.name!r}, expected "
                f"{self.metamodel.name!r}"
            )
        if current is None:
            current = self.empty_model()
        elif current.metamodel is not self.metamodel:
            raise ComparatorError(
                f"runtime model conforms to {current.metamodel.name!r}, "
                f"expected {self.metamodel.name!r}"
            )
        self.comparisons += 1
        return diff_models(current, new)
