"""Tier-3 loader: validate and install AOT-generated dispatch modules.

:mod:`repro.modeling.aotgen` turns a loaded DSK into Python *source*;
this module turns that source into installed fast paths:

* :func:`load_program` executes the source, revalidates it against the
  live platform (ABI, recomputed ``DSK_HASH``), binds the generated
  ``_TBL_*`` feature-table sentinels, and maps dispatch entries onto
  the *live* :class:`~repro.modeling.lts.Transition` objects so the
  Tier-3 path mutates the very same execution state Tier-2 would;
* :func:`enable_aot` builds + installs a program on a platform and
  hooks lazy regeneration into the synthesis cycle: a runtime DSK edit
  (rule replaced, broker action installed) atomically drops the stale
  program — the edited entities fall back to Tier-2 — and the next
  completed synthesis cycle regenerates it.

Tier selection is therefore: Tier-3 when a program is installed and
the change/call is covered; Tier-2 (PR3's cached closures) otherwise.
Tier-3 is opt-in (``load_platform(..., aot=True)`` or
``Platform.enable_aot()``): behaviour is pinned identical by the
tier-equivalence property tests, but the default stays conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.modeling.aotgen import (
    ABI_VERSION,
    dsk_fingerprint,
    dsk_hash,
    generate_module_source,
    read_cached_source,
    write_cached_source,
    _mangle,
)

__all__ = ["AotError", "AotProgram", "build_program", "load_program", "enable_aot"]


class AotError(Exception):
    """Raised when a generated module cannot be validated/installed."""


#: (guard_fn | None, live Transition, render fns) per dispatch entry.
_DispatchEntry = tuple[Any, Any, tuple[Callable[..., list], ...]]


@dataclass
class AotProgram:
    """A validated, live-bound generated module ready to install."""

    domain: str
    dsk_hash: str
    source: str
    namespace: dict[str, Any] = field(repr=False)
    #: exact API -> fn(resources, state, values, args)
    broker_calls: dict[str, Callable[..., Any]]
    #: (class, state, label) -> priority-ordered dispatch entries
    syn_dispatch: dict[tuple[str, str, str], tuple[_DispatchEntry, ...]]
    #: class -> many-valued attr names touched for Tier-2 env parity
    syn_many: dict[str, tuple[str, ...]]
    syn_classes: frozenset[str]
    broker_skipped: tuple[str, ...]
    syn_skipped: tuple[str, ...]
    #: True when the installed source came off the disk cache rather
    #: than being generated in-process.
    from_cache: bool = False


def build_program(
    *,
    rules: Mapping[str, Any],
    actions: list[Any],
    dsml: Any,
    domain: str = "",
    cache_dir: str | None = None,
) -> AotProgram:
    """Generate + load in one step (the common in-process path).

    With ``cache_dir``, try a disk-cached module keyed by the live
    ``DSK_HASH`` first — :func:`load_program`'s ABI/hash revalidation
    is the cache-integrity check, so a stale, corrupt, or truncated
    cache entry simply misses and is regenerated and overwritten.
    Cache write failures are non-fatal (the program still installs).
    """
    live_hash = ""
    if cache_dir is not None:
        live_hash = dsk_hash(
            dsk_fingerprint(rules=rules, actions=actions, dsml=dsml)
        )
        cached = read_cached_source(cache_dir, live_hash)
        if cached is not None:
            try:
                program = load_program(
                    cached, rules=rules, actions=actions, dsml=dsml,
                    domain=domain,
                )
            except AotError:
                pass  # invalid cache entry: fall through and regenerate
            else:
                program.from_cache = True
                return program
    source = generate_module_source(
        rules=rules, actions=actions, dsml=dsml, domain=domain
    )
    program = load_program(
        source, rules=rules, actions=actions, dsml=dsml, domain=domain
    )
    if cache_dir is not None:
        try:
            write_cached_source(cache_dir, live_hash, source)
        except OSError:
            pass  # cache is an optimization; never fail the install
    return program


def load_program(
    source: str,
    *,
    rules: Mapping[str, Any],
    actions: list[Any],
    dsml: Any,
    domain: str = "",
) -> AotProgram:
    """Execute generated source and bind it to the live DSK.

    Validation is structural, not trust-based: the module's baked
    ``DSK_HASH`` must equal a hash recomputed from the live rules,
    action table, and metamodel slot layout — a module generated from
    any other DSK shape (or an edited one) is refused, which is what
    makes pregenerated modules safe to ship to remote workers.
    """
    namespace: dict[str, Any] = {}
    try:
        exec(compile(source, f"<aot:{domain or 'dsk'}>", "exec"), namespace)
    except Exception as exc:  # noqa: BLE001 - surfaced as one typed error
        raise AotError(f"generated module failed to execute: {exc}") from exc
    abi = namespace.get("ABI")
    if abi != ABI_VERSION:
        raise AotError(f"ABI mismatch: module={abi!r}, loader={ABI_VERSION}")
    live_hash = dsk_hash(
        dsk_fingerprint(rules=rules, actions=actions, dsml=dsml)
    )
    baked = namespace.get("DSK_HASH")
    if baked != live_hash:
        raise AotError(
            f"DSK hash mismatch: module was generated from a different DSK "
            f"shape (module={baked!r}, live={live_hash!r})"
        )
    syn_classes = frozenset(namespace.get("SYN_CLASSES", ()))
    # Bind the feature-table sentinels: flat slot reads only fire for
    # objects laid out by exactly these tables (see aotgen._slot).
    for class_name in syn_classes:
        cls = dsml.find_class(class_name) if dsml is not None else None
        if cls is None:
            raise AotError(f"compiled class {class_name!r} not in DSML")
        namespace[f"_TBL_{_mangle(class_name)}"] = cls.feature_table()
    dispatch = _bind_dispatch(namespace, rules, syn_classes)
    return AotProgram(
        domain=str(namespace.get("DOMAIN", domain)),
        dsk_hash=live_hash,
        source=source,
        namespace=namespace,
        broker_calls=dict(namespace.get("BROKER_APIS", {})),
        syn_dispatch=dispatch,
        syn_many={
            name: tuple(attrs)
            for name, attrs in namespace.get("SYN_MANY_ATTRS", {}).items()
        },
        syn_classes=syn_classes,
        broker_skipped=tuple(namespace.get("BROKER_SKIPPED", ())),
        syn_skipped=tuple(namespace.get("SYN_SKIPPED", ())),
    )


def _bind_dispatch(
    namespace: Mapping[str, Any],
    rules: Mapping[str, Any],
    syn_classes: frozenset[str],
) -> dict[tuple[str, str, str], tuple[_DispatchEntry, ...]]:
    """Pair generated entries with live Transition objects.

    Generated entries carry their index within the priority-sorted
    (stable on ties, like ``LTS.indexed_transitions``) transition group
    for their ``(state, label)`` key; the live rule set is grouped and
    sorted identically, so index ``i`` names the same transition the
    generator compiled.  Count mismatches mean the module and the live
    DSK diverged and are refused (belt to the hash check's braces).
    """
    live_groups: dict[tuple[str, str, str], list[Any]] = {}
    for class_name in syn_classes:
        rule = rules.get(class_name)
        if rule is None:
            raise AotError(f"compiled class {class_name!r} has no live rule")
        by_key: dict[tuple[str, str], list[Any]] = {}
        for transition in rule.lts._transitions:
            by_key.setdefault(
                (transition.source, transition.label), []
            ).append(transition)
        for (state, label), group in by_key.items():
            live_groups[(class_name, state, label)] = sorted(
                group, key=lambda t: -t.priority
            )
    dispatch: dict[tuple[str, str, str], tuple[_DispatchEntry, ...]] = {}
    for key, entries in namespace.get("SYN_DISPATCH", {}).items():
        live = live_groups.get(tuple(key))
        if live is None or len(live) != len(entries):
            raise AotError(
                f"dispatch group {key!r}: module has {len(entries)} "
                f"entries, live DSK has {0 if live is None else len(live)}"
            )
        bound: list[_DispatchEntry] = []
        for guard_fn, index, renders in entries:
            bound.append((guard_fn, live[index], tuple(renders)))
        dispatch[tuple(key)] = tuple(bound)
    return dispatch


def enable_aot(platform: Any, *, cache_dir: str | None = None) -> AotProgram:
    """Build + install a Tier-3 program on a started platform.

    Also hooks lazy regeneration: when a runtime DSK edit invalidates
    either layer's installed program (``add_rule(replace=True)`` or
    ``install_action`` drop it), the end of the next synthesis cycle
    rebuilds and reinstalls — the editing cycle itself runs on Tier-2,
    subsequent ones return to Tier-3.  ``cache_dir`` routes every
    (re)build through the disk cache, so cold starts — including
    remote cluster workers restoring from a snapshot — skip generation
    when a module for the live ``DSK_HASH`` is already cached.
    """
    synthesis = platform.synthesis
    if synthesis is None:
        raise AotError(f"platform {platform.name!r} has no synthesis layer")
    broker = platform.broker

    def build_and_install() -> AotProgram:
        program = build_program(
            rules=synthesis.interpreter._rules,
            actions=list(broker.calls._actions) if broker is not None else [],
            dsml=platform.dsml,
            domain=platform.domain,
            cache_dir=cache_dir,
        )
        synthesis.interpreter.install_aot(program)
        if broker is not None:
            broker.install_aot(program.broker_calls)
        return program

    def refresh() -> None:
        stale = synthesis.interpreter._aot is None or (
            broker is not None and broker._aot_calls is None
        )
        if stale:
            build_and_install()

    program = build_and_install()
    synthesis.aot_refresh = refresh
    return program
