"""Synthesis layer: model comparator, LTS-driven change interpreter,
dispatcher, and control scripts (paper Secs. V-A and V-B)."""

from repro.middleware.synthesis.comparator import ComparatorError, ModelComparator
from repro.middleware.synthesis.dispatcher import Dispatcher
from repro.middleware.synthesis.engine import (
    SynthesisEngine,
    SynthesisError,
    SynthesisResult,
)
from repro.middleware.synthesis.interpreter import (
    ChangeInterpreter,
    EntityRule,
    InterpreterError,
)
from repro.middleware.synthesis.scripts import (
    Command,
    ControlScript,
    ScriptError,
    script_from_dict,
    script_from_json,
    script_metamodel,
    script_to_dict,
    script_to_json,
)

__all__ = [
    "SynthesisEngine", "SynthesisResult", "SynthesisError",
    "ModelComparator", "ComparatorError",
    "ChangeInterpreter", "EntityRule", "InterpreterError",
    "Dispatcher",
    "Command", "ControlScript", "ScriptError",
    "script_metamodel", "script_to_dict", "script_from_dict",
    "script_to_json", "script_from_json",
]
