"""The Synthesis Engine: comparator + interpreter + dispatcher.

Paper Sec. V-B: "The input to the Synthesis layer is a sequence of
user-defined DSML models and the output is a set of control scripts
sent to the Controller layer for processing.  The semantics used to
execute DSML models in the Synthesis layer involves comparing two
models at runtime: the model that is currently running (an empty model
if the system has just been started) and a new (updated) model
submitted by the user."

:class:`SynthesisEngine` also performs *model validation* before
synthesis (structural + DSK invariants) and optional *negotiation*
hooks (the CVM's SE "negotiates communication models with other
parties"; domains install a negotiator callable when relevant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.middleware.synthesis.comparator import ModelComparator
from repro.middleware.synthesis.dispatcher import Dispatcher
from repro.middleware.synthesis.interpreter import ChangeInterpreter, EntityRule
from repro.middleware.synthesis.scripts import ControlScript
from repro.modeling.constraints import ConstraintRegistry, validate_model
from repro.modeling.diff import ChangeList
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model
from repro.modeling.serialize import model_from_dict, model_to_dict
from repro.runtime.component import Component
from repro.runtime.events import Call

__all__ = ["SynthesisError", "SynthesisResult", "SynthesisEngine"]


class SynthesisError(Exception):
    """Raised on invalid models or failed synthesis."""


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis cycle."""

    script: ControlScript
    changes: ChangeList
    accepted_model: Model

    @property
    def no_op(self) -> bool:
        return self.changes.empty


class SynthesisEngine(Component):
    """Transforms user models into control scripts.

    Wire the ``downward`` port to the Controller layer to auto-submit
    produced scripts; without it, callers receive the script from
    :meth:`synthesize` and route it themselves (remote installation in
    the smart-spaces configuration).
    """

    def __init__(
        self,
        name: str = "synthesis",
        *,
        metamodel: Metamodel,
        constraints: ConstraintRegistry | None = None,
        strict: bool = False,
        compiled: bool = True,
        **kwargs: Any,
    ) -> None:
        super().__init__(name, **kwargs)
        self.metamodel = metamodel
        self.constraints = constraints if constraints is not None else ConstraintRegistry()
        self.comparator = ModelComparator(metamodel)
        self.interpreter = ChangeInterpreter(strict=strict, compiled=compiled)
        self.dispatcher = Dispatcher()
        #: optional negotiation hook: (new_model) -> new_model (possibly
        #: adjusted after negotiating with remote parties).
        self.negotiator: Callable[[Model], Model] | None = None
        #: Tier-3 regeneration hook (set by synthesis.aot.enable_aot):
        #: called after each completed cycle so a DSK edit that dropped
        #: the installed program is rebuilt once the edit has settled.
        self.aot_refresh: Callable[[], None] | None = None
        self.cycles = 0
        self.rejected = 0

    # -- DSK installation ---------------------------------------------------

    def add_rule(self, rule: EntityRule, *, replace: bool = False) -> EntityRule:
        return self.interpreter.add_rule(rule, replace=replace)

    def add_rules(self, rules: list[EntityRule]) -> None:
        for rule in rules:
            self.interpreter.add_rule(rule)

    # -- main cycle -------------------------------------------------------------

    def synthesize(
        self,
        new_model: Model,
        *,
        context: dict[str, Any] | None = None,
        submit: bool = True,
    ) -> SynthesisResult:
        """Run one synthesis cycle over a newly submitted user model.

        Steps: validate -> negotiate -> compare -> interpret -> promote
        -> (optionally) submit downward.
        """
        self.require_running()
        report = validate_model(new_model, self.constraints)
        if not report.ok:
            self.rejected += 1
            raise SynthesisError(
                f"model rejected: {len(report.errors)} validation error(s): "
                + "; ".join(str(d) for d in report.errors[:3])
            )
        if self.negotiator is not None:
            new_model = self.negotiator(new_model)
        self.metrics.count("synthesis.cycle", new_model.name)
        with self.metrics.time("synthesis.cycle", new_model.name, clock=self.clock):
            changes = self.comparator.compare(
                self.dispatcher.runtime_model, new_model
            )
            script = self.interpreter.interpret(
                changes,
                script_name=f"{self.name}:{new_model.name}",
                context=context,
            )
        script.source_model = new_model.name
        self.dispatcher.promote(new_model)
        self.cycles += 1
        if self.aot_refresh is not None:
            # Lazy Tier-3 regeneration: the cycle that carried a DSK
            # edit ran (partly) on Tier-2; rebuild the generated module
            # now that the edit has settled so later cycles return to
            # Tier-3.  No-op while the installed program is current.
            self.aot_refresh()
        if submit and not script.empty:
            downward = self.port_or_none("downward")
            if downward is not None:
                self._forward_script(downward, script)
        return SynthesisResult(
            script=script, changes=changes, accepted_model=new_model
        )

    def teardown_script(self, *, context: dict[str, Any] | None = None) -> SynthesisResult:
        """Synthesize the script that tears the running model down
        (compare runtime model against empty)."""
        self.require_running()
        empty = self.comparator.empty_model()
        changes = self.comparator.compare(self.dispatcher.runtime_model, empty)
        script = self.interpreter.interpret(
            changes, script_name=f"{self.name}:teardown", context=context
        )
        self.dispatcher.clear()
        self.interpreter.reset()
        self.cycles += 1
        downward = self.port_or_none("downward")
        if downward is not None and not script.empty:
            self._forward_script(downward, script)
        return SynthesisResult(script=script, changes=changes, accepted_model=empty)

    def _forward_script(self, downward: Any, script: ControlScript) -> None:
        """Forward a control script as a *call* signal (paper Sec. VI:
        layer-to-layer stimuli are signals), so downstream work is
        causally traceable back to the synthesis cycle.

        Three downward port shapes are supported, most specific first:

        * ``receive_signal`` (the in-process Controller facade): one
          script-level call carrying the whole script;
        * ``publish_batch`` (an :class:`~repro.runtime.events.EventBus`
          — distributed configurations route scripts over the fabric):
          the script-level call plus one causal child call per command,
          published as a single batch so the bus resolves the routing
          index once per topic instead of once per command;
        * ``submit_script`` (remote/stub controllers): the raw script,
          without trace parentage.
        """
        receive = getattr(downward, "receive_signal", None)
        if receive is not None:
            receive(self._script_call(script))
            return
        publish_batch = getattr(downward, "publish_batch", None)
        if publish_batch is not None:
            root = self._script_call(script)
            publish_batch(
                [root]
                + [
                    root.derive(
                        "synthesis.script.command",
                        payload={
                            "script_id": script.script_id,
                            "operation": command.operation,
                            "args": dict(command.args),
                            "classifier": command.classifier,
                            "target": command.target,
                            "guard": command.guard,
                        },
                    )
                    for command in script
                ]
            )
            return
        downward.submit_script(script)

    def _script_call(self, script: ControlScript) -> Call:
        return Call(
            topic="synthesis.script",
            payload={
                "script": script,
                "source_model": getattr(script, "source_model", ""),
            },
            origin=self.name,
        )

    # -- Controller events --------------------------------------------------------

    def handle_event(self, topic: str, payload: dict[str, Any]) -> int:
        return self.interpreter.handle_event(topic, payload)

    # -- externalization (PR 5) -----------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture the runtime model, interpreter state, and counters."""
        runtime_model = self.dispatcher.runtime_model
        return {
            "runtime_model": (
                model_to_dict(runtime_model)
                if runtime_model is not None
                else None
            ),
            "dispatches": self.dispatcher.dispatches,
            "interpreter": self.interpreter.externalize(),
            "cycles": self.cycles,
            "rejected": self.rejected,
        }

    def restore_external(self, doc: dict[str, Any]) -> None:
        """Apply a captured document; rules must already be installed.

        The restored runtime model is re-announced to dispatcher
        listeners (UI runtime view) but does not count as a dispatch —
        the counter is restored from the document instead.
        """
        model_doc = doc.get("runtime_model")
        model = (
            model_from_dict(model_doc, self.metamodel)
            if model_doc is not None
            else None
        )
        self.dispatcher.install(model, dispatches=int(doc.get("dispatches", 0)))
        self.interpreter.restore_external(doc.get("interpreter", {}))
        self.cycles = int(doc.get("cycles", 0))
        self.rejected = int(doc.get("rejected", 0))

    def stats(self) -> dict[str, Any]:
        return {
            "cycles": self.cycles,
            "rejected": self.rejected,
            "comparisons": self.comparator.comparisons,
            "changes_processed": self.interpreter.changes_processed,
            "commands_emitted": self.interpreter.commands_emitted,
        }
