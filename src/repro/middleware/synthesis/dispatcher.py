"""The dispatcher component of the Synthesis layer.

Paper Sec. V-A: "(3) dispatcher — dispatches a new runtime model to the
UI and updates the currently executing model."

The dispatcher owns the *runtime model* (the model currently in
execution).  After a synthesis cycle it promotes the accepted user
model to runtime model (a defensive deep copy, so later user edits
don't mutate it) and notifies UI-layer listeners.
"""

from __future__ import annotations

from typing import Callable

from repro.modeling.model import Model
from repro.modeling.serialize import clone_model

__all__ = ["Dispatcher"]


class Dispatcher:
    """Runtime-model ownership and UI notification."""

    def __init__(self) -> None:
        self._runtime_model: Model | None = None
        self._listeners: list[Callable[[Model], None]] = []
        self.dispatches = 0

    @property
    def runtime_model(self) -> Model | None:
        return self._runtime_model

    def on_model_update(self, listener: Callable[[Model], None]) -> None:
        """Register a UI-layer listener for runtime-model updates."""
        self._listeners.append(listener)

    def promote(self, accepted: Model) -> Model:
        """Install ``accepted`` as the new runtime model and notify."""
        self._runtime_model = clone_model(accepted)
        self.dispatches += 1
        for listener in list(self._listeners):
            listener(self._runtime_model)
        return self._runtime_model

    def clear(self) -> None:
        """Drop the runtime model (system reset)."""
        self._runtime_model = None
