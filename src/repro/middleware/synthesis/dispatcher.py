"""The dispatcher component of the Synthesis layer.

Paper Sec. V-A: "(3) dispatcher — dispatches a new runtime model to the
UI and updates the currently executing model."

The dispatcher owns the *runtime model* (the model currently in
execution).  After a synthesis cycle it promotes the accepted user
model to runtime model (a defensive deep copy, so later user edits
don't mutate it) and notifies UI-layer listeners.

Promotion is serialized behind a mutex: under the sharded runtime a
dispatcher may be promoted to from one shard thread while a merged
monitoring view (or a bridge on another shard) reads
``runtime_model`` — the clone/install/count triplet must be atomic so
readers never observe a half-promoted state or a torn dispatch count.
Listeners are invoked *outside* the lock, against the snapshot they
were notified for, so a slow listener cannot stall other shards.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.modeling.model import Model
from repro.modeling.serialize import clone_model

__all__ = ["Dispatcher"]


class Dispatcher:
    """Runtime-model ownership and UI notification."""

    def __init__(self) -> None:
        self._runtime_model: Model | None = None
        self._listeners: list[Callable[[Model], None]] = []
        self._lock = threading.Lock()
        self.dispatches = 0

    @property
    def runtime_model(self) -> Model | None:
        return self._runtime_model

    def on_model_update(self, listener: Callable[[Model], None]) -> None:
        """Register a UI-layer listener for runtime-model updates."""
        with self._lock:
            self._listeners.append(listener)

    def promote(self, accepted: Model) -> Model:
        """Install ``accepted`` as the new runtime model and notify."""
        promoted = clone_model(accepted)
        with self._lock:
            self._runtime_model = promoted
            self.dispatches += 1
            listeners = list(self._listeners)
        for listener in listeners:
            listener(promoted)
        return promoted

    def clear(self) -> None:
        """Drop the runtime model (system reset)."""
        with self._lock:
            self._runtime_model = None

    def install(self, model: Model | None, *, dispatches: int | None = None) -> None:
        """Install a restored runtime model without counting a dispatch.

        Used by session restore (PR 5): the model was already promoted
        once in the source session, so only the listener notification is
        replayed — the UI's runtime view must track the restored model.
        """
        with self._lock:
            self._runtime_model = model
            if dispatches is not None:
                self.dispatches = dispatches
            listeners = list(self._listeners)
        if model is not None:
            for listener in listeners:
                listener(model)
