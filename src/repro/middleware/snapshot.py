"""Session snapshots: externalized whole-platform state (PR 5).

The paper's premise is that the middleware and its applications *are
models*; this module makes the remaining live state a model artifact
too.  A :class:`SessionSnapshot` is a versioned, JSON-serializable
document capturing everything a platform needs to resume exactly where
it left off:

* the middleware model (including reflective additions mirrored into
  it at runtime),
* per-layer state documents from the ``externalize()`` protocol
  (:mod:`repro.runtime.external`): UI workspace models, the synthesis
  runtime model + live LTS executions, controller context, and the
  broker's state manager / breaker / autonomic surface.

Two restore paths exist, mirroring the two failure modes:

* :meth:`Platform.restore_from` (via :func:`apply_snapshot`) applies a
  snapshot onto an already-built, *compatible* platform — the
  supervised-restart path, where the crashed layer objects survive and
  only their state was reset.
* :func:`restore_platform` rebuilds the whole platform from the
  snapshot's middleware model via the loader and then applies the
  state documents — the migration/cold-recovery path, where nothing
  but the snapshot (plus the domain's DSK callables) crosses the gap.

:class:`CheckpointScheduler` takes periodic snapshots on the clock's
timer queue and, wired to a :class:`~repro.runtime.component.Supervisor`,
re-applies the latest one after a supervised restart so the session
resumes from its checkpoint instead of cold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.modeling.serialize import (
    SerializationError,
    check_envelope,
    model_from_dict,
    model_to_dict,
)
from repro.runtime.external import ExternalizeError

if TYPE_CHECKING:
    from repro.middleware.loader import DomainKnowledge
    from repro.middleware.platform import Platform
    from repro.runtime.clock import Clock
    from repro.runtime.component import Component, Supervisor
    from repro.runtime.events import EventBus
    from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SessionSnapshot",
    "capture_snapshot",
    "apply_snapshot",
    "restore_platform",
    "CheckpointScheduler",
    "DurableSession",
    "RecoveryReport",
    "recover_session",
]

#: envelope identifying serialized session snapshots.
SNAPSHOT_FORMAT = "repro-session"
SNAPSHOT_VERSION = 1


@dataclass
class SessionSnapshot:
    """A captured session: middleware model + per-layer state docs."""

    name: str
    domain: str
    middleware_model: dict[str, Any]
    layers: dict[str, dict[str, Any]] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SNAPSHOT_FORMAT,
            "version": self.version,
            "name": self.name,
            "domain": self.domain,
            "middleware_model": self.middleware_model,
            "layers": self.layers,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SessionSnapshot":
        version = check_envelope(
            doc, expected_format=SNAPSHOT_FORMAT, max_version=SNAPSHOT_VERSION
        )
        try:
            return cls(
                name=str(doc["name"]),
                domain=str(doc["domain"]),
                middleware_model=dict(doc["middleware_model"]),
                layers={
                    key: dict(value)
                    for key, value in dict(doc.get("layers", {})).items()
                },
                version=version,
            )
        except KeyError as exc:
            raise SerializationError(
                f"session snapshot missing required key {exc}"
            ) from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SessionSnapshot":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise SerializationError("top-level JSON value must be an object")
        return cls.from_dict(doc)


# -- capture ---------------------------------------------------------------


def _layer_digest(doc: dict[str, Any]) -> int:
    """Order-stable digest of one externalized layer doc."""
    import zlib

    return zlib.crc32(
        json.dumps(doc, sort_keys=True, default=repr).encode("utf-8")
    )


def capture_snapshot(
    platform: "Platform", *, dirty_only: bool = False
) -> SessionSnapshot:
    """Externalize a platform's full mutable state.

    Capture is cheap enough to run on the hot path's shard thread (the
    benchmark gate holds it under 5% of E1 when idle) and must happen
    on that thread under the sharded runtime — the capture itself is
    the quiesce point.

    ``dirty_only=True`` captures a *delta*: only layers whose
    externalized doc changed since the previous digest baseline on this
    platform (set by the last ``dirty_only`` capture, or explicitly by
    a :class:`CheckpointScheduler` after a full checkpoint) are kept in
    ``layers``.  The envelope (name/domain/middleware model) is always
    full, so the result folds onto any earlier full snapshot by layer
    union.
    """
    layers: dict[str, dict[str, Any]] = {}
    if platform.ui is not None:
        layers["ui"] = platform.ui.externalize()
    if platform.synthesis is not None:
        layers["synthesis"] = platform.synthesis.externalize()
    if platform.controller is not None:
        layers["controller"] = platform.controller.externalize()
    if platform.broker is not None:
        layers["broker"] = platform.broker.externalize()
    if dirty_only:
        digests = {name: _layer_digest(doc) for name, doc in layers.items()}
        baseline = getattr(platform, "_checkpoint_digests", None) or {}
        layers = {
            name: doc
            for name, doc in layers.items()
            if baseline.get(name) != digests[name]
        }
        platform._checkpoint_digests = digests  # type: ignore[attr-defined]
    return SessionSnapshot(
        name=platform.name,
        domain=platform.domain,
        middleware_model=model_to_dict(platform.middleware_model),
        layers=layers,
    )


# -- restore ---------------------------------------------------------------


def _apply_layer_docs(
    platform: "Platform", layers: dict[str, dict[str, Any]]
) -> None:
    if platform.broker is not None and "broker" in layers:
        platform.broker.restore_external(
            layers["broker"], metamodel=platform.dsml
        )
    if platform.controller is not None and "controller" in layers:
        platform.controller.restore_external(layers["controller"])
    if platform.synthesis is not None and "synthesis" in layers:
        platform.synthesis.restore_external(layers["synthesis"])
    if platform.ui is not None and "ui" in layers:
        platform.ui.restore_external(layers["ui"])


def apply_snapshot(platform: "Platform", snapshot: SessionSnapshot) -> "Platform":
    """Apply a snapshot's layer state onto a compatible platform.

    The platform must be started (dispatcher listeners and the
    controller's stack machine only exist then) and of the same domain.
    Layers restore bottom-up so upper-layer re-announcements (the
    synthesis dispatcher notifying the UI runtime view) land on
    already-consistent lower layers.

    Restore is all-or-nothing: the pre-restore state is captured first
    and rolled back if a layer fails partway, re-raising the original
    error with the platform still consistent.  If even the rollback
    fails, ``platform.failed`` is set so supervisors/pools refuse to
    route into a half-restored session and instead retry from the
    snapshot.
    """
    if snapshot.domain != platform.domain:
        raise ExternalizeError(
            f"snapshot of domain {snapshot.domain!r} cannot restore a "
            f"{platform.domain!r} platform"
        )
    if not platform.started:
        raise ExternalizeError(
            f"platform {platform.name!r} must be started before restore "
            f"(layer machinery is built on start)"
        )
    try:
        rollback = capture_snapshot(platform)
    except Exception:  # noqa: BLE001 - capture failure ≠ restore failure
        rollback = None
    try:
        _apply_layer_docs(platform, snapshot.layers)
    except Exception as exc:
        if rollback is None:
            platform.failed = True
            raise
        try:
            _apply_layer_docs(platform, rollback.layers)
        except Exception:  # noqa: BLE001 - double fault: mark and surface
            platform.failed = True
            raise ExternalizeError(
                f"restore of {platform.name!r} failed mid-layer and "
                f"rollback also failed; platform marked failed for "
                f"supervised retry from the snapshot"
            ) from exc
        raise  # rolled back: surface the original error, state consistent
    platform.failed = False
    return platform


def restore_platform(
    snapshot: SessionSnapshot,
    dsk: "DomainKnowledge",
    *,
    bus: "EventBus | None" = None,
    clock: "Clock | None" = None,
    metrics: "MetricsRegistry | None" = None,
    aot: bool = False,
    aot_cache_dir: str | None = None,
) -> "Platform":
    """Rebuild a platform from a snapshot (migration / cold recovery).

    The middleware model travels inside the snapshot — including any
    reflective additions mirrored into it — so the loader rebuilds the
    exact layer configuration the source session was running.  ``dsk``
    supplies the non-serializable domain knowledge (metamodel object,
    resource instances, Python-implemented actions); it must be the
    same DSK the source session was loaded with.

    ``aot=True`` re-enables the Tier-3 generated module *after* the
    snapshot is applied — restore may re-install dynamic broker
    actions, so the module is compiled from the fully restored DSK.
    ``aot_cache_dir`` serves that compile from the disk cache keyed by
    ``DSK_HASH`` when warm — the cluster-worker cold-restore path,
    where a worker restores from snapshot + DSK hash alone and loads
    the pregenerated module instead of regenerating.
    """
    from repro.middleware.loader import load_platform
    from repro.middleware.metamodel import middleware_metamodel

    model = model_from_dict(snapshot.middleware_model, middleware_metamodel())
    platform = load_platform(
        model, dsk, bus=bus, clock=clock, metrics=metrics, start=True
    )
    try:
        restored = apply_snapshot(platform, snapshot)
        if aot and restored.synthesis is not None:
            restored.enable_aot(cache_dir=aot_cache_dir)
        return restored
    except Exception:
        # Never leak a started half-restored platform: tear it down so
        # its bus subscriptions and resources are released before the
        # caller retries from the snapshot.
        try:
            platform.stop()
        except Exception:  # noqa: BLE001 - teardown is best-effort
            pass
        raise


# -- periodic checkpointing -------------------------------------------------


class CheckpointScheduler:
    """Periodic platform checkpoints + supervised warm recovery.

    On clocks with a timer queue (:class:`~repro.runtime.clock.VirtualClock`)
    ticks self-schedule through ``clock.call_later``; on plain wall
    clocks the owner drives :meth:`tick` explicitly (e.g. between
    workload steps), keeping the hot path free of timer threads.

    :meth:`attach` wires the scheduler to a supervisor: after any
    successful supervised restart the latest snapshot is re-applied to
    the platform, turning a cold restart into a resume-from-checkpoint.
    """

    def __init__(
        self,
        platform: "Platform",
        *,
        interval: float = 1.0,
        clock: "Clock | None" = None,
        on_checkpoint: Callable[[SessionSnapshot], None] | None = None,
        wal: Any = None,
        session: str | None = None,
        apply_entry: Callable[[Any, Any], Any] | None = None,
        delta: bool = False,
        full_every: int = 8,
    ) -> None:
        if interval <= 0:
            raise ValueError("checkpoint interval must be > 0")
        self.platform = platform
        self.interval = interval
        self.clock = clock or platform.clock
        self.on_checkpoint = on_checkpoint
        #: optional WriteAheadLog: ticks become durable checkpoint
        #: frames (snapshot-then-truncate) and supervised recovery
        #: upgrades to restore-latest-snapshot + replay-tail.
        self.wal = wal
        self.session = session if session is not None else platform.name
        self.apply_entry = apply_entry
        #: delta mode (PR 10): between full checkpoints, ticks write
        #: dirty-layer-only delta frames (no rotation/truncation);
        #: every ``full_every``-th tick promotes to a full checkpoint
        #: so the truncation floor keeps advancing.
        self.delta = bool(delta)
        self.full_every = max(1, int(full_every))
        self.delta_checkpoints = 0
        self.delta_skipped = 0
        self._ticks_since_full = 0
        self.last_snapshot: SessionSnapshot | None = None
        self.last_recovery: "RecoveryReport | None" = None
        self.checkpoints_taken = 0
        self.checkpoint_errors = 0
        self.last_error: Exception | None = None
        self.recoveries = 0
        self._running = False
        #: epoch fences stale timers: stop()/start() bump it, so a
        #: timer armed by an earlier life of the scheduler (e.g. before
        #: a restore) fires as a no-op instead of double-arming ticks.
        self._epoch = 0
        self._timer: Any = None

    # -- ticking -----------------------------------------------------------

    def start(self) -> "CheckpointScheduler":
        if self._running:
            return self
        self._running = True
        self._epoch += 1
        self._schedule()
        return self

    def stop(self) -> "CheckpointScheduler":
        self._running = False
        self._epoch += 1
        timer, self._timer = self._timer, None
        if timer is not None and hasattr(timer, "cancel"):
            timer.cancel()
        return self

    @property
    def running(self) -> bool:
        return self._running

    def _schedule(self) -> None:
        schedule = getattr(self.clock, "call_later", None)
        if callable(schedule):
            epoch = self._epoch
            self._timer = schedule(self.interval, lambda: self._fire(epoch))

    def _fire(self, epoch: int | None = None) -> None:
        if not self._running:
            return
        if epoch is not None and epoch != self._epoch:
            return  # stale timer from a previous start(); do not double-arm
        try:
            self.tick()
        except Exception as exc:  # noqa: BLE001 - one bad tick must not
            # kill the schedule chain (all future checkpoints); record
            # and keep ticking.
            self.checkpoint_errors += 1
            self.last_error = exc
        finally:
            if self._running and (epoch is None or epoch == self._epoch):
                self._schedule()

    def tick(self) -> SessionSnapshot:
        """Take one checkpoint now (also the manual-drive entry point)."""
        use_delta = (
            self.delta
            and self.last_snapshot is not None
            and self._ticks_since_full < self.full_every
        )
        if use_delta:
            delta_snapshot = capture_snapshot(self.platform, dirty_only=True)
            self._ticks_since_full += 1
            if delta_snapshot.layers and self.wal is not None:
                self.wal.checkpoint(
                    delta_snapshot.to_dict(), session=self.session, delta=True
                )
                self.delta_checkpoints += 1
            elif not delta_snapshot.layers:
                self.delta_skipped += 1
            # fold onto the last full snapshot so warm supervised
            # recovery (_on_restarted) still re-applies *every* layer —
            # a clean layer may have drifted after a crash.
            assert self.last_snapshot is not None
            folded = SessionSnapshot(
                name=delta_snapshot.name,
                domain=delta_snapshot.domain,
                middleware_model=delta_snapshot.middleware_model,
                layers={**self.last_snapshot.layers, **delta_snapshot.layers},
            )
            self.last_snapshot = folded
            self.checkpoints_taken += 1
            if self.on_checkpoint is not None:
                self.on_checkpoint(folded)
            return folded
        snapshot = capture_snapshot(self.platform)
        if self.wal is not None:
            # Durable snapshot-then-truncate: the checkpoint frame
            # records the position it covers and older segments drop.
            self.wal.checkpoint(snapshot.to_dict(), session=self.session)
        if self.delta:
            # reset the dirty baseline to this full checkpoint.
            self.platform._checkpoint_digests = {  # type: ignore[attr-defined]
                name: _layer_digest(doc)
                for name, doc in snapshot.layers.items()
            }
            self._ticks_since_full = 0
        self.last_snapshot = snapshot
        self.checkpoints_taken += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(snapshot)
        return snapshot

    # -- supervised recovery ---------------------------------------------------

    def attach(self, supervisor: "Supervisor") -> "CheckpointScheduler":
        """Re-apply the latest checkpoint after supervised restarts."""
        supervisor.on_restarted = self._on_restarted
        return self

    def _on_restarted(self, component: "Component") -> None:
        if (
            self.wal is not None
            and self.apply_entry is not None
            and self.last_snapshot is not None
        ):
            # Exactly-once warm recovery: restore the latest durable
            # checkpoint, then replay the WAL tail with memoized
            # external effects and (trace_id, seq) dedup.
            self.last_recovery = recover_session(
                self.wal,
                session=self.session,
                apply_entry=self.apply_entry,
                platform=self.platform,
            )
            self.recoveries += 1
            return
        if self.last_snapshot is None:
            return
        # A layer restart resets only that layer's state, but the
        # snapshot is whole-session and idempotent — re-applying it
        # across all layers is the simplest consistent recovery.
        apply_snapshot(self.platform, self.last_snapshot)
        self.recoveries += 1


# -- durable sessions (write-ahead log + exactly-once recovery) -------------


@dataclass
class RecoveryReport:
    """What :func:`recover_session` did: the restored platform, the
    checkpoint it started from, and the tail it replayed."""

    platform: "Platform"
    snapshot: SessionSnapshot | None
    replayed_entries: int = 0
    deduplicated: int = 0
    effects_memoized: int = 0
    effects_live: int = 0
    errors: list[tuple[int, Exception]] = field(default_factory=list)
    journal: Any = None


def recover_session(
    wal: Any,
    *,
    session: str,
    apply_entry: Callable[["Platform", Any], Any],
    platform: "Platform | None" = None,
    dsk: "DomainKnowledge | None" = None,
    bus: "EventBus | None" = None,
    clock: "Clock | None" = None,
    metrics: "MetricsRegistry | None" = None,
    checkpoint_session: str | None = None,
) -> RecoveryReport:
    """Restore-latest-snapshot + replay-tail from a write-ahead log.

    Scans ``wal`` for ``session``'s latest ``checkpoint`` frame and the
    ``entry``/``applied`` frames after it, then:

    1. restores the checkpoint — onto the given warm ``platform``, or
       by rebuilding one from the embedded snapshot via
       :func:`restore_platform` (requires ``dsk``);
    2. replays each tail entry through ``apply_entry(platform, signal)``
       with an :class:`~repro.runtime.wal.EffectJournal` installed on
       the broker, so external operations whose outcomes were recorded
       return memoized results instead of re-executing — and entries
       are deduplicated by ``(trace_id, seq)``.  Delivery is therefore
       exactly-once even though the log is written at-least-once.

    If the log holds no checkpoint for the session, a warm ``platform``
    is assumed to be at log-start state and the *whole* entry sequence
    replays (cold bootstrap); without a platform this raises
    :class:`~repro.runtime.wal.WalError`.

    Entries whose replay raises are recorded in ``report.errors`` and
    recovery continues — an entry that failed identically before the
    crash must not wedge the session forever.

    ``checkpoint_session`` names the log session whose checkpoint
    frames act as this session's restore barrier — the shard-level
    case (PR 10), where one platform hosts many sessions and the
    :class:`CheckpointScheduler` checkpoints under the platform's name
    with ``cover_all``.  Checkpoint frames marked ``covers_all`` are
    honored regardless.
    """
    from repro.runtime.events import advance_signal_seq
    from repro.runtime.wal import (
        EffectJournal,
        WalError,
        signal_from_doc,
    )

    checkpoint_doc: dict[str, Any] | None = None
    entries: list[dict[str, Any]] = []
    effects: dict[int, list[list[Any]]] = {}
    applied: set[int] = set()
    max_seq = 0
    ckpt_owner = session if checkpoint_session is None else checkpoint_session
    for _position, doc in wal.replay():
        kind = doc.get("k")
        owner = str(doc.get("session", ""))
        if kind == "checkpoint":
            if owner not in (session, ckpt_owner) and not doc.get(
                "covers_all"
            ):
                continue
        elif owner != session:
            continue
        if kind == "checkpoint":
            if doc.get("delta"):
                # Dirty-layer delta: folds onto the latest full
                # checkpoint by layer union.  A delta with no base
                # (base truncated away, or an imported partial tail) is
                # skipped — the entries it covered are still in the
                # scan and will replay instead.
                if checkpoint_doc is None:
                    continue
                base = dict(checkpoint_doc["snapshot"])
                merged = dict(base.get("layers", {}))
                merged.update(doc["snapshot"].get("layers", {}))
                base["layers"] = merged
                checkpoint_doc = {**checkpoint_doc, "snapshot": base}
            else:
                checkpoint_doc = doc
            entries.clear()
            effects.clear()
            applied.clear()
        elif kind == "entry":
            entries.append(doc["sig"])
            max_seq = max(max_seq, int(doc["sig"].get("seq", 0)))
        elif kind == "applied":
            seq = int(doc["entry_seq"])
            applied.add(seq)
            sealed = doc.get("effects")
            if sealed:
                effects[seq] = sealed
        elif kind == "effect":
            # tolerant reader: frame-per-effect layout from older logs,
            # normalized to the sealed record shape ([label, "ok",
            # value] / [label, "error", type, message]).
            record = (
                [doc.get("label"), "ok", doc.get("value")]
                if doc.get("status") == "ok"
                else [
                    doc.get("label"),
                    "error",
                    str(doc.get("error_type", "Exception")),
                    str(doc.get("error", "")),
                ]
            )
            effects.setdefault(int(doc["entry_seq"]), []).append(record)

    snapshot: SessionSnapshot | None = None
    if checkpoint_doc is not None:
        snapshot = SessionSnapshot.from_dict(checkpoint_doc["snapshot"])
    if platform is None:
        if snapshot is None:
            raise WalError(
                f"no checkpoint for session {session!r} in {wal!r} and "
                f"no warm platform to replay onto"
            )
        if dsk is None:
            raise WalError(
                "cold recovery needs the domain's DSK to rebuild the "
                "platform from the snapshot"
            )
        platform = restore_platform(
            snapshot, dsk, bus=bus, clock=clock, metrics=metrics
        )
    elif snapshot is not None:
        apply_snapshot(platform, snapshot)

    if max_seq:
        advance_signal_seq(max_seq)
    journal = EffectJournal(wal, session=session)
    if platform.broker is not None:
        platform.broker.resources.install_effect_journal(journal)
    report = RecoveryReport(platform=platform, snapshot=snapshot, journal=journal)
    seen: set[tuple[int, int]] = set()
    for sig_doc in entries:
        signal = signal_from_doc(sig_doc)
        key = (signal.trace_id, signal.seq)
        if key in seen:
            report.deduplicated += 1
            continue
        seen.add(key)
        journal.begin_entry(
            signal,
            recorded_effects=effects.get(signal.seq),
            already_applied=signal.seq in applied,
        )
        error: Exception | None = None
        try:
            apply_entry(platform, signal)
        except Exception as exc:  # noqa: BLE001 - deterministic re-raise
            error = exc
        try:
            journal.end_entry()
        except WalError as exc:
            error = error if error is not None else exc
        if error is not None:
            report.errors.append((signal.seq, error))
        report.replayed_entries += 1
    report.effects_memoized = journal.replayed
    report.effects_live = journal.recorded
    return report


class DurableSession:
    """Write-ahead logging wrapper for one platform session.

    Every unit of work enters through :meth:`execute`: the entry signal
    is appended to the log *before* it is applied (write-ahead), the
    broker's external operations are memoized while it runs, and an
    ``applied`` frame seals the entry with its recorded effects.  :meth:`checkpoint`
    embeds a full snapshot and truncates covered segments.  After a
    crash, :func:`recover_session` (or
    :meth:`DurableSession.recover`) rebuilds the exact pre-crash state
    with external effects executed exactly once.
    """

    def __init__(
        self,
        platform: "Platform",
        wal: Any,
        *,
        session: str | None = None,
        journal: Any = None,
    ) -> None:
        from repro.runtime.wal import EffectJournal

        self.platform = platform
        self.wal = wal
        self.session = session if session is not None else platform.name
        self.journal = (
            journal
            if journal is not None
            else EffectJournal(wal, session=self.session)
        )
        if platform.broker is not None:
            platform.broker.resources.install_effect_journal(self.journal)
        self.entries_logged = 0

    def execute(
        self,
        entry_doc: dict[str, Any],
        apply_entry: Callable[["Platform", Any], Any],
        *,
        topic: str = "session.entry",
    ) -> Any:
        """Durably log ``entry_doc`` then apply it.

        ``apply_entry(platform, signal)`` receives the logged entry
        signal (payload = ``entry_doc``) — the same callable is handed
        to :func:`recover_session` so replay re-runs identical code.
        """
        # the payload aliases entry_doc: it is encoded into the log by
        # log_call, and apply_entry receives the same dict the caller
        # handed in.
        journal = self.journal
        signal = journal.log_call(topic, entry_doc)
        self.entries_logged += 1
        try:
            return apply_entry(self.platform, signal)
        finally:
            journal.end_entry()

    def checkpoint(self) -> SessionSnapshot:
        snapshot = capture_snapshot(self.platform)
        self.wal.checkpoint(snapshot.to_dict(), session=self.session)
        return snapshot

    def close(self) -> None:
        """Detach from the log (drops the session from the truncation
        floor; the platform itself is left to its owner)."""
        self.wal.forget_session(self.session)
        if self.platform.broker is not None:
            self.platform.broker.resources.install_effect_journal(None)

    @classmethod
    def recover(
        cls,
        wal: Any,
        *,
        session: str,
        apply_entry: Callable[["Platform", Any], Any],
        dsk: "DomainKnowledge | None" = None,
        platform: "Platform | None" = None,
        bus: "EventBus | None" = None,
        clock: "Clock | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> tuple["DurableSession", RecoveryReport]:
        """Rebuild a durable session from its log after a crash."""
        report = recover_session(
            wal,
            session=session,
            apply_entry=apply_entry,
            platform=platform,
            dsk=dsk,
            bus=bus,
            clock=clock,
            metrics=metrics,
        )
        durable = cls(
            report.platform, wal, session=session, journal=report.journal
        )
        return durable, report
