"""Session snapshots: externalized whole-platform state (PR 5).

The paper's premise is that the middleware and its applications *are
models*; this module makes the remaining live state a model artifact
too.  A :class:`SessionSnapshot` is a versioned, JSON-serializable
document capturing everything a platform needs to resume exactly where
it left off:

* the middleware model (including reflective additions mirrored into
  it at runtime),
* per-layer state documents from the ``externalize()`` protocol
  (:mod:`repro.runtime.external`): UI workspace models, the synthesis
  runtime model + live LTS executions, controller context, and the
  broker's state manager / breaker / autonomic surface.

Two restore paths exist, mirroring the two failure modes:

* :meth:`Platform.restore_from` (via :func:`apply_snapshot`) applies a
  snapshot onto an already-built, *compatible* platform — the
  supervised-restart path, where the crashed layer objects survive and
  only their state was reset.
* :func:`restore_platform` rebuilds the whole platform from the
  snapshot's middleware model via the loader and then applies the
  state documents — the migration/cold-recovery path, where nothing
  but the snapshot (plus the domain's DSK callables) crosses the gap.

:class:`CheckpointScheduler` takes periodic snapshots on the clock's
timer queue and, wired to a :class:`~repro.runtime.component.Supervisor`,
re-applies the latest one after a supervised restart so the session
resumes from its checkpoint instead of cold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.modeling.serialize import (
    SerializationError,
    check_envelope,
    model_from_dict,
    model_to_dict,
)
from repro.runtime.external import ExternalizeError

if TYPE_CHECKING:
    from repro.middleware.loader import DomainKnowledge
    from repro.middleware.platform import Platform
    from repro.runtime.clock import Clock
    from repro.runtime.component import Component, Supervisor
    from repro.runtime.events import EventBus
    from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "SessionSnapshot",
    "capture_snapshot",
    "apply_snapshot",
    "restore_platform",
    "CheckpointScheduler",
]

#: envelope identifying serialized session snapshots.
SNAPSHOT_FORMAT = "repro-session"
SNAPSHOT_VERSION = 1


@dataclass
class SessionSnapshot:
    """A captured session: middleware model + per-layer state docs."""

    name: str
    domain: str
    middleware_model: dict[str, Any]
    layers: dict[str, dict[str, Any]] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SNAPSHOT_FORMAT,
            "version": self.version,
            "name": self.name,
            "domain": self.domain,
            "middleware_model": self.middleware_model,
            "layers": self.layers,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SessionSnapshot":
        version = check_envelope(
            doc, expected_format=SNAPSHOT_FORMAT, max_version=SNAPSHOT_VERSION
        )
        try:
            return cls(
                name=str(doc["name"]),
                domain=str(doc["domain"]),
                middleware_model=dict(doc["middleware_model"]),
                layers={
                    key: dict(value)
                    for key, value in dict(doc.get("layers", {})).items()
                },
                version=version,
            )
        except KeyError as exc:
            raise SerializationError(
                f"session snapshot missing required key {exc}"
            ) from exc

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SessionSnapshot":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise SerializationError("top-level JSON value must be an object")
        return cls.from_dict(doc)


# -- capture ---------------------------------------------------------------


def capture_snapshot(platform: "Platform") -> SessionSnapshot:
    """Externalize a platform's full mutable state.

    Capture is cheap enough to run on the hot path's shard thread (the
    benchmark gate holds it under 5% of E1 when idle) and must happen
    on that thread under the sharded runtime — the capture itself is
    the quiesce point.
    """
    layers: dict[str, dict[str, Any]] = {}
    if platform.ui is not None:
        layers["ui"] = platform.ui.externalize()
    if platform.synthesis is not None:
        layers["synthesis"] = platform.synthesis.externalize()
    if platform.controller is not None:
        layers["controller"] = platform.controller.externalize()
    if platform.broker is not None:
        layers["broker"] = platform.broker.externalize()
    return SessionSnapshot(
        name=platform.name,
        domain=platform.domain,
        middleware_model=model_to_dict(platform.middleware_model),
        layers=layers,
    )


# -- restore ---------------------------------------------------------------


def apply_snapshot(platform: "Platform", snapshot: SessionSnapshot) -> "Platform":
    """Apply a snapshot's layer state onto a compatible platform.

    The platform must be started (dispatcher listeners and the
    controller's stack machine only exist then) and of the same domain.
    Layers restore bottom-up so upper-layer re-announcements (the
    synthesis dispatcher notifying the UI runtime view) land on
    already-consistent lower layers.
    """
    if snapshot.domain != platform.domain:
        raise ExternalizeError(
            f"snapshot of domain {snapshot.domain!r} cannot restore a "
            f"{platform.domain!r} platform"
        )
    if not platform.started:
        raise ExternalizeError(
            f"platform {platform.name!r} must be started before restore "
            f"(layer machinery is built on start)"
        )
    layers = snapshot.layers
    if platform.broker is not None and "broker" in layers:
        platform.broker.restore_external(
            layers["broker"], metamodel=platform.dsml
        )
    if platform.controller is not None and "controller" in layers:
        platform.controller.restore_external(layers["controller"])
    if platform.synthesis is not None and "synthesis" in layers:
        platform.synthesis.restore_external(layers["synthesis"])
    if platform.ui is not None and "ui" in layers:
        platform.ui.restore_external(layers["ui"])
    return platform


def restore_platform(
    snapshot: SessionSnapshot,
    dsk: "DomainKnowledge",
    *,
    bus: "EventBus | None" = None,
    clock: "Clock | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> "Platform":
    """Rebuild a platform from a snapshot (migration / cold recovery).

    The middleware model travels inside the snapshot — including any
    reflective additions mirrored into it — so the loader rebuilds the
    exact layer configuration the source session was running.  ``dsk``
    supplies the non-serializable domain knowledge (metamodel object,
    resource instances, Python-implemented actions); it must be the
    same DSK the source session was loaded with.
    """
    from repro.middleware.loader import load_platform
    from repro.middleware.metamodel import middleware_metamodel

    model = model_from_dict(snapshot.middleware_model, middleware_metamodel())
    platform = load_platform(
        model, dsk, bus=bus, clock=clock, metrics=metrics, start=True
    )
    return apply_snapshot(platform, snapshot)


# -- periodic checkpointing -------------------------------------------------


class CheckpointScheduler:
    """Periodic platform checkpoints + supervised warm recovery.

    On clocks with a timer queue (:class:`~repro.runtime.clock.VirtualClock`)
    ticks self-schedule through ``clock.call_later``; on plain wall
    clocks the owner drives :meth:`tick` explicitly (e.g. between
    workload steps), keeping the hot path free of timer threads.

    :meth:`attach` wires the scheduler to a supervisor: after any
    successful supervised restart the latest snapshot is re-applied to
    the platform, turning a cold restart into a resume-from-checkpoint.
    """

    def __init__(
        self,
        platform: "Platform",
        *,
        interval: float = 1.0,
        clock: "Clock | None" = None,
        on_checkpoint: Callable[[SessionSnapshot], None] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("checkpoint interval must be > 0")
        self.platform = platform
        self.interval = interval
        self.clock = clock or platform.clock
        self.on_checkpoint = on_checkpoint
        self.last_snapshot: SessionSnapshot | None = None
        self.checkpoints_taken = 0
        self.recoveries = 0
        self._running = False

    # -- ticking -----------------------------------------------------------

    def start(self) -> "CheckpointScheduler":
        if self._running:
            return self
        self._running = True
        self._schedule()
        return self

    def stop(self) -> "CheckpointScheduler":
        self._running = False
        return self

    @property
    def running(self) -> bool:
        return self._running

    def _schedule(self) -> None:
        schedule = getattr(self.clock, "call_later", None)
        if callable(schedule):
            schedule(self.interval, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.tick()
        self._schedule()

    def tick(self) -> SessionSnapshot:
        """Take one checkpoint now (also the manual-drive entry point)."""
        snapshot = capture_snapshot(self.platform)
        self.last_snapshot = snapshot
        self.checkpoints_taken += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(snapshot)
        return snapshot

    # -- supervised recovery ---------------------------------------------------

    def attach(self, supervisor: "Supervisor") -> "CheckpointScheduler":
        """Re-apply the latest checkpoint after supervised restarts."""
        supervisor.on_restarted = self._on_restarted
        return self

    def _on_restarted(self, component: "Component") -> None:
        if self.last_snapshot is None:
            return
        # A layer restart resets only that layer's state, but the
        # snapshot is whole-session and idempotent — re-applying it
        # across all layers is the simplest consistent recovery.
        apply_snapshot(self.platform, self.last_snapshot)
        self.recoveries += 1
