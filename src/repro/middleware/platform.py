"""The assembled MD-DSM platform.

A :class:`Platform` is the realized middleware instance for one domain:
the four reference-architecture layers wired together (paper Sec. III),
with the *layer suppression* variants of Secs. IV-C/IV-D supported by
simply omitting layers (2SVM controller node: top three layers; smart
object node: bottom two; CSVM provider: bottom three).

The platform also exposes the models@runtime reflection loop
(Sec. III): :meth:`reflect` returns the live middleware model;
:meth:`apply_reflection` accepts an edited copy, diffs it against the
live model, and applies the supported change classes (adding policies,
procedures, classifiers, actions) "at runtime with immediate effect".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.middleware.broker.layer import BrokerLayer
from repro.middleware.controller.layer import ControllerLayer, ScriptOutcome
from repro.middleware.synthesis.engine import SynthesisEngine, SynthesisResult
from repro.middleware.synthesis.scripts import ControlScript
from repro.middleware.ui import ModelWorkspace
from repro.modeling.diff import diff_models
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject
from repro.modeling.serialize import clone_model, clone_object
from repro.runtime.clock import Clock, WallClock
from repro.runtime.durability import DurabilityPolicy
from repro.runtime.events import EventBus
from repro.runtime.metrics import MetricsRegistry, default_registry
from repro.runtime.sharded import Shard, ShardedRuntime

__all__ = ["PlatformError", "Platform", "PlatformPool", "emit_event"]


def emit_event(spec: dict, key: str, signal: Any = None) -> Any:
    """Build the :class:`Event` for one ``doc["emit"]`` directive.

    Derived from ``signal`` (the step's write-ahead entry) when given —
    same ``trace_id``, ``parent_seq`` = the entry's seq — else a fresh
    trace root.  Shared by the live fabric path
    (:meth:`PlatformPool.submit_doc`) and the replayer
    (:func:`repro.bench.wal.apply_entry`), which is what makes a
    logged emission structurally reproducible under replay.
    """
    from repro.runtime.events import Event

    topic = str(spec.get("topic", "session.emit"))
    payload = dict(spec.get("payload") or {})
    if signal is None:
        return Event(topic=topic, payload=payload, origin=key)
    return Event(
        topic=topic,
        payload=payload,
        origin=key,
        trace_id=signal.trace_id,
        parent_seq=signal.seq,
    )


class PlatformError(Exception):
    """Raised on invalid platform operations."""


class Platform:
    """A running middleware instance for one application domain."""

    def __init__(
        self,
        name: str,
        domain: str,
        *,
        middleware_model: Model,
        dsml: Metamodel,
        ui: ModelWorkspace | None = None,
        synthesis: SynthesisEngine | None = None,
        controller: ControllerLayer | None = None,
        broker: BrokerLayer | None = None,
        bus: EventBus | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.name = name
        self.domain = domain
        self.middleware_model = middleware_model
        self.dsml = dsml
        self.ui = ui
        self.synthesis = synthesis
        self.controller = controller
        self.broker = broker
        self.clock = clock or WallClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.bus = bus or EventBus(
            name=f"{name}.bus", clock=self.clock, metrics=self.metrics
        )
        #: generic components realized from the middleware model's
        #: ComponentDef elements (started/stopped with the platform).
        from repro.runtime.registry import Registry

        self.components = Registry(name=f"{name}.components")
        self.started = False
        #: set when a snapshot restore failed partway AND could not be
        #: rolled back (see repro.middleware.snapshot.apply_snapshot):
        #: the platform state is inconsistent and must not serve work
        #: until a supervised retry restores it from the snapshot.
        self.failed = False
        self._wire()

    # -- wiring ----------------------------------------------------------

    def _wire(self) -> None:
        if self.controller is not None and self.broker is not None:
            self.controller.wire("broker", self.broker)
            self.broker.wire("upward", self.controller)
        if self.synthesis is not None and self.controller is not None:
            self.synthesis.wire("downward", self.controller)
            # Controller-raised events reach the Synthesis interpreter.
            self.controller.events.on(
                "controller.*",
                lambda topic, payload: self.synthesis.handle_event(topic, payload),
            )
        if self.ui is not None and self.synthesis is not None:
            self.ui.wire("synthesis", self.synthesis)

    @property
    def layers(self) -> list[Any]:
        return [
            layer
            for layer in (self.ui, self.synthesis, self.controller, self.broker)
            if layer is not None
        ]

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Platform":
        if self.started:
            return self
        # Bottom-up: a layer's on_start may use the one below it.
        for layer in reversed(self.layers):
            if not layer.running:
                layer.start()
        self.components.start_all()
        self.started = True
        return self

    def stop(self) -> "Platform":
        if not self.started:
            return self
        self.components.stop_all()
        for layer in self.layers:
            if layer.running:
                layer.stop()
        self.started = False
        return self

    def __enter__(self) -> "Platform":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- application model execution -------------------------------------------

    def run_model(self, model: Model, **context: Any) -> SynthesisResult:
        """Execute an application model through the full stack."""
        self._require(self.synthesis, "synthesis")
        if self.ui is not None:
            self.ui.put_model(model)
            return self.ui.submit(model, **context)
        return self.synthesis.synthesize(model, context=context or None)

    def run_script(self, script: ControlScript) -> ScriptOutcome:
        """Execute a pre-synthesized control script (suppressed-stack
        nodes receive scripts from a remote Synthesis layer)."""
        self._require(self.controller, "controller")
        return self.controller.submit_script(script)

    def teardown_model(self) -> SynthesisResult:
        self._require(self.synthesis, "synthesis")
        return self.synthesis.teardown_script()

    def enable_aot(self, *, cache_dir: str | None = None) -> "Any":
        """Compile the loaded DSK into a Tier-3 generated module and
        install it (synthesis dispatch tables + broker call table);
        returns the installed ``AotProgram``.  Runtime DSK edits fall
        back to Tier-2 and regenerate lazily after the next cycle.
        ``cache_dir`` loads/persists the generated module on disk keyed
        by ``DSK_HASH`` so cold starts skip generation."""
        from repro.middleware.synthesis.aot import enable_aot

        self._require(self.synthesis, "synthesis")
        return enable_aot(self, cache_dir=cache_dir)

    # -- checkpoint / restore (PR 5) -------------------------------------------

    def checkpoint(self) -> "Any":
        """Capture this session as a :class:`SessionSnapshot`."""
        from repro.middleware.snapshot import capture_snapshot

        return capture_snapshot(self)

    def restore_from(self, snapshot: "Any") -> "Platform":
        """Apply a captured snapshot onto this (compatible) platform."""
        from repro.middleware.snapshot import apply_snapshot

        return apply_snapshot(self, snapshot)

    # -- models@runtime reflection -------------------------------------------------

    def reflect(self) -> Model:
        """An editable copy of the live middleware model."""
        return clone_model(self.middleware_model)

    def apply_reflection(self, edited: Model) -> list[str]:
        """Apply supported middleware-model edits at runtime.

        Supported change classes (additions take immediate effect):
        ``PolicyDef``, ``ProcedureDef``, ``DSCDef``,
        ``ControllerActionDef``, ``BrokerActionDef``, ``SymptomDef``,
        ``ChangePlanDef``.  Returns a human-readable list of applied
        changes; unsupported structural edits raise.
        """
        from repro.middleware import loader as _loader
        from repro.middleware.broker.actions import BrokerAction
        from repro.middleware.broker.autonomic import ChangePlan, Symptom
        from repro.middleware.controller.handlers import Action
        from repro.middleware.controller.policy import Policy
        from repro.middleware.metamodel import loads_json_attr

        changes = diff_models(self.middleware_model, edited)
        applied: list[str] = []
        live_index = self.middleware_model.index()
        added_ids = {
            c.object_id for c in changes if c.kind == "add"
        }
        for change in changes:
            if change.kind != "add" or change.new_object is None:
                raise PlatformError(
                    f"unsupported runtime middleware change: {change}; only "
                    f"additions are applied reflectively (restart for the rest)"
                )
            element = change.new_object
            container = element.container
            if container is not None and container.id in added_ids:
                continue  # travels with its added parent (subtree root)
            self._apply_addition(
                element, applied, live_index,
                Policy=Policy, Action=Action, BrokerAction=BrokerAction,
                Symptom=Symptom, ChangePlan=ChangePlan,
                loader=_loader, loads_json_attr=loads_json_attr,
            )
        return applied

    def _apply_addition(
        self,
        element: MObject,
        applied: list[str],
        live_index: dict[str, MObject],
        **ns: Any,
    ) -> None:
        loader = ns["loader"]
        cls = element.meta.name
        if cls == "PolicyDef" and self.controller is not None:
            self.controller.policies.add(
                ns["Policy"](
                    name=str(element.get("name")),
                    condition=str(element.get("condition")),
                    weights=ns["loads_json_attr"](element.get("weightsJson"), {}),
                    prefer=ns["loads_json_attr"](element.get("preferJson"), {}),
                    force_case=element.get("forceCase") or None,
                    applies_to=str(element.get("appliesTo") or ""),
                    advice=ns["loads_json_attr"](element.get("adviceJson"), {}),
                    priority=int(element.get("priority")),
                )
            )
        elif cls == "DSCDef" and self.controller is not None:
            self.controller.taxonomy.define(
                str(element.get("name")),
                kind=str(element.get("kind")),
                parent=element.get("parent") or None,
                constraints=ns["loads_json_attr"](element.get("constraintsJson"), {}),
            )
        elif cls == "ProcedureDef" and self.controller is not None:
            self.controller.repository.add(loader._procedure_from_def(element))
            self.controller.generator.invalidate()
        elif cls == "ControllerActionDef" and self.controller is not None:
            self.controller.install_action(
                ns["Action"](
                    name=str(element.get("name")),
                    pattern=str(element.get("pattern")),
                    implementation=[
                        loader._controller_step_dict(s) for s in element.get("steps")
                    ],
                    guard=element.get("guard") or None,
                    attributes=ns["loads_json_attr"](element.get("attributesJson"), {}),
                )
            )
        elif cls == "BrokerActionDef" and self.broker is not None:
            self.broker.install_action(
                ns["BrokerAction"](
                    name=str(element.get("name")),
                    pattern=str(element.get("pattern")),
                    implementation=[
                        loader._step_dict(s) for s in element.get("steps")
                    ],
                    guard=element.get("guard") or None,
                    priority=int(element.get("priority")),
                )
            )
        elif cls == "SymptomDef" and self.broker is not None:
            self.broker.install_symptom(
                ns["Symptom"](
                    name=str(element.get("name")),
                    condition=str(element.get("condition")),
                    request_kind=str(element.get("requestKind")),
                    on_topic=element.get("onTopic") or None,
                    cooldown=float(element.get("cooldown")),
                )
            )
        elif cls == "ChangePlanDef" and self.broker is not None:
            self.broker.install_plan(
                ns["ChangePlan"](
                    name=str(element.get("name")),
                    request_kind=str(element.get("requestKind")),
                    steps=[loader._step_dict(s) for s in element.get("steps")],
                    guard=element.get("guard") or None,
                )
            )
        else:
            raise PlatformError(
                f"unsupported reflective addition of {cls!r} "
                f"(or its layer is suppressed)"
            )
        # Mirror the addition into the live middleware model so further
        # reflection rounds diff against up-to-date state.
        container = element.container
        if container is not None and container.id in live_index:
            ref = element.containing_reference
            assert ref is not None
            copied = clone_object(element)
            if ref.many:
                live_index[container.id].get(ref.name).append(copied)
            else:
                live_index[container.id].set(ref.name, copied)
        applied.append(f"added {cls} {element.get('name') if element.meta.find_feature('name') else element.id}")

    # -- diagnostics ----------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {"name": self.name, "domain": self.domain}
        if self.synthesis is not None:
            stats["synthesis"] = self.synthesis.stats()
        if self.controller is not None:
            stats["controller"] = self.controller.stats()
        if self.broker is not None:
            stats["broker"] = self.broker.stats()
        return stats

    def metrics_report(self) -> str:
        """Per-topic counters and latency histograms (human-readable)."""
        return self.metrics.render()

    def _require(self, layer: Any, name: str) -> None:
        if layer is None:
            raise PlatformError(
                f"platform {self.name!r} has no {name} layer (suppressed "
                f"in this node configuration)"
            )

    def __repr__(self) -> str:
        return (
            f"Platform({self.name!r}, domain={self.domain!r}, "
            f"layers={self.layer_names()})"
        )


class _CoverAllLog:
    """Log facade for shard-level checkpoint schedulers: full
    checkpoints carry ``cover_all`` (one platform snapshot covers every
    hosted session, so all truncation floors advance); everything else
    passes through."""

    def __init__(self, wal: Any) -> None:
        self._wal = wal

    def checkpoint(self, snapshot_doc: Any, **kwargs: Any) -> Any:
        if not kwargs.get("delta"):
            kwargs["cover_all"] = True
        return self._wal.checkpoint(snapshot_doc, **kwargs)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wal, name)


class PlatformPool:
    """A sharded multi-session front door over N platform instances.

    One :class:`Platform` per shard, each wired to its shard's private
    bus/metrics/clock, with session-key affinity routing: every call
    for session ``key`` executes on the shard (and platform) that owns
    ``key``, so per-session ordering holds and the intra-platform hot
    path stays single-threaded and lock-free.  Cross-shard signals go
    through the fabric's batched forwarding channel
    (:meth:`route_signal`); observability merges on read
    (:meth:`merged_metrics`, :meth:`stats`).

    ``factory(shard)`` must build a platform wired to ``shard.bus``,
    ``shard.metrics`` and ``shard.clock`` — e.g.::

        pool = PlatformPool(
            lambda shard: build_cvm(
                service=CommService("net0"), bus=shard.bus,
                clock=shard.clock,
            ),
            shards=4,
        )
        outcome = pool.submit("session-42", lambda p: p.run_script(s))
    """

    def __init__(
        self,
        factory: "Callable[[Shard], Platform]",
        *,
        shards: int = 4,
        name: str = "pool",
        inline: bool = False,
        batch_size: int = 64,
        durability: "DurabilityPolicy | str | None" = "wal",
    ) -> None:
        self.name = name
        self.runtime = ShardedRuntime(
            shards, name=name, inline=inline, batch_size=batch_size
        )
        #: durability by default (PR 10): every shard gets its own
        #: ``wal-shard-NN/`` write-ahead log under the policy's root
        #: (an ephemeral directory unless the policy names one) and
        #: doc-encoded submissions are write-ahead logged with sealed
        #: effects.  ``durability="off"`` is the escape hatch that
        #: preserves the undurable hot path byte-for-byte.
        self.durability = DurabilityPolicy.resolve(durability)
        if self.durability.enabled:
            self.runtime.attach_durability(self.durability)
        self.platforms: list[Platform] = [
            factory(shard) for shard in self.runtime.shards
        ]
        self._ingress_tiers: list[Any] = []
        #: attached process cluster (PR 9) + session keys migrated out
        #: to remote workers: key -> worker index.
        self._cluster: Any = None
        self._apply_doc: "Callable[[Platform, str, dict], Any] | None" = None
        self._remote: dict[str, int] = {}
        self._rebalancer: Any = None
        self._checkpointers: list[Any] = []
        self.started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "PlatformPool":
        if self.started:
            return self
        if (
            self.durability.enabled
            and self.runtime.shards[0].durability is None
        ):
            # restarted after stop() closed the logs: reopen them.
            self.runtime.attach_durability(self.durability)
        self.runtime.start()
        for platform in self.platforms:
            platform.start()
        self.started = True
        return self

    def stop(self) -> "PlatformPool":
        if not self.started:
            return self
        if self._rebalancer is not None:
            self._rebalancer.stop()
        for checkpointer in self._checkpointers:
            checkpointer.stop()
        self.runtime.stop()
        for platform in self.platforms:
            platform.stop()
        self.runtime.close_wals()
        # an auto-created log root holds nothing anyone can find again;
        # reclaim it (named roots are the caller's to keep).
        self.durability.discard_ephemeral_root()
        self.started = False
        return self

    def __enter__(self) -> "PlatformPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- session routing --------------------------------------------------

    def shard_for(self, key: str) -> Shard:
        return self.runtime.shard_for(key)

    def platform_for(self, key: str) -> Platform:
        """The platform owning session ``key`` (affinity-stable)."""
        return self.platforms[self.shard_for(key).index]

    def submit(self, key: str, fn: "Callable[[Platform], Any]"):
        """Run ``fn(platform)`` on the shard owning ``key``; a Future."""
        platform = self.platform_for(key)
        return self.runtime.submit(key, fn, platform)

    def close_session(self, key: str) -> bool:
        """Release per-session fabric state for a closed session.

        Entries still queued in any ingress tier built by
        :meth:`build_ingress` are resolved first as typed ``REJECTED``
        outcomes (``ShedReason.SESSION_CLOSED``) — closing a session
        must never leave a waiter hanging on a queue nobody will pump,
        nor dispatch its backlog into the released session.  Then the
        migration route override installed by
        :meth:`ShardedRuntime.migrate` (if any) is pruned so the
        routing table stays bounded over millions of session
        lifetimes.  Returns True when an override was dropped.
        """
        for tier in self._ingress_tiers:
            tier.close_session(key)
        key = str(key)
        worker = self._remote.pop(key, None)
        if worker is not None and self._cluster is not None:
            self._cluster.close_session(key)
        durability = self.runtime.shard_for(key).durability
        if durability is not None:
            # typed close frame, then drop the session from the
            # truncation floor — a closed session must not pin segments
            # (nor replay on recovery: recover_session only replays
            # entry frames, and the close frame marks intent).
            durability.log_event("closed", key)
            durability.forget(key)
        return self.runtime.release(key)

    # -- ingress (PR 6) ---------------------------------------------------

    def build_ingress(
        self,
        *,
        policy: "Any | None" = None,
        clock: "Clock | None" = None,
        watch_breakers: bool = True,
        name: str | None = None,
    ) -> "Any":
        """An admission-controlled async front door over this pool.

        Returns an :class:`~repro.runtime.ingress.IngressTier` whose
        admitted requests execute exactly like :meth:`submit` —
        ``fn(platform)`` on the owning shard, per-session FIFO — but
        pass admission control first: bounded per-session queues,
        priority classes, load shedding with typed
        ``InvocationOutcome.REJECTED`` results, and (with
        ``watch_breakers``) shed decisions fed by the circuit-breaker
        events each shard platform's Broker publishes.  Wrap it in
        :class:`~repro.runtime.ingress.AsyncIngress` for coroutine
        callers.
        """
        from repro.runtime.ingress import IngressTier

        tier = IngressTier(
            self.runtime,
            policy=policy,
            clock=clock,
            resolve=lambda key: (self.platform_for(key),),
            name=name if name is not None else f"{self.name}.ingress",
        )
        if watch_breakers:
            for platform in self.platforms:
                tier.watch_bus(platform.bus)
        if self.durability.enabled:
            # admission decisions become part of the durable record:
            # every shed lands as a typed frame in the owning shard's
            # log, so a post-crash audit can tell "never admitted"
            # from "admitted and lost".
            tier.on_shed = self._log_shed
        self._ingress_tiers.append(tier)
        return tier

    def _log_shed(self, key: str, reason: str) -> None:
        durability = self.runtime.shard_for(key).durability
        if durability is not None:
            durability.log_event("shed", key, reason=reason)

    # -- cluster routing (PR 9) -------------------------------------------

    def attach_cluster(
        self,
        cluster: Any,
        *,
        apply: "Callable[[Platform, str, dict], Any]",
    ) -> None:
        """Enable remote routing through a :class:`ProcessCluster`.

        ``apply(platform, key, doc)`` executes one doc-encoded
        submission against a *local* platform — the same docs a remote
        worker's backend applies — so :meth:`submit_doc` can route each
        submission transparently: sessions migrated out via
        :meth:`migrate_to_worker` go over the wire, everything else
        runs in-process on the owning shard.
        """
        self._cluster = cluster
        self._apply_doc = apply

    def remote_worker_for(self, key: str) -> int | None:
        """Worker index hosting ``key``, or None when local."""
        return self._remote.get(str(key))

    def submit_doc(self, key: str, doc: dict) -> Any:
        """Submit one doc-encoded step for ``key``, local or remote.

        Returns a future resolving to an
        :class:`~repro.runtime.faults.InvocationOutcome` on both paths:
        remote submissions ride the cluster protocol (worker death
        surfaces as typed ``REJECTED`` outcomes, never a hung future),
        local ones run ``apply(platform, key, doc)`` on the owning
        shard thread.
        """
        if self._apply_doc is None:
            raise PlatformError(
                f"pool {self.name!r}: attach_cluster() before submit_doc()"
            )
        key = str(key)
        if self._cluster is not None and key in self._remote:
            return self._cluster.submit(key, doc)
        from repro.runtime.faults import InvocationOutcome

        shard = self.shard_for(key)
        platform = self.platforms[shard.index]
        apply = self._apply_doc
        durability = shard.durability

        if durability is None:

            def run(target: Platform) -> Any:
                try:
                    value = apply(target, key, doc)
                    self._route_emits(key, doc, None)
                except Exception as exc:  # noqa: BLE001 - typed outcome
                    return InvocationOutcome(
                        status=InvocationOutcome.FAILED, label=key,
                        error=exc, attempts=1, elapsed=0.0,
                    )
                return InvocationOutcome(
                    status=InvocationOutcome.OK, label=key,
                    value=value, attempts=1, elapsed=0.0,
                )

            return self.runtime.submit(key, run, platform)

        def run_durable(target: Platform) -> Any:
            # DurableSession.execute as a fabric default: write-ahead
            # the entry frame, apply with the session's effect journal
            # installed on the broker, seal the memoized effects.
            resources = (
                target.broker.resources if target.broker is not None else None
            )

            def applied(signal: Any) -> Any:
                value = apply(target, key, doc)
                self._route_emits(key, doc, signal)
                return value

            try:
                value = durability.execute(
                    key, doc, applied, resources=resources
                )
            except Exception as exc:  # noqa: BLE001 - typed outcome
                return InvocationOutcome(
                    status=InvocationOutcome.FAILED, label=key,
                    error=exc, attempts=1, elapsed=0.0,
                )
            return InvocationOutcome(
                status=InvocationOutcome.OK, label=key,
                value=value, attempts=1, elapsed=0.0,
            )

        return self.runtime.submit(key, run_durable, platform)

    def _route_emits(self, key: str, doc: dict, signal: Any) -> None:
        """Route the step's declared cross-session emissions.

        A doc-encoded step may carry ``doc["emit"]``: a list of
        ``{"topic", "key", "payload"?}`` directives.  After the op
        applies, each directive becomes an :class:`Event` *causally
        derived from the step's write-ahead entry signal* (same
        ``trace_id``, ``parent_seq`` = the entry's seq) and is routed
        to its target session's shard — where ``route_signal``
        write-ahead logs it.  One logged trace therefore spans
        sessions and shards, and because the directive lives in the
        logged entry doc itself, replaying the entry re-derives the
        same emission: causal slices are reproducible from the union
        of per-shard logs (``repro trace --replay ROOT --slice``).

        With durability off there is no entry signal; emissions still
        route, as fresh trace roots.
        """
        emits = doc.get("emit") or ()
        if not emits:
            return
        for spec in emits:
            event = emit_event(spec, key, signal)
            self.route_signal(event, key=str(spec.get("key", key)))

    def migrate_to_worker(
        self,
        key: str,
        worker: int,
        *,
        capture: "Callable[[Platform], dict]",
        timeout: float = 30.0,
    ) -> Any:
        """Live-migrate session ``key`` out of this process.

        Runs the PR 5 quiesce→capture→flush sequence on the owning
        shard (``capture(platform)`` must return the session's
        transportable doc: snapshot + service state), ships the doc to
        ``worker`` over the cluster protocol, and re-points routing so
        subsequent :meth:`submit_doc` calls go remote.
        """
        if self._cluster is None:
            raise PlatformError(
                f"pool {self.name!r}: attach_cluster() before migrate_to_worker()"
            )
        key = str(key)
        platform = self.platform_for(key)
        result = self.runtime.migrate_out(
            key,
            capture=lambda: capture(platform),
            transfer=lambda doc: self._cluster.restore_session(
                key, doc, worker=worker
            ),
            timeout=timeout,
        )
        self._remote[key] = worker
        return result

    # -- load-driven rebalancing (PR 9, folded PR 5 follow-on) ------------

    def build_rebalancer(
        self,
        *,
        sessions: "Callable[[], Any]",
        capture: "Callable[[str], Any]",
        restore: "Callable[[str, Any], Any]",
        interval: float = 1.0,
        clock: "Clock | None" = None,
        queue_weight: float = 1e-3,
        min_moves: int = 1,
    ) -> "Any":
        """A periodic load-driven rebalance trigger over this pool.

        Every ``interval`` seconds the trigger plans moves from *live*
        per-shard load — ``MetricsRegistry`` latency totals plus
        mailbox queue depth via
        :meth:`ShardRebalancer.plan_from_metrics` — and applies them
        through the migration protocol with the caller's per-session
        ``capture(key)`` / ``restore(key, snapshot)``.  Timers are
        epoch-fenced (CheckpointScheduler discipline): :meth:`stop`
        invalidates in-flight callbacks.  Returns the started
        :class:`~repro.runtime.sharded.RebalanceTrigger`.
        """
        from repro.runtime.sharded import RebalanceTrigger, ShardRebalancer

        trigger = RebalanceTrigger(
            ShardRebalancer(self.runtime),
            sessions=sessions,
            capture=capture,
            restore=restore,
            interval=interval,
            clock=clock or WallClock(),
            queue_weight=queue_weight,
            min_moves=min_moves,
        )
        trigger.start()
        self._rebalancer = trigger
        return trigger

    # -- durable checkpoints + recovery (PR 10) ---------------------------

    def build_checkpoints(
        self,
        *,
        interval: float | None = None,
        clock: "Clock | None" = None,
        delta: bool | None = None,
        full_every: int = 8,
    ) -> list[Any]:
        """One :class:`~repro.middleware.snapshot.CheckpointScheduler`
        per shard platform, writing into that shard's log.

        Each scheduler checkpoints its platform under the *platform's*
        name with ``cover_all`` — one shard snapshot embeds the state
        of every session the shard hosts, so all their truncation
        floors advance together.  ``delta`` (default: the policy's
        ``delta_checkpoints``) writes dirty-layer deltas between full
        checkpoints.  On wall clocks drive ticks via
        :meth:`checkpoint_now`; virtual clocks self-schedule.
        """
        if not self.durability.enabled:
            raise PlatformError(
                f"pool {self.name!r}: durability is off; no log to "
                f"checkpoint into"
            )
        from repro.middleware.snapshot import CheckpointScheduler

        policy = self.durability
        use_delta = policy.delta_checkpoints if delta is None else delta
        period = interval or policy.checkpoint_interval or 1.0
        schedulers = []
        for shard, platform in zip(self.runtime.shards, self.platforms):
            scheduler = CheckpointScheduler(
                platform,
                interval=period,
                clock=clock or shard.clock,
                wal=_CoverAllLog(shard.durability.wal),
                session=platform.name,
                delta=use_delta,
                full_every=full_every,
            )
            schedulers.append(scheduler)
        self._checkpointers.extend(schedulers)
        return schedulers

    def checkpoint_now(self, *, timeout: float = 30.0) -> list[Any]:
        """Tick every shard's checkpoint scheduler on its own thread
        (the capture quiesce point) and wait for the snapshots."""
        futures = [
            self.runtime.shards[index].call(scheduler.tick)
            for index, scheduler in enumerate(self._checkpointers)
        ]
        if self.runtime.inline:
            self.runtime.drain()
        return [future.result(timeout=timeout) for future in futures]

    def recover_session(
        self,
        key: str,
        *,
        apply_entry: "Callable[[Platform, Any], Any]",
    ) -> Any:
        """Exactly-once recovery of one session from its shard's log.

        Restores the shard's latest ``cover_all`` checkpoint (if the
        pool checkpoints) and replays the session's entry tail with
        memoized effects and ``(trace_id, seq)`` dedup onto the owning
        shard's platform.  Call on a quiesced or freshly rebuilt pool —
        typically after :meth:`start` on a pool pointed at the same
        ``log_root`` a crashed pool was using.
        """
        from repro.middleware.snapshot import recover_session

        key = str(key)
        shard = self.shard_for(key)
        durability = shard.durability
        if durability is None:
            raise PlatformError(
                f"pool {self.name!r}: durability is off; nothing to "
                f"recover {key!r} from"
            )
        platform = self.platforms[shard.index]
        return recover_session(
            durability.wal,
            session=key,
            apply_entry=apply_entry,
            platform=platform,
            checkpoint_session=platform.name,
        )

    def route_signal(self, signal: Any, *, key: str) -> None:
        """Deliver ``signal`` on the owning shard's bus (batched when
        it crosses shards)."""
        self.runtime.route_signal(signal, key=key)

    def drain(self) -> int:
        """Inline pools: run queued session work to quiescence."""
        return self.runtime.drain()

    # -- aggregation ------------------------------------------------------

    def merged_metrics(self) -> MetricsRegistry:
        return self.runtime.merged_metrics()

    def stats(self) -> dict[str, Any]:
        stats = self.runtime.stats()
        stats["platforms"] = [p.name for p in self.platforms]
        return stats

    def __repr__(self) -> str:
        return (
            f"PlatformPool({self.name!r}, "
            f"shards={len(self.runtime.shards)}, started={self.started})"
        )
