"""MD-DSM middleware: the paper's primary contribution.

The package realizes the four-layer reference architecture (UI,
Synthesis, Controller, Broker), the domain-independent middleware
metamodel, and the platform loader that turns middleware models plus
domain knowledge into running platforms.
"""

from repro.middleware.bridge import (
    BridgeActivation,
    BridgeError,
    BridgeRule,
    PlatformBridge,
)
from repro.middleware.conformance import (
    ConformanceIssue,
    ConformanceReport,
    check_conformance,
)
from repro.middleware.loader import DomainKnowledge, LoaderError, load_platform
from repro.middleware.metamodel import (
    dumps_json_attr,
    loads_json_attr,
    middleware_metamodel,
)
from repro.middleware.model import (
    BrokerLayerBuilder,
    ControllerLayerBuilder,
    MiddlewareModelBuilder,
    SynthesisLayerBuilder,
)
from repro.middleware.platform import Platform, PlatformError
from repro.middleware.ui import ModelWorkspace, UIError

__all__ = [
    "middleware_metamodel", "dumps_json_attr", "loads_json_attr",
    "MiddlewareModelBuilder", "BrokerLayerBuilder", "ControllerLayerBuilder",
    "SynthesisLayerBuilder",
    "DomainKnowledge", "load_platform", "LoaderError",
    "Platform", "PlatformError",
    "ModelWorkspace", "UIError",
    "check_conformance", "ConformanceReport", "ConformanceIssue",
    "PlatformBridge", "BridgeRule", "BridgeActivation", "BridgeError",
]
