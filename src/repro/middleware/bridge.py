"""Cross-platform bridges: interoperability between domain middlewares.

The paper motivates MD-DSM with smart-city integration — "they argue in
favor of the integration of such smart systems as an essential aspect
of a larger smart cities picture" (Sec. II) — and points at
models@runtime connector synthesis (Bencomo et al.) as "an interesting
perspective ... for the interoperability problem across different
domain specific middleware platforms" (Sec. VIII).

:class:`PlatformBridge` is that connector: declarative
:class:`BridgeRule` entries map *events* surfacing on one platform's
bus to *commands* submitted to another platform's Controller.  Rules
are pure data (topic pattern, guard, command template with expressions
over the event payload), so a bridge is itself model-like knowledge —
and like everything else in the stack it can be installed, inspected
and removed at runtime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.middleware.platform import Platform
from repro.middleware.synthesis.scripts import Command
from repro.modeling.expr import evaluate
from repro.runtime.events import Signal, Subscription
from repro.runtime.metrics import MetricsRegistry, default_registry
from repro.runtime.topics import TopicMatcher

__all__ = ["BridgeError", "BridgeRule", "BridgeActivation", "PlatformBridge"]


class BridgeError(Exception):
    """Raised on malformed rules or bridging to an unfit platform."""


@dataclass
class BridgeRule:
    """One event->command mapping.

    ``command`` is a template dict: ``operation`` (required), literal
    ``args``, expression-valued ``args_expr`` (evaluated over the event
    payload plus ``topic``), and optional ``classifier``/``guard``.
    """

    name: str
    topic_pattern: str
    command: Mapping[str, Any]
    guard: str | None = None
    #: suppress re-firing for the same (rule, dedup key) — expression
    #: over the payload; None = fire on every matching event.
    dedup_expr: str | None = None

    def __post_init__(self) -> None:
        if not self.command.get("operation"):
            raise BridgeError(f"rule {self.name!r}: command needs an operation")

    def matches(self, topic: str, payload: Mapping[str, Any]) -> bool:
        if not TopicMatcher.matches(self.topic_pattern, topic):
            return False
        if self.guard is None:
            return True
        try:
            env = dict(payload)
            env["topic"] = topic
            return bool(evaluate(self.guard, env))
        except Exception:  # noqa: BLE001 - missing payload keys = no match
            return False

    def render(self, topic: str, payload: Mapping[str, Any]) -> Command:
        env = dict(payload)
        env["topic"] = topic
        args = dict(self.command.get("args", {}))
        for key, expr in dict(self.command.get("args_expr", {})).items():
            args[key] = evaluate(str(expr), env)
        return Command(
            operation=str(self.command["operation"]),
            args=args,
            classifier=self.command.get("classifier"),
        )

    def dedup_key(self, topic: str, payload: Mapping[str, Any]) -> Any:
        if self.dedup_expr is None:
            return None
        env = dict(payload)
        env["topic"] = topic
        return evaluate(self.dedup_expr, env)


@dataclass(frozen=True)
class BridgeActivation:
    """Record of one rule firing (for inspection/testing)."""

    rule: str
    topic: str
    operation: str
    ok: bool
    detail: str = ""


class PlatformBridge:
    """Forwards events from a source platform to a target's Controller.

    The bridge subscribes to the *source* platform's bus; matching
    events render commands executed on the *target* platform's
    Controller layer.  Failures are recorded (and surfaced as
    ``bridge.failed`` events on the target bus), never propagated back
    into the source platform's event path — one domain's outage must
    not poison another's.

    Under the sharded runtime the two platforms may live on different
    shards: the dedup set and activation log are mutex-guarded, and an
    optional ``submit`` hook reschedules the command execution onto the
    *target* platform's shard (e.g. ``pool.runtime.shard_for(key).post``)
    instead of running it inline on the source shard's thread.  Metrics
    default to the target platform's registry, keeping recording on
    the per-shard (lock-free) path rather than the shared fallback.
    """

    def __init__(
        self,
        source: Platform,
        target: Platform,
        *,
        name: str | None = None,
        metrics: MetricsRegistry | None = None,
        submit: Callable[[Callable[[], None]], Any] | None = None,
    ) -> None:
        if target.controller is None:
            raise BridgeError(
                f"target platform {target.name!r} has no controller layer"
            )
        self.source = source
        self.target = target
        self.name = name or f"{source.name}->{target.name}"
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None
            else (target.metrics or default_registry())
        )
        self._submit = submit
        self._rules: list[BridgeRule] = []
        self._subscription: Subscription | None = None
        self._seen: set[tuple[str, Any]] = set()
        self._lock = threading.Lock()
        self.activations: list[BridgeActivation] = []

    # -- rule management -------------------------------------------------

    def add_rule(self, rule: BridgeRule) -> BridgeRule:
        if any(r.name == rule.name for r in self._rules):
            raise BridgeError(f"duplicate bridge rule {rule.name!r}")
        self._rules.append(rule)
        return rule

    def rule(
        self,
        name: str,
        topic_pattern: str,
        command: Mapping[str, Any],
        *,
        guard: str | None = None,
        dedup_expr: str | None = None,
    ) -> "PlatformBridge":
        self.add_rule(BridgeRule(
            name=name, topic_pattern=topic_pattern, command=command,
            guard=guard, dedup_expr=dedup_expr,
        ))
        return self

    def remove_rule(self, name: str) -> None:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.name != name]
        if len(self._rules) == before:
            raise BridgeError(f"no bridge rule {name!r}")

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "PlatformBridge":
        if self._subscription is None:
            self._subscription = self.source.bus.subscribe(
                "*", self._on_event
            )
        return self

    def stop(self) -> "PlatformBridge":
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        return self

    @property
    def running(self) -> bool:
        return self._subscription is not None

    # -- event path -----------------------------------------------------------------

    def _on_event(self, signal: Signal) -> None:
        payload = dict(signal.payload)
        for rule in self._rules:
            if not rule.matches(signal.topic, payload):
                continue
            dedup = rule.dedup_key(signal.topic, payload)
            if dedup is not None:
                token = (rule.name, dedup)
                # check-and-add must be atomic: two shards surfacing
                # the same event may race to first-fire otherwise.
                with self._lock:
                    if token in self._seen:
                        continue
                    self._seen.add(token)
            if self._submit is not None:
                topic = signal.topic
                self._submit(lambda r=rule: self._fire(r, topic, payload))
            else:
                self._fire(rule, signal.topic, payload)

    def _fire(self, rule: BridgeRule, topic: str, payload: dict[str, Any]) -> None:
        controller = self.target.controller
        assert controller is not None
        self.metrics.count("bridge.fired", f"{self.name}:{rule.name}")
        try:
            with self.metrics.time(
                "bridge.fired", f"{self.name}:{rule.name}"
            ):
                command = rule.render(topic, payload)
                outcome = controller.execute_command(command)
            ok = outcome.ok
            detail = "" if ok else (
                outcome.result.error if outcome.result else "unknown"
            ) or ""
        except Exception as exc:  # noqa: BLE001 - isolated per design
            ok = False
            detail = f"{type(exc).__name__}: {exc}"
            command = None
        operation = str(rule.command["operation"])
        with self._lock:
            self.activations.append(
                BridgeActivation(
                    rule=rule.name, topic=topic, operation=operation,
                    ok=ok, detail=detail,
                )
            )
        if not ok:
            self.metrics.count("bridge.failed", f"{self.name}:{rule.name}")
            self.target.bus.emit(
                "bridge.failed", origin=self.name,
                rule=rule.name, source_topic=topic, detail=detail,
            )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            fired = len(self.activations)
            failed = sum(1 for a in self.activations if not a.ok)
        return {"name": self.name, "rules": self.rule_count,
                "fired": fired, "failed": failed}

    def __repr__(self) -> str:
        return (
            f"PlatformBridge({self.name!r}, rules={self.rule_count}, "
            f"running={self.running})"
        )
