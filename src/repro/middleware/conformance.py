"""Conformance checking between a DSML and a middleware model.

Paper Sec. IX lists as a main research challenge "an approach ... to
systematically ensure that the generated MD-DSM adequately supports
the application-level DSML", and Fig. 1 annotates the DSML/middleware
relationship with "conformance".  This module implements that check as
a static analysis over the two models:

1. **Coverage** — every concrete DSML metaclass has a synthesis rule;
   each rule's LTS handles the lifecycle labels its metaclass can
   produce (``add``/``remove``, ``set:<attr>`` for mutable attributes,
   ``list:<ref>`` for many-valued features).
2. **Operation closure** — every command operation a synthesis rule
   can emit is executable by the Controller: a matching Case 1 action
   pattern or a Case 2 classifier with at least one candidate
   procedure.
3. **API closure** — every Broker API invoked by controller actions or
   procedure EUs has a matching Broker action.
4. **Resource closure** — every resource named by broker action steps
   is declared as a required resource of the Broker layer.
5. **Reference closure** — event bindings name defined actions; DSC
   parents exist; procedure classifiers/dependencies name defined DSCs.

The checker is advisory-by-severity: gaps that would fail at runtime
are errors; suspicious-but-legal configurations (e.g. an attribute
with no ``set:`` transition — maybe immutable by design) are warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middleware.metamodel import loads_json_attr, middleware_metamodel
from repro.modeling.meta import Metamodel
from repro.modeling.model import Model, MObject

__all__ = ["ConformanceIssue", "ConformanceReport", "check_conformance"]


@dataclass(frozen=True)
class ConformanceIssue:
    """One conformance finding."""

    severity: str          # "error" | "warning"
    area: str              # coverage | operations | apis | resources | references
    subject: str           # the element concerned
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.area}: {self.subject}: {self.message}"


@dataclass
class ConformanceReport:
    """All findings of one conformance check."""

    issues: list[ConformanceIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def errors(self) -> list[ConformanceIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ConformanceIssue]:
        return [i for i in self.issues if i.severity == "warning"]

    def by_area(self, area: str) -> list[ConformanceIssue]:
        return [i for i in self.issues if i.area == area]

    def add(self, severity: str, area: str, subject: str, message: str) -> None:
        self.issues.append(ConformanceIssue(severity, area, subject, message))

    def render(self) -> str:
        if not self.issues:
            return "conformance: OK (no findings)"
        lines = [f"conformance: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [f"  {issue}" for issue in self.issues]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.issues)


def check_conformance(
    middleware_model: Model,
    dsml: Metamodel,
    *,
    known_resources: set[str] | None = None,
) -> ConformanceReport:
    """Statically check that ``middleware_model`` supports ``dsml``.

    ``known_resources`` optionally names resources the deployment will
    provide, enabling the resource-closure check to flag steps that
    address undeclared resources.
    """
    if middleware_model.metamodel is not middleware_metamodel():
        raise ValueError("first argument must be a middleware model")
    report = ConformanceReport()
    root = middleware_model.roots[0] if middleware_model.roots else None
    if root is None or not root.is_a("MiddlewareModel"):
        report.add("error", "references", "(root)",
                   "middleware model has no MiddlewareModel root")
        return report

    synthesis = root.get("synthesis")
    controller = root.get("controller")
    broker = root.get("broker")

    emitted_operations = _check_coverage(report, synthesis, dsml)
    _check_operations(report, controller, emitted_operations)
    apis_used = _collect_apis(controller)
    _check_apis(report, broker, apis_used, has_controller=controller is not None)
    _check_resources(report, broker, known_resources)
    _check_references(report, controller, broker)
    return report


# -- 1. coverage ----------------------------------------------------------


def _check_coverage(
    report: ConformanceReport, synthesis: MObject | None, dsml: Metamodel
) -> set[str]:
    """Check rule coverage of the DSML; return all emittable operations."""
    emitted: set[str] = set()
    rules: dict[str, MObject] = {}
    if synthesis is not None:
        for rule in synthesis.get("rules"):
            rules[str(rule.get("className"))] = rule
            for transition in rule.get("transitions"):
                for template in loads_json_attr(
                    transition.get("commandsJson"), []
                ):
                    operation = template.get("operation")
                    if operation:
                        emitted.add(str(operation))
    for cls in dsml.iter_classes(concrete_only=True):
        rule = rules.get(cls.name)
        if rule is None:
            severity = "error" if synthesis is not None else "warning"
            report.add(
                severity, "coverage", cls.name,
                "no synthesis rule for this DSML class",
            )
            continue
        labels = {
            str(t.get("label")) for t in rule.get("transitions")
        }
        if "add" not in labels:
            report.add("error", "coverage", cls.name,
                       "rule does not handle 'add'")
        if "remove" not in labels:
            report.add("warning", "coverage", cls.name,
                       "rule does not handle 'remove' (teardown will be "
                       "silently ignored)")
        for attr_name in cls.all_attributes():
            if attr_name == "name":
                continue  # renames are conventionally operational no-ops
            label = f"set:{attr_name}"
            attr = cls.all_attributes()[attr_name]
            if attr.many:
                label = f"list:{attr_name}"
            if label not in labels:
                report.add(
                    "warning", "coverage", f"{cls.name}.{attr_name}",
                    f"no transition for {label!r} (attribute edits will "
                    f"not reach the platform)",
                )
        for ref_name, ref in cls.all_references().items():
            if ref.containment:
                continue  # containment changes surface as add/remove
            label = f"list:{ref_name}" if ref.many else f"set:{ref_name}"
            if label not in labels:
                report.add(
                    "warning", "coverage", f"{cls.name}.{ref_name}",
                    f"no transition for {label!r}",
                )
    for class_name in rules:
        if dsml.find_class(class_name) is None:
            report.add(
                "warning", "coverage", class_name,
                "synthesis rule targets a class the DSML does not define",
            )
    return emitted


# -- 2. operations --------------------------------------------------------


def _pattern_matches(pattern: str, value: str) -> bool:
    if pattern.endswith("*"):
        return value.startswith(pattern[:-1])
    return value == pattern


def _check_operations(
    report: ConformanceReport,
    controller: MObject | None,
    operations: set[str],
) -> None:
    if controller is None:
        if operations:
            # A suppressed controller is a deliberate distributed
            # configuration (2SVM central node): operations are shipped
            # to remote nodes, so this is advisory, not an error.
            report.add(
                "warning", "operations", "(controller)",
                f"{len(operations)} operations are emitted but the "
                f"controller layer is suppressed (a remote controller "
                f"must serve them)",
            )
        return
    action_patterns = [
        str(a.get("pattern")) for a in controller.get("actions")
    ]
    classifier_map = {
        str(m.get("pattern")): str(m.get("classifier"))
        for m in controller.get("classifierMap")
    }
    procedures_by_classifier: dict[str, int] = {}
    dsc_parents: dict[str, str | None] = {
        str(d.get("name")): (d.get("parent") or None)
        for d in controller.get("classifiers")
    }
    for procedure in controller.get("procedures"):
        classifier = str(procedure.get("classifier"))
        procedures_by_classifier[classifier] = (
            procedures_by_classifier.get(classifier, 0) + 1
        )

    def classifier_served(classifier: str) -> bool:
        # a procedure classified by `classifier` or any descendant serves it
        for candidate, count in procedures_by_classifier.items():
            if count <= 0:
                continue
            node: str | None = candidate
            while node is not None:
                if node == classifier:
                    return True
                node = dsc_parents.get(node)
        return False

    for operation in sorted(operations):
        case1 = any(_pattern_matches(p, operation) for p in action_patterns)
        classifier = None
        for pattern, mapped in classifier_map.items():
            if _pattern_matches(pattern, operation):
                classifier = mapped
                break
        case2 = classifier is not None and classifier_served(classifier)
        if not case1 and not case2:
            report.add(
                "error", "operations", operation,
                "no Case 1 action matches and no Case 2 procedure can "
                "serve this emitted operation",
            )


# -- 3. APIs ---------------------------------------------------------------


def _collect_apis(controller: MObject | None) -> set[str]:
    apis: set[str] = set()
    if controller is None:
        return apis
    for action in controller.get("actions"):
        for step in action.get("steps"):
            apis.add(str(step.get("api")))
    for procedure in controller.get("procedures"):
        for unit in procedure.get("units"):
            for instruction in unit.get("instructions"):
                if str(instruction.get("opcode")) != "BROKER":
                    continue
                operands = loads_json_attr(
                    instruction.get("operandsJson"), {}
                )
                api = operands.get("api")
                if api:
                    apis.add(str(api))
    return apis


def _check_apis(
    report: ConformanceReport,
    broker: MObject | None,
    apis: set[str],
    *,
    has_controller: bool,
) -> None:
    if broker is None:
        if apis and has_controller:
            report.add(
                "warning", "apis", "(broker)",
                f"{len(apis)} Broker APIs are invoked but the broker "
                f"layer is suppressed (a remote broker must serve them)",
            )
        return
    patterns = [str(a.get("pattern")) for a in broker.get("actions")]
    for api in sorted(apis):
        if not any(_pattern_matches(p, api) for p in patterns):
            report.add(
                "error", "apis", api,
                "no broker action matches this API",
            )


# -- 4. resources ------------------------------------------------------------


def _check_resources(
    report: ConformanceReport,
    broker: MObject | None,
    known_resources: set[str] | None,
) -> None:
    if broker is None:
        return
    declared = {
        str(r.get("name")) for r in broker.get("requiredResources")
    }
    used: set[str] = set()
    for action in list(broker.get("actions")) + list(broker.get("plans")):
        for step in action.get("steps"):
            resource = step.get("resource")
            if resource:
                used.add(str(resource))
    for resource in sorted(used - declared):
        report.add(
            "warning", "resources", resource,
            "broker steps address this resource but the model does not "
            "declare it as required",
        )
    if known_resources is not None:
        for resource in sorted(used - set(known_resources)):
            report.add(
                "error", "resources", resource,
                "broker steps address a resource the deployment does "
                "not provide",
            )


# -- 5. references -------------------------------------------------------------


def _check_references(
    report: ConformanceReport,
    controller: MObject | None,
    broker: MObject | None,
) -> None:
    if controller is not None:
        dsc_names = {str(d.get("name")) for d in controller.get("classifiers")}
        for dsc in controller.get("classifiers"):
            parent = dsc.get("parent")
            if parent and str(parent) not in dsc_names:
                report.add(
                    "error", "references", str(dsc.get("name")),
                    f"DSC parent {parent!r} is not defined",
                )
        for procedure in controller.get("procedures"):
            name = str(procedure.get("name"))
            if str(procedure.get("classifier")) not in dsc_names:
                report.add(
                    "error", "references", name,
                    f"procedure classifier "
                    f"{procedure.get('classifier')!r} is not a defined DSC",
                )
            for dependency in procedure.get("dependencies"):
                if str(dependency) not in dsc_names:
                    report.add(
                        "error", "references", name,
                        f"dependency {dependency!r} is not a defined DSC",
                    )
        for mapping in controller.get("classifierMap"):
            if str(mapping.get("classifier")) not in dsc_names:
                report.add(
                    "error", "references", str(mapping.get("pattern")),
                    f"classifier map targets undefined DSC "
                    f"{mapping.get('classifier')!r}",
                )
    if broker is not None:
        action_names = {str(a.get("name")) for a in broker.get("actions")}
        for binding in broker.get("eventBindings"):
            if str(binding.get("action")) not in action_names:
                report.add(
                    "error", "references", str(binding.get("topicPattern")),
                    f"event binding names undefined action "
                    f"{binding.get('action')!r}",
                )
