"""DSK registry and worker backend for the multi-process session fabric.

:mod:`repro.runtime.cluster` is middleware-agnostic: workers resolve a
backend object from a ``"module:attr"`` spec.  This module supplies that
backend for the shipped middleware stack.

A :class:`DskRegistry` maps domain names to *entries* — anything with
``name`` / ``service()`` / ``knowledge(service)`` / ``middleware()`` /
``context`` attributes (:class:`repro.bench.migrate.DomainCase` qualifies
as-is).  A cold worker can therefore rebuild a full platform for any
registered domain from a portable capture doc containing nothing but the
session snapshot, exported service state, and the ``DSK_HASH``: the
registry supplies the DSK, :func:`restore_platform` re-realizes the
platform, and — with an AOT cache directory configured — the Tier-3
module is loaded from disk keyed by the hash (``load_program`` refuses
ABI/hash mismatches, falling back to regeneration and ultimately Tier-2)
instead of being regenerated per restore.

The shipped hash is checked against one recomputed from the rebuilt
platform's live rules/actions/metamodel; a mismatch means the registry's
DSK diverged from the one the capture came from, and the restore is
refused rather than silently resumed on different semantics.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ClusterBackendError",
    "DskRegistry",
    "RegistryBackend",
    "default_registry",
    "default_backend",
    "prewarm_aot_cache",
]


class ClusterBackendError(RuntimeError):
    """A worker-side session operation could not be performed."""


def platform_dsk_hash(platform: Any) -> str:
    """``DSK_HASH`` of a started platform's live knowledge."""
    from repro.modeling.aotgen import dsk_fingerprint, dsk_hash

    broker = platform.broker
    return dsk_hash(dsk_fingerprint(
        rules=platform.synthesis.interpreter._rules,
        actions=list(broker.calls._actions) if broker is not None else [],
        dsml=platform.dsml,
    ))


class DskRegistry:
    """Domain name -> DSK entry, the worker's source of domain knowledge."""

    def __init__(self, entries: list | None = None):
        self._entries: dict[str, Any] = {}
        for entry in entries or []:
            self.register(entry)

    def register(self, entry: Any) -> None:
        self._entries[entry.name] = entry

    def get(self, name: str) -> Any:
        entry = self._entries.get(name)
        if entry is None:
            raise ClusterBackendError(
                f"domain {name!r} not in DSK registry "
                f"(known: {sorted(self._entries)})"
            )
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)


class _SessionHost:
    """One live session on a worker: its service, DSK, and platform."""

    __slots__ = ("entry", "service", "dsk", "platform")

    def __init__(self, entry, service, dsk, platform):
        self.entry = entry
        self.service = service
        self.dsk = dsk
        self.platform = platform


class RegistryBackend:
    """Worker-protocol backend hosting one platform per session.

    Implements the contract documented in :mod:`repro.runtime.cluster`:
    ``open`` / ``apply`` / ``capture`` / ``restore`` / ``drop`` /
    ``close`` / ``describe``, plus the optional ``configure`` hook the
    worker calls with the coordinator's options dict (``aot`` and
    ``aot_cache_dir`` route every platform build through the Tier-3
    disk cache).
    """

    def __init__(self, registry: DskRegistry | None = None, *,
                 aot: bool = False, aot_cache_dir: str | None = None,
                 durability: Any = None, wal_dir: str | None = None,
                 checkpoint_every: int = 8):
        self.registry = registry or default_registry()
        self.aot = aot
        self.aot_cache_dir = aot_cache_dir
        self.worker_id = -1
        self.sessions: dict[str, _SessionHost] = {}
        # Durability (PR 10): a per-worker write-ahead log shared by the
        # hosted sessions.  ``durability`` accepts a DurabilityPolicy,
        # "wal"/"off", or None (decided at configure; workers default to
        # "wal").  Activated by :meth:`configure` (every spawned worker)
        # or an explicit :meth:`enable_durability`; a bare backend built
        # for in-process use stays on the undurable hot path.
        self.durability_spec = durability
        self.wal_dir = wal_dir
        self.checkpoint_every = int(checkpoint_every)
        self.durability: Any = None
        self._policy: Any = None
        self._applies: dict[str, int] = {}
        self._ship_cursor: Any = None

    # -- worker hooks ------------------------------------------------------

    def configure(self, worker_id: int, options: dict) -> None:
        self.worker_id = worker_id
        if "aot" in options:
            self.aot = bool(options["aot"])
        if options.get("aot_cache_dir"):
            self.aot_cache_dir = str(options["aot_cache_dir"])
        if options.get("prewarm_aot"):
            prewarm_aot_cache(self.registry, self.aot_cache_dir)
            self.aot = True
        if options.get("wal_dir"):
            self.wal_dir = str(options["wal_dir"])
        if "checkpoint_every" in options:
            self.checkpoint_every = int(options["checkpoint_every"])
        spec = options.get("durability", self.durability_spec)
        self.enable_durability(spec)

    def enable_durability(self, spec: Any = None) -> Any:
        """Open this worker's WAL under ``wal-shard-NN/`` (idempotent)."""
        from repro.runtime.durability import DurabilityPolicy

        if self.durability is not None:
            return self.durability
        policy = DurabilityPolicy.resolve(
            spec if spec is not None else self.durability_spec
        )
        if not policy.enabled:
            return None
        if policy.log_root is None and self.wal_dir:
            policy.log_root = self.wal_dir
        if policy.checkpoint_every:
            self.checkpoint_every = int(policy.checkpoint_every)
        self._policy = policy
        index = self.worker_id if self.worker_id >= 0 else 0
        self.durability = policy.open_shard(index, name=f"worker-{index:02d}")
        return self.durability

    def shutdown(self) -> None:
        """Worker-exit hook: seal and close the WAL, drop ephemeral roots."""
        durability, self.durability = self.durability, None
        if durability is not None:
            durability.close()
        if self._policy is not None:
            self._policy.discard_ephemeral_root()
            self._policy = None

    # -- session lifecycle -------------------------------------------------

    def open(self, session: str, doc: dict) -> dict:
        from repro.middleware.loader import load_platform

        if session in self.sessions:
            raise ClusterBackendError(f"session {session!r} already open")
        entry = self.registry.get(doc["domain"])
        service = entry.service()
        dsk = entry.knowledge(service)
        platform = load_platform(
            entry.middleware(), dsk,
            aot=self.aot, aot_cache_dir=self.aot_cache_dir,
        )
        context = dict(getattr(entry, "context", {}) or {})
        context.update(doc.get("context") or {})
        if platform.controller is not None and context:
            platform.controller.context.update(context)
        if platform.broker is not None and not doc.get("autonomic", True):
            platform.broker.autonomic.enabled = False
        self.sessions[session] = _SessionHost(entry, service, dsk, platform)
        self._checkpoint_session(session)
        return {
            "domain": entry.name,
            "dsk_hash": platform_dsk_hash(platform),
            "worker": self.worker_id,
        }

    def _host(self, session: str) -> _SessionHost:
        host = self.sessions.get(session)
        if host is None:
            raise ClusterBackendError(
                f"session {session!r} not open on worker {self.worker_id}"
            )
        return host

    def apply(self, session: str, doc: dict) -> Any:
        host = self._host(session)
        durability = self.durability
        if durability is None:
            return self._dispatch(host, doc)
        # Write-ahead the operation doc as the session's next entry
        # signal, run it with the session's effect journal installed
        # (external resource calls are memoized into the seal), and
        # count toward the periodic full checkpoint.
        broker = host.platform.broker
        resources = broker.resources if broker is not None else None
        value = durability.execute(
            session, doc,
            lambda _signal: self._dispatch(host, doc),
            resources=resources,
        )
        count = self._applies.get(session, 0) + 1
        if self.checkpoint_every and count >= self.checkpoint_every:
            count = 0
            durability.checkpoint(session, self._capture_host(host))
        self._applies[session] = count
        return value

    def _dispatch(self, host: _SessionHost, doc: dict) -> Any:
        op = doc.get("op")
        if op == "api":
            broker = host.platform.broker
            if broker is None:
                raise ClusterBackendError("session platform has no broker")
            return broker.call_api(doc["api"], **(doc.get("args") or {}))
        if op == "fail":
            host.service.inject_failure(self._session_id(host, doc["conn"]))
            return None
        if op == "recover":
            return host.platform.broker.call_api(
                "ncb.recover_session",
                session=self._session_id(host, doc["conn"]),
            )
        if op == "run_model":
            from repro.modeling.serialize import model_from_dict

            model = model_from_dict(doc["model"], host.dsk.dsml)
            host.platform.run_model(model)
            return {"ran": model.name}
        if op == "noop":
            return None
        raise ClusterBackendError(f"unknown session op {op!r}")

    @staticmethod
    def _session_id(host: _SessionHost, connection: str) -> str:
        return host.platform.broker.state.get(f"session:{connection}")

    # -- migration / recovery ----------------------------------------------

    def capture(self, session: str) -> dict:
        """Portable capture: snapshot + exported service state + DSK hash.

        Platform snapshots deliberately exclude the simulated resources
        (the DSK supplies them), so cross-process migration ships the
        services' exported state — including the op_log, the correctness
        witness — alongside the snapshot.
        """
        return self._capture_host(self._host(session))

    def _capture_host(self, host: _SessionHost) -> dict:
        return {
            "domain": host.entry.name,
            "dsk_hash": platform_dsk_hash(host.platform),
            "snapshot": host.platform.checkpoint().to_dict(),
            "services": {
                resource.name: resource.export_state()
                for resource in host.dsk.resources
            },
        }

    def _checkpoint_session(self, session: str) -> None:
        """Embed the session's portable capture doc as a WAL checkpoint
        frame — the base the shipped tail replays on top of."""
        durability = self.durability
        if durability is None:
            return
        self._applies[session] = 0
        durability.checkpoint(session, self._capture_host(self._host(session)))

    def restore(self, session: str, doc: dict) -> dict:
        from repro.middleware.snapshot import SessionSnapshot, restore_platform

        if session in self.sessions:
            raise ClusterBackendError(
                f"session {session!r} already open; cannot restore over it"
            )
        entry = self.registry.get(doc["domain"])
        service = entry.service()
        dsk = entry.knowledge(service)
        exported = doc.get("services") or {}
        for resource in dsk.resources:
            state = exported.get(resource.name)
            if state is not None:
                resource.import_state(state)
        platform = restore_platform(
            SessionSnapshot.from_dict(doc["snapshot"]), dsk,
            aot=self.aot, aot_cache_dir=self.aot_cache_dir,
        )
        live_hash = platform_dsk_hash(platform)
        shipped = doc.get("dsk_hash")
        if shipped and shipped != live_hash:
            platform.stop()
            raise ClusterBackendError(
                f"DSK hash mismatch on restore of {session!r}: capture came "
                f"from {shipped!r}, registry rebuilt {live_hash!r}"
            )
        self.sessions[session] = _SessionHost(entry, service, dsk, platform)
        self._checkpoint_session(session)
        return {"restored": session, "dsk_hash": live_hash,
                "worker": self.worker_id}

    def drop(self, session: str) -> dict:
        """Forget a session after it migrated out (no workload effects)."""
        host = self.sessions.pop(session, None)
        if host is not None and host.platform.started:
            host.platform.stop()
        self._forget_durable(session, "dropped")
        return {"dropped": session}

    def close(self, session: str) -> dict:
        host = self.sessions.pop(session, None)
        if host is not None and host.platform.started:
            host.platform.stop()
        self._forget_durable(session, "closed")
        return {"closed": session}

    def _forget_durable(self, session: str, kind: str) -> None:
        durability = self.durability
        if durability is None:
            return
        durability.log_event(kind, session)
        durability.forget(session)
        self._applies.pop(session, None)

    # -- log shipping / adoption -------------------------------------------

    def ship_tail(self) -> list:
        """WAL frames appended since the last call.

        The worker loop piggybacks these on every reply
        (``reply["ship"]``), so by the time a caller's future resolves
        the coordinator's warm copy already holds the op's entry and
        seal.  Seek-based (:meth:`WriteAheadLog.tail_since`): the
        cursor pays for new frames only.
        """
        durability = self.durability
        if durability is None:
            return []
        cursor, frames = durability.wal.tail_since(self._ship_cursor)
        self._ship_cursor = cursor
        return frames

    def adopt(self, session: str, frames: list) -> dict:
        """Adopt a session lost with its worker, from shipped WAL frames.

        Restores the latest shipped checkpoint (a portable capture doc:
        snapshot + exported service state + DSK hash), then replays the
        shipped entry tail *live* through
        :func:`~repro.middleware.snapshot.recover_session` —
        ``applied`` frames are deliberately dropped so external effects
        re-execute against the rebuilt services (the originals died
        with the worker), while ``(trace_id, seq)`` dedup still
        squelches double-delivered entries.  Idempotent: adopting an
        already-open session is a no-op, so a second adoption attempt
        (coordinator retry, racing supervisors) cannot double-apply.
        """
        if session in self.sessions:
            return {"already": True, "session": session,
                    "worker": self.worker_id}
        capture_doc = None
        tail: list[dict] = []
        for doc in frames or []:
            if str(doc.get("session", "")) != session:
                continue
            kind = doc.get("k")
            if kind == "checkpoint" and not doc.get("delta"):
                capture_doc = doc.get("snapshot")
                tail = []
            elif kind == "entry":
                tail.append(doc)
        if capture_doc is None:
            raise ClusterBackendError(
                f"no shipped checkpoint for session {session!r}; cannot adopt"
            )
        self.restore(session, capture_doc)
        host = self._host(session)
        replayed = deduplicated = 0
        errors: list[str] = []
        if tail:
            import shutil
            import tempfile

            from repro.middleware.snapshot import recover_session
            from repro.runtime.wal import WriteAheadLog

            scratch_dir = tempfile.mkdtemp(prefix="repro-adopt-")
            try:
                scratch = WriteAheadLog(scratch_dir, name="adopt",
                                        fsync=False)
                for doc in tail:
                    scratch.append(doc, strict=False)
                report = recover_session(
                    scratch,
                    session=session,
                    apply_entry=lambda _platform, signal: self._dispatch(
                        host, signal.payload),
                    platform=host.platform,
                )
                scratch.close()
                replayed = report.replayed_entries
                deduplicated = report.deduplicated
                errors = [f"seq={seq}: {exc}" for seq, exc in report.errors]
            finally:
                shutil.rmtree(scratch_dir, ignore_errors=True)
            broker = host.platform.broker
            if broker is not None:
                # recover_session installed a journal bound to the
                # scratch log; the durable apply path installs the
                # session's own journal on the next operation.
                broker.resources.install_effect_journal(None)
        # Re-base the local log so this worker's shipped copy covers
        # the adopted state from here on.
        self._checkpoint_session(session)
        return {"adopted": session, "worker": self.worker_id,
                "replayed": replayed, "deduplicated": deduplicated,
                "errors": errors}

    # -- introspection -----------------------------------------------------

    def describe(self, session: str) -> dict:
        host = self._host(session)
        return {
            "domain": host.entry.name,
            "dsk_hash": platform_dsk_hash(host.platform),
            "op_logs": {
                resource.name: list(resource.op_log)
                for resource in host.dsk.resources
            },
        }


def prewarm_aot_cache(registry: DskRegistry,
                      cache_dir: str | None) -> dict[str, str]:
    """Generate Tier-3 modules for every registered DSK into ``cache_dir``.

    Run once at cluster boot (coordinator ``warmup`` hook, or per worker
    via the ``prewarm_aot`` option): each domain's platform is built
    with the AOT disk cache enabled, which persists the generated module
    keyed by ``DSK_HASH``, so session opens and cold restores load from
    disk instead of regenerating.  Returns ``{domain: dsk_hash}``.
    """
    from repro.middleware.loader import load_platform

    if not cache_dir:
        return {}
    report: dict[str, str] = {}
    for name in registry.names():
        entry = registry.get(name)
        service = entry.service()
        dsk = entry.knowledge(service)
        platform = load_platform(
            entry.middleware(), dsk, aot=True, aot_cache_dir=str(cache_dir)
        )
        try:
            report[name] = platform_dsk_hash(platform)
        finally:
            if platform.started:
                platform.stop()
    return report


def default_registry() -> DskRegistry:
    """Registry of the four shipped domains' DSK entries.

    Reuses the migration benchmark's :class:`DomainCase` definitions —
    the canonical description of each domain's service/DSK/middleware
    triple — imported lazily to keep this module import-light.
    """
    from repro.bench.migrate import domain_cases

    return DskRegistry(domain_cases())


def default_backend() -> RegistryBackend:
    """Factory for the ``"repro.middleware.cluster:default_backend"`` spec."""
    return RegistryBackend(default_registry())
