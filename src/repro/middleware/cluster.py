"""DSK registry and worker backend for the multi-process session fabric.

:mod:`repro.runtime.cluster` is middleware-agnostic: workers resolve a
backend object from a ``"module:attr"`` spec.  This module supplies that
backend for the shipped middleware stack.

A :class:`DskRegistry` maps domain names to *entries* — anything with
``name`` / ``service()`` / ``knowledge(service)`` / ``middleware()`` /
``context`` attributes (:class:`repro.bench.migrate.DomainCase` qualifies
as-is).  A cold worker can therefore rebuild a full platform for any
registered domain from a portable capture doc containing nothing but the
session snapshot, exported service state, and the ``DSK_HASH``: the
registry supplies the DSK, :func:`restore_platform` re-realizes the
platform, and — with an AOT cache directory configured — the Tier-3
module is loaded from disk keyed by the hash (``load_program`` refuses
ABI/hash mismatches, falling back to regeneration and ultimately Tier-2)
instead of being regenerated per restore.

The shipped hash is checked against one recomputed from the rebuilt
platform's live rules/actions/metamodel; a mismatch means the registry's
DSK diverged from the one the capture came from, and the restore is
refused rather than silently resumed on different semantics.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ClusterBackendError",
    "DskRegistry",
    "RegistryBackend",
    "default_registry",
    "default_backend",
]


class ClusterBackendError(RuntimeError):
    """A worker-side session operation could not be performed."""


def platform_dsk_hash(platform: Any) -> str:
    """``DSK_HASH`` of a started platform's live knowledge."""
    from repro.modeling.aotgen import dsk_fingerprint, dsk_hash

    broker = platform.broker
    return dsk_hash(dsk_fingerprint(
        rules=platform.synthesis.interpreter._rules,
        actions=list(broker.calls._actions) if broker is not None else [],
        dsml=platform.dsml,
    ))


class DskRegistry:
    """Domain name -> DSK entry, the worker's source of domain knowledge."""

    def __init__(self, entries: list | None = None):
        self._entries: dict[str, Any] = {}
        for entry in entries or []:
            self.register(entry)

    def register(self, entry: Any) -> None:
        self._entries[entry.name] = entry

    def get(self, name: str) -> Any:
        entry = self._entries.get(name)
        if entry is None:
            raise ClusterBackendError(
                f"domain {name!r} not in DSK registry "
                f"(known: {sorted(self._entries)})"
            )
        return entry

    def names(self) -> list[str]:
        return sorted(self._entries)


class _SessionHost:
    """One live session on a worker: its service, DSK, and platform."""

    __slots__ = ("entry", "service", "dsk", "platform")

    def __init__(self, entry, service, dsk, platform):
        self.entry = entry
        self.service = service
        self.dsk = dsk
        self.platform = platform


class RegistryBackend:
    """Worker-protocol backend hosting one platform per session.

    Implements the contract documented in :mod:`repro.runtime.cluster`:
    ``open`` / ``apply`` / ``capture`` / ``restore`` / ``drop`` /
    ``close`` / ``describe``, plus the optional ``configure`` hook the
    worker calls with the coordinator's options dict (``aot`` and
    ``aot_cache_dir`` route every platform build through the Tier-3
    disk cache).
    """

    def __init__(self, registry: DskRegistry | None = None, *,
                 aot: bool = False, aot_cache_dir: str | None = None):
        self.registry = registry or default_registry()
        self.aot = aot
        self.aot_cache_dir = aot_cache_dir
        self.worker_id = -1
        self.sessions: dict[str, _SessionHost] = {}

    # -- worker hooks ------------------------------------------------------

    def configure(self, worker_id: int, options: dict) -> None:
        self.worker_id = worker_id
        if "aot" in options:
            self.aot = bool(options["aot"])
        if options.get("aot_cache_dir"):
            self.aot_cache_dir = str(options["aot_cache_dir"])

    # -- session lifecycle -------------------------------------------------

    def open(self, session: str, doc: dict) -> dict:
        from repro.middleware.loader import load_platform

        if session in self.sessions:
            raise ClusterBackendError(f"session {session!r} already open")
        entry = self.registry.get(doc["domain"])
        service = entry.service()
        dsk = entry.knowledge(service)
        platform = load_platform(
            entry.middleware(), dsk,
            aot=self.aot, aot_cache_dir=self.aot_cache_dir,
        )
        context = dict(getattr(entry, "context", {}) or {})
        context.update(doc.get("context") or {})
        if platform.controller is not None and context:
            platform.controller.context.update(context)
        if platform.broker is not None and not doc.get("autonomic", True):
            platform.broker.autonomic.enabled = False
        self.sessions[session] = _SessionHost(entry, service, dsk, platform)
        return {
            "domain": entry.name,
            "dsk_hash": platform_dsk_hash(platform),
            "worker": self.worker_id,
        }

    def _host(self, session: str) -> _SessionHost:
        host = self.sessions.get(session)
        if host is None:
            raise ClusterBackendError(
                f"session {session!r} not open on worker {self.worker_id}"
            )
        return host

    def apply(self, session: str, doc: dict) -> Any:
        host = self._host(session)
        op = doc.get("op")
        if op == "api":
            broker = host.platform.broker
            if broker is None:
                raise ClusterBackendError("session platform has no broker")
            return broker.call_api(doc["api"], **(doc.get("args") or {}))
        if op == "fail":
            host.service.inject_failure(self._session_id(host, doc["conn"]))
            return None
        if op == "recover":
            return host.platform.broker.call_api(
                "ncb.recover_session",
                session=self._session_id(host, doc["conn"]),
            )
        if op == "run_model":
            from repro.modeling.serialize import model_from_dict

            model = model_from_dict(doc["model"], host.dsk.dsml)
            host.platform.run_model(model)
            return {"ran": model.name}
        if op == "noop":
            return None
        raise ClusterBackendError(f"unknown session op {op!r}")

    @staticmethod
    def _session_id(host: _SessionHost, connection: str) -> str:
        return host.platform.broker.state.get(f"session:{connection}")

    # -- migration / recovery ----------------------------------------------

    def capture(self, session: str) -> dict:
        """Portable capture: snapshot + exported service state + DSK hash.

        Platform snapshots deliberately exclude the simulated resources
        (the DSK supplies them), so cross-process migration ships the
        services' exported state — including the op_log, the correctness
        witness — alongside the snapshot.
        """
        host = self._host(session)
        return {
            "domain": host.entry.name,
            "dsk_hash": platform_dsk_hash(host.platform),
            "snapshot": host.platform.checkpoint().to_dict(),
            "services": {
                resource.name: resource.export_state()
                for resource in host.dsk.resources
            },
        }

    def restore(self, session: str, doc: dict) -> dict:
        from repro.middleware.snapshot import SessionSnapshot, restore_platform

        if session in self.sessions:
            raise ClusterBackendError(
                f"session {session!r} already open; cannot restore over it"
            )
        entry = self.registry.get(doc["domain"])
        service = entry.service()
        dsk = entry.knowledge(service)
        exported = doc.get("services") or {}
        for resource in dsk.resources:
            state = exported.get(resource.name)
            if state is not None:
                resource.import_state(state)
        platform = restore_platform(
            SessionSnapshot.from_dict(doc["snapshot"]), dsk,
            aot=self.aot, aot_cache_dir=self.aot_cache_dir,
        )
        live_hash = platform_dsk_hash(platform)
        shipped = doc.get("dsk_hash")
        if shipped and shipped != live_hash:
            platform.stop()
            raise ClusterBackendError(
                f"DSK hash mismatch on restore of {session!r}: capture came "
                f"from {shipped!r}, registry rebuilt {live_hash!r}"
            )
        self.sessions[session] = _SessionHost(entry, service, dsk, platform)
        return {"restored": session, "dsk_hash": live_hash,
                "worker": self.worker_id}

    def drop(self, session: str) -> dict:
        """Forget a session after it migrated out (no workload effects)."""
        host = self.sessions.pop(session, None)
        if host is not None and host.platform.started:
            host.platform.stop()
        return {"dropped": session}

    def close(self, session: str) -> dict:
        host = self.sessions.pop(session, None)
        if host is not None and host.platform.started:
            host.platform.stop()
        return {"closed": session}

    # -- introspection -----------------------------------------------------

    def describe(self, session: str) -> dict:
        host = self._host(session)
        return {
            "domain": host.entry.name,
            "dsk_hash": platform_dsk_hash(host.platform),
            "op_logs": {
                resource.name: list(resource.op_log)
                for resource in host.dsk.resources
            },
        }


def default_registry() -> DskRegistry:
    """Registry of the four shipped domains' DSK entries.

    Reuses the migration benchmark's :class:`DomainCase` definitions —
    the canonical description of each domain's service/DSK/middleware
    triple — imported lazily to keep this module import-light.
    """
    from repro.bench.migrate import domain_cases

    return DskRegistry(domain_cases())


def default_backend() -> RegistryBackend:
    """Factory for the ``"repro.middleware.cluster:default_backend"`` spec."""
    return RegistryBackend(default_registry())
