"""Simulated communication services (CVM substrate).

The original CVM brokers real communication frameworks (Skype adapters
etc., Allen et al. [22]).  Offline we substitute a deterministic
simulated service that exposes the same operation surface the NCB
drives — sessions, parties, media streams, data transfer — plus
failure injection, so the E1/E5 scenarios (session establishment,
reconfiguration, recovery from failures) exercise the identical
middleware code path.

Each operation charges a configurable amount of CPU-bound work so that
wall-clock benchmarks measure a realistic middleware/service time
ratio, and raises domain errors on protocol violations so failure
handling is honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.middleware.broker.resource import Resource, ResourceError

__all__ = ["NetworkError", "Session", "MediaStream", "CommService"]


class NetworkError(ResourceError):
    """Protocol violations or operations on failed sessions."""


@dataclass
class MediaStream:
    """A media stream within a session."""

    stream_id: str
    medium: str                   # audio | video | text | file
    quality: str = "standard"     # low | standard | high
    open: bool = True
    bytes_sent: int = 0


@dataclass
class Session:
    """A multi-party communication session."""

    session_id: str
    initiator: str
    parties: set[str] = field(default_factory=set)
    streams: dict[str, MediaStream] = field(default_factory=dict)
    state: str = "active"         # active | failed | closed

    def require_active(self) -> None:
        if self.state != "active":
            raise NetworkError(
                f"session {self.session_id} is {self.state}, not active"
            )


class CommService(Resource):
    """One simulated communication service endpoint.

    Operations mirror the NCB surface described for the CVM:

    ``open_session``, ``close_session``, ``add_party``,
    ``remove_party``, ``open_stream``, ``close_stream``,
    ``reconfigure_stream``, ``send_data``, ``probe``.

    ``inject_failure`` (test/bench API, not an operation) marks a
    session failed and emits ``session_failed``; subsequent operations
    on it raise until ``recover_session`` is called.
    """

    MEDIA = ("audio", "video", "text", "file")
    QUALITIES = ("low", "standard", "high")

    #: Default per-operation CPU cost (work units; 1 unit ≈ 1k loop
    #: iterations).  Calibrated so the simulated service-time /
    #: middleware-overhead ratio matches the regime of the paper's
    #: testbed, where real communication-framework calls dominate and
    #: the model-based Broker showed ~17 % end-to-end overhead
    #: (Sec. VII-A).  Tests that don't measure ratios pass a smaller
    #: value for speed.
    DEFAULT_OP_COST = 6.0

    def __init__(
        self,
        name: str = "net0",
        *,
        op_cost: float | None = None,
        work: Any = None,
    ) -> None:
        super().__init__(name, kind="communication")
        self.sessions: dict[str, Session] = {}
        self.op_cost = self.DEFAULT_OP_COST if op_cost is None else op_cost
        self._work = work or _spin
        self.op_count = 0
        self.op_log: list[str] = []
        # Per-instance id sequences: two services (or two benchmark
        # runs in one process) must mint identical, replayable
        # session/stream ids for golden-trace comparisons.  Plain ints
        # (not itertools.count) so state export can ship them to a
        # reincarnated service on another process.
        self._session_seq = 1
        self._stream_seq = 1

    # -- Resource contract ---------------------------------------------

    def invoke(self, operation: str, **args: Any) -> Any:
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise NetworkError(
                f"service {self.name!r}: unknown operation {operation!r}"
            )
        self._charge()
        self.op_count += 1
        self.op_log.append(operation)
        return handler(**args)

    def operations(self) -> list[str]:
        return sorted(
            name[3:] for name in dir(self) if name.startswith("op_")
        )

    def _charge(self) -> None:
        self._work(self.op_cost)

    # -- session lifecycle --------------------------------------------------

    def op_open_session(self, initiator: str, parties: list[str] | None = None) -> str:
        session_id = f"sess-{self._session_seq}"
        self._session_seq += 1
        session = Session(session_id=session_id, initiator=initiator)
        session.parties.add(initiator)
        for party in parties or []:
            session.parties.add(party)
        self.sessions[session_id] = session
        self.notify("session_opened", session=session_id, initiator=initiator)
        return session_id

    def op_close_session(self, session: str, force: bool = False) -> bool:
        found = self._session(session)
        if found.state == "closed":
            return False      # idempotent: no re-close, no duplicate event
        if found.state == "failed" and not force:
            raise NetworkError(
                f"session {session} is failed; recover it first "
                f"(or force-close)"
            )
        for stream in found.streams.values():
            stream.open = False
        found.state = "closed"
        self.notify("session_closed", session=session)
        return True

    def op_add_party(self, session: str, party: str) -> int:
        found = self._session(session)
        found.require_active()
        found.parties.add(party)
        self.notify("party_joined", session=session, party=party)
        return len(found.parties)

    def op_remove_party(self, session: str, party: str) -> int:
        found = self._session(session)
        found.require_active()
        if party not in found.parties:
            raise NetworkError(f"party {party!r} not in session {session}")
        if party == found.initiator:
            raise NetworkError(f"initiator {party!r} cannot leave session {session}")
        found.parties.remove(party)
        self.notify("party_left", session=session, party=party)
        return len(found.parties)

    # -- media streams ----------------------------------------------------------

    def op_open_stream(self, session: str, medium: str, quality: str = "standard") -> str:
        found = self._session(session)
        found.require_active()
        if medium not in self.MEDIA:
            raise NetworkError(f"unknown medium {medium!r}")
        if quality not in self.QUALITIES:
            raise NetworkError(f"unknown quality {quality!r}")
        stream_id = f"stream-{self._stream_seq}"
        self._stream_seq += 1
        found.streams[stream_id] = MediaStream(
            stream_id=stream_id, medium=medium, quality=quality
        )
        self.notify("stream_opened", session=session, stream=stream_id, medium=medium)
        return stream_id

    def op_close_stream(self, session: str, stream: str) -> bool:
        found = self._session(session)
        media = self._stream(found, stream)
        media.open = False
        del found.streams[stream]
        self.notify("stream_closed", session=session, stream=stream)
        return True

    def op_reconfigure_stream(self, session: str, stream: str, quality: str) -> str:
        found = self._session(session)
        found.require_active()
        if quality not in self.QUALITIES:
            raise NetworkError(f"unknown quality {quality!r}")
        media = self._stream(found, stream)
        media.quality = quality
        self.notify(
            "stream_reconfigured", session=session, stream=stream, quality=quality
        )
        return quality

    def op_send_data(self, session: str, stream: str, size: int = 1) -> int:
        found = self._session(session)
        found.require_active()
        media = self._stream(found, stream)
        if not media.open:
            raise NetworkError(f"stream {stream} is closed")
        media.bytes_sent += int(size)
        return media.bytes_sent

    def op_probe(self) -> dict[str, Any]:
        """Health/QoS probe used by autonomic symptoms."""
        active = [s for s in self.sessions.values() if s.state == "active"]
        return {
            "active_sessions": len(active),
            "total_streams": sum(len(s.streams) for s in active),
        }

    def op_recover_session(self, session: str) -> bool:
        found = self._session(session)
        if found.state != "failed":
            raise NetworkError(f"session {session} is not failed")
        found.state = "active"
        self.notify("session_recovered", session=session)
        return True

    # -- state transport (cluster migration) -----------------------------------------

    def export_state(self) -> dict[str, Any]:
        """Serialize full service state (JSON-safe) for cross-process
        transport.  Includes the op_log and id sequences so a restored
        service continues the golden trace exactly where it left off."""
        return {
            "sessions": [
                {
                    "session_id": s.session_id,
                    "initiator": s.initiator,
                    "parties": sorted(s.parties),
                    "state": s.state,
                    "streams": [
                        {
                            "stream_id": m.stream_id,
                            "medium": m.medium,
                            "quality": m.quality,
                            "open": m.open,
                            "bytes_sent": m.bytes_sent,
                        }
                        for m in s.streams.values()
                    ],
                }
                for s in self.sessions.values()
            ],
            "session_seq": self._session_seq,
            "stream_seq": self._stream_seq,
            "op_count": self.op_count,
            "op_log": list(self.op_log),
        }

    def import_state(self, doc: dict[str, Any]) -> None:
        self.sessions = {}
        for entry in doc.get("sessions", []):
            session = Session(
                session_id=entry["session_id"],
                initiator=entry["initiator"],
                parties=set(entry.get("parties", [])),
                state=entry.get("state", "active"),
            )
            for item in entry.get("streams", []):
                session.streams[item["stream_id"]] = MediaStream(
                    stream_id=item["stream_id"],
                    medium=item["medium"],
                    quality=item.get("quality", "standard"),
                    open=bool(item.get("open", True)),
                    bytes_sent=int(item.get("bytes_sent", 0)),
                )
            self.sessions[session.session_id] = session
        self._session_seq = int(doc.get("session_seq", 1))
        self._stream_seq = int(doc.get("stream_seq", 1))
        self.op_count = int(doc.get("op_count", 0))
        self.op_log = list(doc.get("op_log", []))

    # -- failure injection (bench/test API) ------------------------------------------

    def inject_failure(self, session: str) -> None:
        found = self._session(session)
        found.state = "failed"
        self.notify("session_failed", session=session)

    def active_sessions(self) -> list[Session]:
        return [s for s in self.sessions.values() if s.state == "active"]

    # -- helpers ------------------------------------------------------------------------

    def _session(self, session_id: str) -> Session:
        found = self.sessions.get(session_id)
        if found is None:
            raise NetworkError(f"unknown session {session_id!r}")
        return found

    @staticmethod
    def _stream(session: Session, stream_id: str) -> MediaStream:
        media = session.streams.get(stream_id)
        if media is None:
            raise NetworkError(
                f"unknown stream {stream_id!r} in session {session.session_id}"
            )
        return media


def _spin(cost: float) -> None:
    total = 0
    for i in range(int(cost * 1000)):
        total += i
