"""Simulated microgrid plant (MGridVM substrate).

The original MGridVM issues atomic commands to physical microgrid
controllers and devices (Allison et al. [11]).  We substitute a
deterministic simulated plant: :class:`PowerDevice` state machines
aggregated by a :class:`PlantController` resource, with power-balance
accounting and overload/failure events — the same command surface the
Microgrid Hardware Broker (MHB) drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.middleware.broker.resource import Resource, ResourceError

__all__ = ["PlantError", "PowerDevice", "PlantController"]


class PlantError(ResourceError):
    """Raised on commands to unknown devices or invalid modes."""


@dataclass
class PowerDevice:
    """One microgrid device.

    ``kind`` determines the sign of its power contribution:
    ``load`` draws ``power_rating`` watts when on; ``generator``
    supplies; ``storage`` draws when charging and supplies when
    discharging.
    """

    device_id: str
    kind: str                       # load | generator | storage
    power_rating: float             # watts (positive magnitude)
    mode: str = "off"               # off | on | standby | charging | discharging
    priority: int = 1               # shed order under overload (1 = shed first)
    health: str = "ok"              # ok | failed
    energy: float = 0.0             # storage state-of-charge (Wh-equivalent)

    VALID_MODES = {
        "load": ("off", "on", "standby"),
        "generator": ("off", "on", "standby"),
        "storage": ("off", "charging", "discharging", "standby"),
    }

    def set_mode(self, mode: str) -> None:
        if self.health == "failed":
            raise PlantError(f"device {self.device_id} has failed")
        if mode not in self.VALID_MODES[self.kind]:
            raise PlantError(
                f"device {self.device_id} ({self.kind}): invalid mode {mode!r}"
            )
        self.mode = mode

    @property
    def net_power(self) -> float:
        """Signed watts: positive = supply, negative = draw."""
        if self.health == "failed" or self.mode in ("off", "standby"):
            return 0.0
        if self.kind == "load":
            return -self.power_rating
        if self.kind == "generator":
            return self.power_rating
        # storage
        if self.mode == "charging":
            return -self.power_rating
        if self.mode == "discharging":
            return self.power_rating
        return 0.0


class PlantController(Resource):
    """The simulated plant controller (MHB target).

    Operations: ``register_device``, ``set_mode``, ``read_device``,
    ``read_balance``, ``shed_load``, ``tick``, ``set_tariff``.

    ``tick`` advances plant physics one step: integrates storage
    energy and emits ``overload`` when demand exceeds supply plus the
    grid import limit, and ``device_failure`` for injected failures.
    """

    def __init__(
        self,
        name: str = "plant0",
        *,
        grid_import_limit: float = 5000.0,
        op_cost: float = 0.02,
        work: Any = None,
    ) -> None:
        super().__init__(name, kind="microgrid")
        self.devices: dict[str, PowerDevice] = {}
        self.grid_import_limit = grid_import_limit
        self.tariff = 1.0
        self.op_cost = op_cost
        self._work = work or _spin
        self.op_count = 0
        self.op_log: list[str] = []
        self.ticks = 0

    def invoke(self, operation: str, **args: Any) -> Any:
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise PlantError(
                f"controller {self.name!r}: unknown operation {operation!r}"
            )
        self._work(self.op_cost)
        self.op_count += 1
        self.op_log.append(operation)
        return handler(**args)

    def operations(self) -> list[str]:
        return sorted(name[3:] for name in dir(self) if name.startswith("op_"))

    # -- operations -----------------------------------------------------

    def op_register_device(
        self,
        device: str,
        kind: str,
        power_rating: float,
        priority: int = 1,
    ) -> str:
        if device in self.devices:
            raise PlantError(f"device {device!r} already registered")
        if kind not in PowerDevice.VALID_MODES:
            raise PlantError(f"unknown device kind {kind!r}")
        self.devices[device] = PowerDevice(
            device_id=device, kind=kind,
            power_rating=float(power_rating), priority=int(priority),
        )
        self.notify("device_registered", device=device, kind=kind)
        return device

    def op_deregister_device(self, device: str) -> bool:
        self._device(device)
        del self.devices[device]
        self.notify("device_deregistered", device=device)
        return True

    def op_set_mode(self, device: str, mode: str) -> str:
        found = self._device(device)
        found.set_mode(mode)
        self.notify("mode_changed", device=device, mode=mode)
        return mode

    def op_set_priority(self, device: str, priority: int) -> int:
        found = self._device(device)
        found.priority = int(priority)
        return found.priority

    def op_read_device(self, device: str) -> dict[str, Any]:
        found = self._device(device)
        return {
            "device": found.device_id,
            "kind": found.kind,
            "mode": found.mode,
            "net_power": found.net_power,
            "health": found.health,
            "energy": found.energy,
        }

    def op_read_balance(self) -> dict[str, float]:
        supply = sum(d.net_power for d in self.devices.values() if d.net_power > 0)
        demand = -sum(d.net_power for d in self.devices.values() if d.net_power < 0)
        return {
            "supply": supply,
            "demand": demand,
            "net": supply - demand,
            "grid_import": max(0.0, demand - supply),
        }

    def op_shed_load(self, watts: float) -> list[str]:
        """Turn off lowest-priority loads until ``watts`` is shed."""
        shed: list[str] = []
        remaining = float(watts)
        loads = sorted(
            (d for d in self.devices.values()
             if d.kind == "load" and d.mode == "on" and d.health == "ok"),
            key=lambda d: d.priority,
        )
        for device in loads:
            if remaining <= 0:
                break
            device.set_mode("off")
            remaining -= device.power_rating
            shed.append(device.device_id)
            self.notify("load_shed", device=device.device_id)
        return shed

    def op_dispatch_storage(self) -> list[str]:
        """Switch charged storage devices to discharging."""
        dispatched: list[str] = []
        for device in self.devices.values():
            if device.kind != "storage" or device.health == "failed":
                continue
            if device.mode != "discharging" and device.energy > 0:
                device.set_mode("discharging")
                dispatched.append(device.device_id)
                self.notify("storage_dispatched", device=device.device_id)
        return dispatched

    def op_set_import_limit(self, limit: float) -> float:
        self.grid_import_limit = float(limit)
        return self.grid_import_limit

    def op_set_tariff(self, tariff: float) -> float:
        self.tariff = float(tariff)
        self.notify("tariff_changed", tariff=self.tariff)
        return self.tariff

    def op_tick(self, hours: float = 1.0) -> dict[str, float]:
        """Advance plant physics; emits overload events."""
        self.ticks += 1
        balance = self.op_read_balance()
        for device in self.devices.values():
            if device.kind == "storage":
                if device.mode == "charging":
                    device.energy += device.power_rating * hours
                elif device.mode == "discharging":
                    device.energy = max(
                        0.0, device.energy - device.power_rating * hours
                    )
                    if device.energy == 0.0:
                        device.set_mode("standby")
                        self.notify("storage_depleted", device=device.device_id)
        if balance["grid_import"] > self.grid_import_limit:
            self.notify(
                "overload",
                grid_import=balance["grid_import"],
                limit=self.grid_import_limit,
            )
        return balance

    # -- state transport (cluster migration) -------------------------------------

    def export_state(self) -> dict[str, Any]:
        return {
            "devices": [
                {
                    "device_id": d.device_id,
                    "kind": d.kind,
                    "power_rating": d.power_rating,
                    "mode": d.mode,
                    "priority": d.priority,
                    "health": d.health,
                    "energy": d.energy,
                }
                for d in self.devices.values()
            ],
            "grid_import_limit": self.grid_import_limit,
            "tariff": self.tariff,
            "ticks": self.ticks,
            "op_count": self.op_count,
            "op_log": list(self.op_log),
        }

    def import_state(self, doc: dict[str, Any]) -> None:
        self.devices = {
            entry["device_id"]: PowerDevice(
                device_id=entry["device_id"],
                kind=entry["kind"],
                power_rating=float(entry["power_rating"]),
                mode=entry.get("mode", "off"),
                priority=int(entry.get("priority", 1)),
                health=entry.get("health", "ok"),
                energy=float(entry.get("energy", 0.0)),
            )
            for entry in doc.get("devices", [])
        }
        self.grid_import_limit = float(doc.get("grid_import_limit", 5000.0))
        self.tariff = float(doc.get("tariff", 1.0))
        self.ticks = int(doc.get("ticks", 0))
        self.op_count = int(doc.get("op_count", 0))
        self.op_log = list(doc.get("op_log", []))

    # -- failure injection (bench/test API) --------------------------------------

    def inject_device_failure(self, device: str) -> None:
        found = self._device(device)
        found.health = "failed"
        self.notify("device_failure", device=device)

    def repair_device(self, device: str) -> None:
        found = self._device(device)
        found.health = "ok"
        self.notify("device_repaired", device=device)

    def _device(self, device_id: str) -> PowerDevice:
        found = self.devices.get(device_id)
        if found is None:
            raise PlantError(f"unknown device {device_id!r}")
        return found


def _spin(cost: float) -> None:
    total = 0
    for i in range(int(cost * 1000)):
        total += i
