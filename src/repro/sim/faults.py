"""Deterministic fault injection for simulated resources.

Wraps any :class:`~repro.middleware.broker.resource.Resource` in a
proxy that injects faults *before* the inner resource sees the
operation: probabilistic operation failures, latency spikes (charged
to the active clock), and *flaky windows* — intervals of simulated
time during which the failure rate is elevated (up to a hard outage).

Everything is driven by one seeded :class:`random.Random` and the
injected clock, so a given ``(seed, scenario)`` pair replays the exact
same fault sequence — the property that turns the paper's E5 recovery
demonstration into a reproducible benchmark (``repro bench-faults``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Collection

from repro.middleware.broker.resource import Resource, TransientResourceError
from repro.runtime.clock import Clock

__all__ = ["InjectedFault", "FlakyWindow", "FaultInjector"]


class InjectedFault(TransientResourceError):
    """A synthetic, transient fault raised by the injector."""


@dataclass(frozen=True)
class FlakyWindow:
    """An interval of simulated time with an elevated failure rate."""

    start: float
    end: float
    failure_rate: float = 1.0

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


class FaultInjector(Resource):
    """A fault-injecting proxy around an underlying resource.

    Registered under the inner resource's name, so brokers dispatch to
    it transparently; event plumbing (``attach``/``notify``) is
    forwarded to the inner resource so its asynchronous occurrences
    still reach the bus.

    * ``failure_rate`` — baseline probability that an operation raises
      :class:`InjectedFault` instead of executing.
    * ``windows`` — :class:`FlakyWindow` s; inside a window the
      *maximum* of the baseline and window rate applies.
    * ``latency_spike_rate`` / ``latency_spike`` — probability and
      size (seconds) of a latency spike, charged via
      ``clock.advance`` (instant on a virtual clock, a no-op on a
      wall clock — real work takes real time).
    * ``only_operations`` — restrict injection to these operations
      (``None`` = all).
    """

    def __init__(
        self,
        inner: Resource,
        *,
        seed: int = 0,
        clock: Clock | None = None,
        failure_rate: float = 0.0,
        latency_spike_rate: float = 0.0,
        latency_spike: float = 0.25,
        windows: Collection[FlakyWindow] = (),
        only_operations: Collection[str] | None = None,
    ) -> None:
        super().__init__(inner.name, kind=inner.kind)
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.inner = inner
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = clock
        self.failure_rate = failure_rate
        self.latency_spike_rate = latency_spike_rate
        self.latency_spike = latency_spike
        self.windows = tuple(windows)
        self.only_operations = (
            frozenset(only_operations) if only_operations is not None else None
        )
        self.invocations = 0
        self.injected_faults = 0
        self.spikes = 0
        self.fault_log: list[str] = []

    # -- event plumbing: forward to the inner resource --------------------

    def attach(self, notify: Callable[[str, dict[str, Any]], None]) -> None:
        super().attach(notify)
        self.inner.attach(notify)

    def detach(self) -> None:
        super().detach()
        self.inner.detach()

    def operations(self) -> list[str]:
        return self.inner.operations()

    def describe(self) -> dict[str, Any]:
        doc = self.inner.describe()
        doc["fault_injector"] = {
            "seed": self.seed,
            "failure_rate": self.failure_rate,
            "injected_faults": self.injected_faults,
        }
        return doc

    # -- injection ---------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def current_failure_rate(self) -> float:
        rate = self.failure_rate
        now = self._now()
        for window in self.windows:
            if window.covers(now):
                rate = max(rate, window.failure_rate)
        return rate

    def _eligible(self, operation: str) -> bool:
        return (
            self.only_operations is None or operation in self.only_operations
        )

    def invoke(self, operation: str, **args: Any) -> Any:
        self.invocations += 1
        if self._eligible(operation):
            # One RNG draw per decision, in fixed order: replayable.
            if self.rng.random() < self.current_failure_rate():
                self.injected_faults += 1
                self.fault_log.append(operation)
                raise InjectedFault(
                    f"injected fault in {self.name}.{operation} "
                    f"(#{self.injected_faults}, t={self._now():.3f})"
                )
            if (
                self.latency_spike_rate
                and self.rng.random() < self.latency_spike_rate
            ):
                self.spikes += 1
                if self.clock is not None:
                    self.clock.advance(self.latency_spike)
        return self.inner.invoke(operation, **args)

    def stats(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "invocations": self.invocations,
            "injected_faults": self.injected_faults,
            "spikes": self.spikes,
        }

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {self.name!r} seed={self.seed} "
            f"rate={self.failure_rate} faults={self.injected_faults}>"
        )
