"""Simulated smart-space environment (2SVM substrate).

The 2SVM runs partially on a central controller node and partially on
smart objects (Freitas et al. [12]); scripts are installed on the
middleware layer of smart objects and triggered by asynchronous
events such as objects entering or leaving the environment.

:class:`SmartObject` is a programmable entity with named capabilities
and an installed-script store; :class:`SmartSpace` is the environment
resource managing presence and broadcasting events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.middleware.broker.resource import Resource, ResourceError

__all__ = ["SpaceError", "SmartObject", "SmartSpace"]


class SpaceError(ResourceError):
    """Raised on operations targeting absent objects or capabilities."""


@dataclass
class SmartObject:
    """One programmable smart object.

    ``capabilities`` maps capability name -> current value (e.g.
    ``{"light": 0, "locked": True}``); ``configure`` sets them.
    ``installed_scripts`` holds serialized control scripts keyed by
    trigger topic — executed by the object's local (suppressed) stack.
    """

    object_id: str
    kind: str = "generic"
    capabilities: dict[str, Any] = field(default_factory=dict)
    present: bool = False
    installed_scripts: dict[str, list[dict[str, Any]]] = field(default_factory=dict)

    def configure(self, capability: str, value: Any) -> Any:
        if capability not in self.capabilities:
            raise SpaceError(
                f"object {self.object_id} has no capability {capability!r}"
            )
        self.capabilities[capability] = value
        return value


class SmartSpace(Resource):
    """The smart-space environment resource.

    Operations: ``register_object``, ``configure``, ``read_object``,
    ``install_script``, ``uninstall_script``, ``list_present``,
    ``announce``.

    Presence changes (``object_enters`` / ``object_leaves``, driven by
    the test/bench API) emit the asynchronous events that trigger
    installed scripts in the 2SVM architecture.
    """

    def __init__(self, name: str = "space0", *, op_cost: float = 0.02, work: Any = None) -> None:
        super().__init__(name, kind="smartspace")
        self.objects: dict[str, SmartObject] = {}
        self.op_cost = op_cost
        self._work = work or _spin
        self.op_count = 0
        self.op_log: list[str] = []

    def invoke(self, operation: str, **args: Any) -> Any:
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise SpaceError(f"space {self.name!r}: unknown operation {operation!r}")
        self._work(self.op_cost)
        self.op_count += 1
        self.op_log.append(operation)
        return handler(**args)

    def operations(self) -> list[str]:
        return sorted(name[3:] for name in dir(self) if name.startswith("op_"))

    # -- operations -----------------------------------------------------

    def op_register_object(
        self,
        object_id: str,
        kind: str = "generic",
        capabilities: dict[str, Any] | None = None,
    ) -> str:
        if object_id in self.objects:
            raise SpaceError(f"object {object_id!r} already registered")
        self.objects[object_id] = SmartObject(
            object_id=object_id, kind=kind,
            capabilities=dict(capabilities or {}),
        )
        self.notify("object_registered", object=object_id, kind=kind)
        return object_id

    def op_deregister_object(self, object_id: str) -> bool:
        self._object(object_id)
        del self.objects[object_id]
        self.notify("object_deregistered", object=object_id)
        return True

    def op_define_capability(
        self, object_id: str, capability: str, value: Any = None
    ) -> Any:
        """Add (or re-point) a capability on an object.

        ``configure`` only sets existing capabilities; model-level
        capability renames need this explicit definition step.
        """
        obj = self._object(object_id)
        obj.capabilities[capability] = value
        self.notify(
            "capability_defined", object=object_id, capability=capability
        )
        return value

    def op_undefine_capability(self, object_id: str, capability: str) -> bool:
        obj = self._object(object_id)
        if capability not in obj.capabilities:
            raise SpaceError(
                f"object {object_id} has no capability {capability!r}"
            )
        del obj.capabilities[capability]
        self.notify(
            "capability_undefined", object=object_id, capability=capability
        )
        return True

    def op_configure(self, object_id: str, capability: str, value: Any) -> Any:
        obj = self._object(object_id)
        result = obj.configure(capability, value)
        self.notify(
            "object_configured", object=object_id, capability=capability, value=value
        )
        return result

    def op_read_object(self, object_id: str) -> dict[str, Any]:
        obj = self._object(object_id)
        return {
            "object": obj.object_id,
            "kind": obj.kind,
            "present": obj.present,
            "capabilities": dict(obj.capabilities),
            "scripts": sorted(obj.installed_scripts),
        }

    def op_install_script(
        self, object_id: str, trigger: str, script: dict[str, Any]
    ) -> str:
        """Install a script; a script of the same app for the same
        trigger is replaced (installation is idempotent per app)."""
        obj = self._object(object_id)
        scripts = obj.installed_scripts.setdefault(trigger, [])
        app = dict(script).get("app")
        if app is not None:
            scripts[:] = [s for s in scripts if s.get("app") != app]
        scripts.append(dict(script))
        self.notify("script_installed", object=object_id, trigger=trigger)
        return trigger

    def op_uninstall_script(
        self,
        object_id: str,
        trigger: str,
        app: str | None = None,
        missing_ok: bool = False,
    ) -> bool:
        obj = self._object(object_id)
        scripts = obj.installed_scripts.get(trigger)
        if not scripts:
            if missing_ok:
                return False
            raise SpaceError(
                f"object {object_id} has no script for trigger {trigger!r}"
            )
        if app is None:
            del obj.installed_scripts[trigger]
        else:
            remaining = [s for s in scripts if s.get("app") != app]
            if len(remaining) == len(scripts):
                if missing_ok:
                    return False
                raise SpaceError(
                    f"object {object_id} has no script of app {app!r} "
                    f"for trigger {trigger!r}"
                )
            if remaining:
                obj.installed_scripts[trigger] = remaining
            else:
                del obj.installed_scripts[trigger]
        self.notify("script_uninstalled", object=object_id, trigger=trigger)
        return True

    def op_trigger_scripts(self, trigger: str, object_id: str | None = None) -> int:
        """Execute installed scripts for ``trigger``.

        The 2SVM installs synthesized scripts at the smart objects and
        fires them on asynchronous events; this operation is that local
        execution step.  Returns the number of scripts run.
        """
        ran = 0
        targets = (
            [self._object(object_id)] if object_id else list(self.objects.values())
        )
        for obj in targets:
            for script in obj.installed_scripts.get(trigger, []):
                capability = script.get("capability")
                if capability in obj.capabilities:
                    obj.configure(capability, script.get("value"))
                    ran += 1
                    self.notify(
                        "script_executed",
                        object=obj.object_id,
                        trigger=trigger,
                        capability=capability,
                    )
        return ran

    def op_list_present(self) -> list[str]:
        return sorted(o.object_id for o in self.objects.values() if o.present)

    def op_announce(self, topic: str, **payload: Any) -> int:
        """Broadcast an application-level event into the space."""
        self.notify(f"announce.{topic}", **payload)
        return len(self.objects)

    # -- state transport (cluster migration) -----------------------------------

    def export_state(self) -> dict[str, Any]:
        return {
            "objects": [
                {
                    "object_id": o.object_id,
                    "kind": o.kind,
                    "capabilities": dict(o.capabilities),
                    "present": o.present,
                    "installed_scripts": {
                        trigger: [dict(s) for s in scripts]
                        for trigger, scripts in o.installed_scripts.items()
                    },
                }
                for o in self.objects.values()
            ],
            "op_count": self.op_count,
            "op_log": list(self.op_log),
        }

    def import_state(self, doc: dict[str, Any]) -> None:
        self.objects = {
            entry["object_id"]: SmartObject(
                object_id=entry["object_id"],
                kind=entry.get("kind", "generic"),
                capabilities=dict(entry.get("capabilities", {})),
                present=bool(entry.get("present", False)),
                installed_scripts={
                    trigger: [dict(s) for s in scripts]
                    for trigger, scripts in entry.get(
                        "installed_scripts", {}
                    ).items()
                },
            )
            for entry in doc.get("objects", [])
        }
        self.op_count = int(doc.get("op_count", 0))
        self.op_log = list(doc.get("op_log", []))

    # -- presence driving (bench/test API) ------------------------------------

    def object_enters(self, object_id: str) -> None:
        obj = self._object(object_id)
        if obj.present:
            return
        obj.present = True
        self.notify("object_entered", object=object_id, kind=obj.kind)

    def observe_remote_presence(
        self, object_id: str, kind: str, event: str
    ) -> None:
        """Surface a presence event that happened in another partition.

        Distributed deployments (2SVM) propagate space-wide presence so
        every node's installed scripts can react; local object state is
        untouched.
        """
        if event not in ("object_entered", "object_left"):
            raise SpaceError(f"unknown presence event {event!r}")
        self.notify(event, object=object_id, kind=kind, remote=True)

    def object_leaves(self, object_id: str) -> None:
        obj = self._object(object_id)
        if not obj.present:
            return
        obj.present = False
        self.notify("object_left", object=object_id, kind=obj.kind)

    def _object(self, object_id: str) -> SmartObject:
        obj = self.objects.get(object_id)
        if obj is None:
            raise SpaceError(f"unknown object {object_id!r}")
        return obj


def _spin(cost: float) -> None:
    total = 0
    for i in range(int(cost * 1000)):
        total += i
