"""Simulated underlying resources (substitutions for the paper's real
services/hardware; see DESIGN.md substitution table).

* :mod:`repro.sim.network` — communication services (CVM substrate).
* :mod:`repro.sim.plant` — microgrid plant controllers (MGridVM).
* :mod:`repro.sim.space` — smart-space environment (2SVM).
* :mod:`repro.sim.fleet` — crowdsensing device fleet (CSVM).
* :mod:`repro.sim.faults` — deterministic fault injection for any of
  the above (seeded op failures, latency spikes, flaky windows).
"""

from repro.sim.faults import FaultInjector, FlakyWindow, InjectedFault
from repro.sim.fleet import DeviceFleet, FleetError, SensingDevice
from repro.sim.network import CommService, MediaStream, NetworkError, Session
from repro.sim.plant import PlantController, PlantError, PowerDevice
from repro.sim.space import SmartObject, SmartSpace, SpaceError

__all__ = [
    "CommService", "Session", "MediaStream", "NetworkError",
    "PlantController", "PowerDevice", "PlantError",
    "SmartSpace", "SmartObject", "SpaceError",
    "DeviceFleet", "SensingDevice", "FleetError",
    "FaultInjector", "FlakyWindow", "InjectedFault",
]
