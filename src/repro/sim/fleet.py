"""Simulated crowdsensing device fleet (CSVM substrate).

The CSVM drives participatory sensing on smartphones (Melo et al.
[17]).  We substitute a deterministic fleet of simulated devices with
seeded synthetic sensor streams, a task distribution surface, and
reading collection — the code path a crowdsensing query exercises.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any

from repro.middleware.broker.resource import Resource, ResourceError

__all__ = ["FleetError", "SensingDevice", "DeviceFleet"]


class FleetError(ResourceError):
    """Raised on unknown devices/sensors or disabled devices."""


@dataclass
class SensingDevice:
    """One participating device with synthetic sensors.

    Sensor values are deterministic functions of (seed, sample index)
    so experiments are reproducible.  Battery drains per sample;
    devices drop out of the fleet at 0.
    """

    device_id: str
    sensors: tuple[str, ...] = ("temperature", "noise", "gps")
    seed: int = 0
    battery: float = 100.0
    participating: bool = True
    samples_taken: int = 0
    region: str = "center"
    active_tasks: dict[str, dict[str, Any]] = field(default_factory=dict)

    def sample(self, sensor: str) -> float:
        if not self.participating:
            raise FleetError(f"device {self.device_id} is not participating")
        if sensor not in self.sensors:
            raise FleetError(
                f"device {self.device_id} has no sensor {sensor!r}"
            )
        if self.battery <= 0:
            self.participating = False
            raise FleetError(f"device {self.device_id} battery depleted")
        self.samples_taken += 1
        self.battery -= 0.01
        rng = random.Random(f"{self.seed}:{sensor}:{self.samples_taken}")
        base = {"temperature": 20.0, "noise": 55.0, "gps": 0.0}.get(sensor, 0.0)
        drift = 5.0 * math.sin(self.samples_taken / 10.0 + self.seed)
        return base + drift + rng.gauss(0.0, 1.0)


class DeviceFleet(Resource):
    """The fleet resource: task distribution and reading collection.

    Operations: ``register_device``, ``distribute_task``,
    ``revoke_task``, ``update_task``, ``collect``, ``fleet_status``.
    """

    def __init__(
        self,
        name: str = "fleet0",
        *,
        op_cost: float = 0.02,
        work: Any = None,
        seed: int = 42,
    ) -> None:
        super().__init__(name, kind="crowdsensing")
        self.devices: dict[str, SensingDevice] = {}
        self.op_cost = op_cost
        self._work = work or _spin
        self._seed = seed
        self.op_count = 0
        self.op_log: list[str] = []

    def invoke(self, operation: str, **args: Any) -> Any:
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise FleetError(f"fleet {self.name!r}: unknown operation {operation!r}")
        self._work(self.op_cost)
        self.op_count += 1
        self.op_log.append(operation)
        return handler(**args)

    def operations(self) -> list[str]:
        return sorted(name[3:] for name in dir(self) if name.startswith("op_"))

    # -- operations -----------------------------------------------------

    def op_register_device(
        self,
        device: str,
        sensors: list[str] | None = None,
        region: str = "center",
    ) -> str:
        if device in self.devices:
            raise FleetError(f"device {device!r} already registered")
        self.devices[device] = SensingDevice(
            device_id=device,
            sensors=tuple(sensors or ("temperature", "noise", "gps")),
            seed=self._seed + len(self.devices),
            region=region,
        )
        self.notify("device_joined", device=device, region=region)
        return device

    def op_deregister_device(self, device: str) -> bool:
        self._device(device)
        del self.devices[device]
        self.notify("device_departed", device=device)
        return True

    def op_distribute_task(
        self,
        task: str,
        sensor: str,
        region: str = "",
        min_battery: float = 0.0,
    ) -> list[str]:
        """Install a sensing task on all eligible devices; returns them."""
        assigned: list[str] = []
        for device in self.devices.values():
            if not device.participating:
                continue
            if sensor not in device.sensors:
                continue
            if region and device.region != region:
                continue
            if device.battery < min_battery:
                continue
            device.active_tasks[task] = {
                "sensor": sensor, "region": region, "min_battery": min_battery,
            }
            assigned.append(device.device_id)
        self.notify("task_distributed", task=task, devices=len(assigned))
        return sorted(assigned)

    def op_update_task(
        self, task: str, sensor: str | None = None, min_battery: float | None = None
    ) -> int:
        """On-the-fly task change (CSVM's long-running query updates)."""
        updated = 0
        for device in self.devices.values():
            spec = device.active_tasks.get(task)
            if spec is None:
                continue
            if sensor is not None:
                spec["sensor"] = sensor
            if min_battery is not None:
                spec["min_battery"] = float(min_battery)
            updated += 1
        self.notify("task_updated", task=task, devices=updated)
        return updated

    def op_revoke_task(self, task: str) -> int:
        revoked = 0
        for device in self.devices.values():
            if task in device.active_tasks:
                del device.active_tasks[task]
                revoked += 1
        self.notify("task_revoked", task=task, devices=revoked)
        return revoked

    def op_collect(self, task: str) -> list[dict[str, Any]]:
        """One collection round: a reading from each assigned device."""
        readings: list[dict[str, Any]] = []
        for device in list(self.devices.values()):
            spec = device.active_tasks.get(task)
            if spec is None or not device.participating:
                continue
            if device.battery < spec.get("min_battery", 0.0):
                continue
            try:
                value = device.sample(spec["sensor"])
            except FleetError:
                self.notify("device_dropped", device=device.device_id, task=task)
                continue
            readings.append(
                {
                    "device": device.device_id,
                    "sensor": spec["sensor"],
                    "value": value,
                    "region": device.region,
                }
            )
        self.notify("collection_round", task=task, readings=len(readings))
        return readings

    def op_fleet_status(self) -> dict[str, Any]:
        participating = [d for d in self.devices.values() if d.participating]
        return {
            "devices": len(self.devices),
            "participating": len(participating),
            "mean_battery": (
                sum(d.battery for d in participating) / len(participating)
                if participating
                else 0.0
            ),
        }

    # -- state transport (cluster migration) -------------------------------------

    def export_state(self) -> dict[str, Any]:
        return {
            "devices": [
                {
                    "device_id": d.device_id,
                    "sensors": list(d.sensors),
                    "seed": d.seed,
                    "battery": d.battery,
                    "participating": d.participating,
                    "samples_taken": d.samples_taken,
                    "region": d.region,
                    "active_tasks": {
                        task: dict(spec) for task, spec in d.active_tasks.items()
                    },
                }
                for d in self.devices.values()
            ],
            "seed": self._seed,
            "op_count": self.op_count,
            "op_log": list(self.op_log),
        }

    def import_state(self, doc: dict[str, Any]) -> None:
        self.devices = {
            entry["device_id"]: SensingDevice(
                device_id=entry["device_id"],
                sensors=tuple(entry.get("sensors", ())),
                seed=int(entry.get("seed", 0)),
                battery=float(entry.get("battery", 100.0)),
                participating=bool(entry.get("participating", True)),
                samples_taken=int(entry.get("samples_taken", 0)),
                region=entry.get("region", "center"),
                active_tasks={
                    task: dict(spec)
                    for task, spec in entry.get("active_tasks", {}).items()
                },
            )
            for entry in doc.get("devices", [])
        }
        self._seed = int(doc.get("seed", self._seed))
        self.op_count = int(doc.get("op_count", 0))
        self.op_log = list(doc.get("op_log", []))

    # -- churn driving (bench/test API) ------------------------------------------

    def drain_battery(self, device: str, amount: float) -> None:
        found = self._device(device)
        found.battery = max(0.0, found.battery - amount)
        if found.battery == 0.0:
            found.participating = False
            self.notify("device_dropped", device=device, task="*")

    def _device(self, device_id: str) -> SensingDevice:
        found = self.devices.get(device_id)
        if found is None:
            raise FleetError(f"unknown device {device_id!r}")
        return found


def _spin(cost: float) -> None:
    total = 0
    for i in range(int(cost * 1000)):
        total += i
