"""Topic pattern semantics and the indexed routing structure.

Every place the middleware matches a dot-separated topic (or command
operation) against a pattern — the event bus, the Synthesis layer's
DSK event hooks, the Controller's event handler, Broker event bindings
and symptoms, bridge rules — shares :class:`TopicMatcher`, so the
wildcard semantics are defined exactly once.

Semantics (dot-segment based, not raw prefix):

* a pattern without a trailing ``*`` matches by string equality;
* ``"*"`` matches every topic;
* ``"a.b.*"`` matches ``a.b`` itself and every descendant
  (``a.b.c``, ``a.b.c.d``, ...), but **not** ``a.bx`` — the wildcard
  respects segment boundaries;
* ``"pre*"`` / ``"a.pre*"`` (a non-empty prefix in the final segment)
  matches topics with the same number of segments whose final segment
  starts with ``pre`` — so ``"session*"`` matches ``session`` and
  ``sessions`` but not ``sessions.closed``;
* a ``*`` anywhere except the end of the pattern is a literal
  character (as before this module existed).

:class:`TopicIndex` is the routing structure behind
:class:`~repro.runtime.events.EventBus`: exact patterns live in a
dict keyed by the full topic, wildcard patterns live in a segment
trie.  ``match`` visits only entries whose pattern can match the
published topic, so routing cost scales with the topic's segment count
and the number of *matching* entries — not with the total number of
subscriptions.
"""

from __future__ import annotations

from functools import lru_cache
from operator import itemgetter
from typing import Any, Callable, Generic, Iterator, TypeVar

__all__ = ["TopicMatcher", "TopicIndex"]

#: sort key for (order, entry) pairs on the match hot path.
_by_order = itemgetter(0)


@lru_cache(maxsize=1024)
def _compiled_pattern(pattern: str) -> Callable[[str], bool]:
    """Compile a pattern into a topic predicate (module-wide bounded
    LRU): the pattern's segments are split exactly once, no matter how
    many call sites keep re-matching the same pattern."""
    if not pattern.endswith("*"):
        return pattern.__eq__
    if pattern == "*":
        return lambda topic: True
    head = pattern[:-1]
    if head.endswith("."):
        # "a.b.*" — the bare prefix or any descendant, never "a.bx".
        stem = head[:-1]
        return lambda topic: topic == stem or topic.startswith(head)
    # "a.pre*" — same segment count, final segment prefix-matches.
    parts = pattern.split(".")
    lead = parts[:-1]
    final_prefix = parts[-1][:-1]
    count = len(parts)

    def match_prefix(topic: str) -> bool:
        topic_parts = topic.split(".")
        if len(topic_parts) != count:
            return False
        if topic_parts[:-1] != lead:
            return False
        return topic_parts[-1].startswith(final_prefix)

    return match_prefix


class TopicMatcher:
    """Shared dot-segment topic/pattern matching (see module docstring)."""

    WILDCARD = "*"

    @staticmethod
    def is_wildcard(pattern: str) -> bool:
        """True if ``pattern`` uses a trailing ``*`` wildcard."""
        return pattern.endswith("*")

    @staticmethod
    def matches(pattern: str, topic: str) -> bool:
        return _compiled_pattern(pattern)(topic)

    #: compiled predicate for one pattern — callers that hold a pattern
    #: for many matches can skip even the LRU hit.
    compile = staticmethod(_compiled_pattern)


E = TypeVar("E")


class _TrieNode:
    __slots__ = ("children", "tail", "prefix")

    def __init__(self) -> None:
        self.children: dict[str, "_TrieNode"] = {}
        #: entries for patterns ending in ".*" anchored at this node
        #: (match this node's topic and all descendants).
        self.tail: list[tuple[int, Any]] = []
        #: (prefix, order, entry) for patterns whose final segment is
        #: "pre*" with a non-empty prefix; match exactly one further
        #: segment starting with that prefix.
        self.prefix: list[tuple[str, int, Any]] = []


class TopicIndex(Generic[E]):
    """Exact-dict + wildcard-trie index from topic patterns to entries.

    Entries registered under the same or overlapping patterns are
    returned by :meth:`match` in registration order (the event bus
    guarantees delivery order).  ``match`` returns a fresh list, so
    callers may add/remove entries while iterating the result.
    """

    def __init__(self) -> None:
        self._exact: dict[str, list[tuple[int, E]]] = {}
        self._root = _TrieNode()
        self._order = 0
        self._size = 0
        #: candidates inspected by the last ``match`` call (diagnostics
        #: for routing tests: proves non-matching entries are skipped).
        self.last_candidates = 0

    def __len__(self) -> int:
        return self._size

    def add(self, pattern: str, entry: E) -> None:
        # Copy-on-write: bucket lists are replaced, never mutated in
        # place, so an in-flight ``match`` (a handler subscribing from
        # inside a publish, or a reader on another thread) iterates
        # either the old or the new list — never a list being resized.
        order = self._order
        self._order += 1
        self._size += 1
        if not pattern.endswith("*"):
            bucket = self._exact.get(pattern)
            self._exact[pattern] = (
                [(order, entry)] if bucket is None
                else [*bucket, (order, entry)]
            )
            return
        node, prefix = self._wildcard_node(pattern, create=True)
        assert node is not None
        if prefix is None:
            node.tail = [*node.tail, (order, entry)]
        else:
            node.prefix = [*node.prefix, (prefix, order, entry)]

    def remove(self, pattern: str, entry: E) -> bool:
        """Detach ``entry`` registered under ``pattern``; False if absent.

        Like :meth:`add`, removal swaps in a rebuilt bucket list
        (copy-on-write), keeping concurrent ``match`` iterations safe.
        """
        if not pattern.endswith("*"):
            bucket = self._exact.get(pattern)
            if not bucket:
                return False
            kept = self._without_first(bucket, lambda p: p[1] is entry)
            if kept is None:
                return False
            if kept:
                self._exact[pattern] = kept
            else:
                del self._exact[pattern]
            self._size -= 1
            return True
        node, prefix = self._wildcard_node(pattern, create=False)
        if node is None:
            return False
        if prefix is None:
            kept_tail = self._without_first(
                node.tail, lambda p: p[1] is entry
            )
            if kept_tail is None:
                return False
            node.tail = kept_tail
            self._size -= 1
            return True
        kept_prefix = self._without_first(
            node.prefix, lambda t: t[0] == prefix and t[2] is entry
        )
        if kept_prefix is None:
            return False
        node.prefix = kept_prefix
        self._size -= 1
        return True

    @staticmethod
    def _without_first(items: list, predicate: Callable[[Any], bool]):
        """A copy of ``items`` minus the first match; None if no match."""
        for i, item in enumerate(items):
            if predicate(item):
                return items[:i] + items[i + 1:]
        return None

    def match(self, topic: str) -> list[E]:
        """Entries whose pattern matches ``topic``, registration order."""
        hits: list[tuple[int, E]] = []
        candidates = 0
        exact = self._exact.get(topic)
        if exact:
            hits.extend(exact)
            candidates += len(exact)
        segments = topic.split(".")
        node = self._root
        last = len(segments) - 1
        for depth, segment in enumerate(segments):
            if node.tail:
                hits.extend(node.tail)
                candidates += len(node.tail)
            if depth == last and node.prefix:
                candidates += len(node.prefix)
                hits.extend(
                    (order, entry)
                    for pre, order, entry in node.prefix
                    if segment.startswith(pre)
                )
            child = node.children.get(segment)
            if child is None:
                node = None  # type: ignore[assignment]
                break
            node = child
        if node is not None and node.tail:
            # Pattern "a.b.*" also matches the bare topic "a.b".
            hits.extend(node.tail)
            candidates += len(node.tail)
        self.last_candidates = candidates
        if len(hits) > 1:
            hits.sort(key=_by_order)
        return [entry for _order, entry in hits]

    def __iter__(self) -> Iterator[E]:
        entries: list[tuple[int, E]] = []
        for bucket in self._exact.values():
            entries.extend(bucket)
        stack = [self._root]
        while stack:
            node = stack.pop()
            entries.extend(node.tail)
            entries.extend((order, entry) for _pre, order, entry in node.prefix)
            stack.extend(node.children.values())
        entries.sort(key=lambda pair: pair[0])
        return iter(entry for _order, entry in entries)

    def _wildcard_node(
        self, pattern: str, *, create: bool
    ) -> tuple[_TrieNode | None, str | None]:
        """The trie node anchoring a wildcard ``pattern``.

        Returns ``(node, None)`` for tail patterns (``"a.b.*"``/``"*"``)
        and ``(node, prefix)`` for final-segment prefix patterns
        (``"a.pre*"``).  ``node`` is None when absent and not creating.
        """
        parts = pattern.split(".")
        final = parts[-1]
        if final == "*":
            walk, prefix = parts[:-1], None
        else:
            walk, prefix = parts[:-1], final[:-1]
        node = self._root
        for segment in walk:
            child = node.children.get(segment)
            if child is None:
                if not create:
                    return None, prefix
                child = node.children[segment] = _TrieNode()
            node = child
        return node, prefix
