"""Fault tolerance: retry policies, circuit breakers, typed outcomes.

The paper's autonomic managers (Sec. IV/V) promise self-recovering
middleware; this module supplies the generic mechanisms the layers
build that promise on:

* :class:`RetryPolicy` — configurable retry with exponential backoff
  (optionally jittered from a caller-supplied seeded RNG so tests and
  benchmarks stay deterministic).
* :class:`CircuitBreaker` — the classic closed → open → half-open
  state machine, driven by an injectable ``now`` callable so
  :class:`~repro.runtime.clock.VirtualClock` tests are deterministic.
* :class:`InvocationOutcome` — a typed result for guarded calls:
  instead of an unhandled exception, callers receive ``ok`` /
  ``failed`` / ``exhausted`` / ``rejected`` plus attempt counts and
  elapsed time.
* :func:`call_guarded` — the engine combining the three.

Everything here is layer-agnostic; the Broker's resource manager
(:mod:`repro.middleware.broker.resource`) wraps ``Resource.invoke``
with these primitives, and :class:`~repro.runtime.component.Supervisor`
reuses the backoff schedule for component restarts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.clock import Clock, WallClock

__all__ = [
    "FaultError",
    "ReplayedFault",
    "CircuitOpen",
    "RetryPolicy",
    "PASSTHROUGH",
    "BreakerState",
    "CircuitBreaker",
    "InvocationOutcome",
    "call_guarded",
]


class FaultError(Exception):
    """Base class for fault-layer errors."""


class ReplayedFault(FaultError):
    """A memoized error outcome replayed from the write-ahead log whose
    original exception type could not be reconstructed.  Carries the
    original type name and message so diagnostics survive recovery."""


class CircuitOpen(FaultError):
    """An invocation was rejected because the circuit breaker is open."""

    def __init__(self, name: str, *, retry_at: float | None = None) -> None:
        detail = f" (retry at t={retry_at:.3f})" if retry_at is not None else ""
        super().__init__(f"circuit breaker {name!r} is open{detail}")
        self.breaker_name = name
        self.retry_at = retry_at


@dataclass(frozen=True)
class RetryPolicy:
    """Retry with exponential backoff.

    ``delay(n)`` is the pause after the *n*-th failed attempt
    (1-based): ``base_delay * multiplier**(n-1)`` capped at
    ``max_delay``.  ``jitter`` widens each delay by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` drawn from the RNG the caller passes
    (no global randomness — determinism is a feature).

    ``retry_on`` is the tuple of exception types considered transient;
    anything else fails permanently on the first attempt.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.0
    retry_on: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int, rng: Any | None = None) -> float:
        """Backoff after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


#: A policy that never retries — the do-nothing default that keeps the
#: undecorated fast path semantics (one attempt, errors propagate).
PASSTHROUGH = RetryPolicy(max_attempts=1, base_delay=0.0)


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-resource circuit breaker (closed → open → half-open).

    * ``failure_threshold`` consecutive failures open the circuit.
    * While open, :meth:`allow` rejects until ``recovery_time`` seconds
      (on the injected ``now`` clock) have elapsed, then the breaker
      moves to half-open and admits probe calls.
    * ``half_open_trials`` consecutive probe successes close it again;
      any probe failure re-opens it immediately.

    ``on_transition(breaker, old_state, new_state)`` fires on every
    state change — the Broker's resource manager uses it to publish
    breaker events the autonomic manager consumes as symptoms.

    Thread safety: one breaker may guard a resource shared by several
    shard threads, so state transitions and half-open probe counting
    are serialized behind a reentrant lock (reentrant because
    ``on_transition`` handlers may legitimately call back into the
    breaker).  The single-threaded fast path stays lock-free: a
    *closed* breaker admits in :meth:`allow` and records a no-op
    success in :meth:`record_success` on a plain attribute read, which
    is atomic in CPython.  The inherent admission race — a thread may
    pass ``allow`` while another thread's failure concurrently opens
    the circuit — exists with or without the lock (the decision always
    precedes the call) and is bounded to in-flight calls.
    """

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        half_open_trials: int = 1,
        now: Callable[[], float] | None = None,
        on_transition: Callable[["CircuitBreaker", str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_trials < 1:
            raise ValueError("half_open_trials must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_trials = half_open_trials
        self._now = now or (lambda: 0.0)
        self.on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._trial_successes = 0
        self._opened_at = float("-inf")
        self.transitions: list[tuple[float, str, str]] = []
        self.rejections = 0
        self._lock = threading.RLock()

    # -- state machine ---------------------------------------------------

    def _transition(self, target: str) -> None:
        # Caller holds self._lock.
        if target == self.state:
            return
        old, self.state = self.state, target
        self.transitions.append((self._now(), old, target))
        if target == BreakerState.OPEN:
            self._opened_at = self._now()
        elif target == BreakerState.CLOSED:
            self.consecutive_failures = 0
        self._trial_successes = 0
        if self.on_transition is not None:
            self.on_transition(self, old, target)

    @property
    def retry_at(self) -> float:
        """Earliest time an open breaker admits a probe."""
        return self._opened_at + self.recovery_time

    def allow(self) -> bool:
        """Whether a call may proceed; may transition open → half-open."""
        if self.state == BreakerState.CLOSED:
            return True  # lock-free fast path (atomic attribute read)
        with self._lock:
            if self.state == BreakerState.OPEN:
                if self._now() >= self.retry_at:
                    self._transition(BreakerState.HALF_OPEN)
                else:
                    self.rejections += 1
                    return False
            return True

    def record_success(self) -> None:
        if (
            self.state == BreakerState.CLOSED
            and self.consecutive_failures == 0
        ):
            return  # lock-free fast path: nothing to update
        with self._lock:
            if self.state == BreakerState.HALF_OPEN:
                self._trial_successes += 1
                if self._trial_successes >= self.half_open_trials:
                    self._transition(BreakerState.CLOSED)
            else:
                self.consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self.state == BreakerState.HALF_OPEN:
                self._transition(BreakerState.OPEN)
                return
            self.consecutive_failures += 1
            if (
                self.state == BreakerState.CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self._transition(BreakerState.OPEN)

    def reset(self) -> None:
        """Force-close (administrative override)."""
        with self._lock:
            self._transition(BreakerState.CLOSED)

    # -- externalization (PR 5) ------------------------------------------

    def externalize(self) -> dict[str, Any]:
        """Capture the mutable state-machine fields for migration.

        Configuration (thresholds, recovery time) is *not* captured —
        it belongs to the fault policy the target already installs.
        ``-inf`` is not JSON; an unopened breaker encodes ``opened_at``
        as ``None``.
        """
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "trial_successes": self._trial_successes,
                "opened_at": (
                    None if self._opened_at == float("-inf") else self._opened_at
                ),
                "rejections": self.rejections,
                "transitions": [list(entry) for entry in self.transitions],
            }

    def restore_external(self, doc: dict[str, Any]) -> None:
        """Apply captured state without firing ``on_transition``."""
        state = doc.get("state", BreakerState.CLOSED)
        if state not in (
            BreakerState.CLOSED, BreakerState.OPEN, BreakerState.HALF_OPEN
        ):
            raise ValueError(f"unknown breaker state {state!r}")
        with self._lock:
            self.state = state
            self.consecutive_failures = int(doc.get("consecutive_failures", 0))
            self._trial_successes = int(doc.get("trial_successes", 0))
            opened_at = doc.get("opened_at")
            self._opened_at = (
                float("-inf") if opened_at is None else float(opened_at)
            )
            self.rejections = int(doc.get("rejections", 0))
            self.transitions = [
                (float(t), str(old), str(new))
                for t, old, new in doc.get("transitions", [])
            ]

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"failures={self.consecutive_failures})"
        )


@dataclass
class InvocationOutcome:
    """Typed result of a guarded invocation.

    ``status`` is one of:

    * ``"ok"`` — the call succeeded (possibly after retries).
    * ``"failed"`` — a non-retryable error; ``error`` holds it.
    * ``"exhausted"`` — every permitted attempt raised a transient
      error; ``error`` holds the last one.
    * ``"rejected"`` — the circuit breaker refused the call (or opened
      mid-retry); ``error`` is a :class:`CircuitOpen`.
    """

    status: str
    label: str = ""
    value: Any = None
    error: BaseException | None = None
    attempts: int = 0
    elapsed: float = 0.0

    OK = "ok"
    FAILED = "failed"
    EXHAUSTED = "exhausted"
    REJECTED = "rejected"

    @property
    def ok(self) -> bool:
        return self.status == self.OK

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def unwrap(self) -> Any:
        """Return the value, or raise the captured error."""
        if self.ok:
            return self.value
        assert self.error is not None
        raise self.error

    def summary(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "label": self.label,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "error": str(self.error) if self.error is not None else None,
        }


def call_guarded(
    fn: Callable[[], Any],
    *,
    policy: RetryPolicy = PASSTHROUGH,
    breaker: CircuitBreaker | None = None,
    clock: Clock | None = None,
    rng: Any | None = None,
    label: str = "",
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> InvocationOutcome:
    """Run ``fn`` under a retry policy and optional circuit breaker.

    Never raises for failures of ``fn`` itself — every outcome is
    reported as a typed :class:`InvocationOutcome`.  Backoff pauses go
    through ``clock.sleep`` so a virtual clock makes them instant and
    deterministic.  ``on_retry(attempt, error, delay)`` fires before
    each backoff pause.
    """
    clock = clock or WallClock()
    start = clock.now()

    def done(status: str, **kwargs: Any) -> InvocationOutcome:
        return InvocationOutcome(
            status=status, label=label,
            elapsed=clock.now() - start, **kwargs,
        )

    if breaker is not None and not breaker.allow():
        return done(
            InvocationOutcome.REJECTED, attempts=0,
            error=CircuitOpen(breaker.name or label, retry_at=breaker.retry_at),
        )
    attempts = 0
    while True:
        attempts += 1
        try:
            value = fn()
        except Exception as exc:  # noqa: BLE001 - converted to outcome
            if breaker is not None:
                breaker.record_failure()
            if not policy.retryable(exc):
                return done(InvocationOutcome.FAILED, attempts=attempts, error=exc)
            if attempts >= policy.max_attempts:
                return done(
                    InvocationOutcome.EXHAUSTED, attempts=attempts, error=exc
                )
            delay = policy.delay(attempts, rng)
            if on_retry is not None:
                on_retry(attempts, exc, delay)
            if delay > 0:
                clock.sleep(delay)
            if breaker is not None and not breaker.allow():
                return done(
                    InvocationOutcome.REJECTED, attempts=attempts,
                    error=CircuitOpen(
                        breaker.name or label, retry_at=breaker.retry_at
                    ),
                )
        else:
            if breaker is not None:
                breaker.record_success()
            return done(InvocationOutcome.OK, attempts=attempts, value=value)
