"""Sharded multi-session runtime: a parallel event fabric.

The paper's runtime environment owns "threads (and the underlying
concurrency model)" for the middleware components (Sec. V-A); the
ROADMAP's north star asks for a platform that serves heavy traffic from
many concurrent users.  One DSVM session is fast (PR 3's compiled
tier), but every session used to share a single-threaded
:class:`~repro.runtime.events.EventBus` and
:class:`~repro.runtime.metrics.MetricsRegistry` — two sessions could
not safely run at once.

:class:`ShardedRuntime` partitions platform sessions across N worker
shards by session-key affinity.  Each :class:`Shard` owns its own
event bus, metrics registry, and mailbox, and (in threaded mode) a
dedicated pump thread — so everything *inside* a shard remains
single-threaded and lock-free, exactly the hot path PR 3 optimized.
Concurrency exists only *between* shards:

* work enters through :meth:`ShardedRuntime.submit`, which hashes the
  session key to its owning shard and posts the task to that shard's
  mailbox (strict FIFO per shard, so per-session ordering holds);
* signals that must cross shards go through the batched
  :class:`ForwardingChannel`, which buffers per destination and
  flushes with :meth:`EventBus.publish_batch` on the *destination*
  shard's thread — buses are never touched from a foreign thread;
* observability crosses shards only on read:
  :meth:`ShardedRuntime.merged_metrics` folds the per-shard registries
  into one thread-safe view, and the process-wide
  :class:`~repro.runtime.trace.TraceRecorder` (itself mutex-guarded)
  sees signals from every shard, with ``trace_id``/``parent_seq``
  chains surviving the forwarding channel because forwarded signals
  are causal children (:meth:`Signal.derive`) of their originals.

Affinity hashing uses CRC-32 of the key, not Python's randomized
``hash()``, so a session maps to the same shard in every process —
required for replayable benchmarks and cross-process routing tables.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import Future
from typing import Any, Callable, Iterable

from repro.runtime.clock import Clock, WallClock
from repro.runtime.events import EventBus, Signal
from repro.runtime.executor import Mailbox
from repro.runtime.metrics import MetricsRegistry

__all__ = [
    "ShardedRuntimeError",
    "shard_index_for",
    "current_shard",
    "Shard",
    "ForwardingChannel",
    "ShardedRuntime",
    "ShardRebalancer",
    "RebalanceTrigger",
]

#: the shard whose task the current thread is executing (if any).
_active = threading.local()


def current_shard() -> "Shard | None":
    """The shard executing on the calling thread, or None outside one."""
    return getattr(_active, "shard", None)


class ShardedRuntimeError(Exception):
    """Raised on fabric misuse (bad shard count, submit after stop, ...)."""


def shard_index_for(key: str, shards: int) -> int:
    """Deterministic session-key -> shard affinity (CRC-32 based).

    Stable across processes and Python versions — ``hash(str)`` is
    salted per process and would re-partition every restart.
    """
    return zlib.crc32(str(key).encode("utf-8")) % shards


class Shard:
    """One worker partition: bus + metrics + mailbox (+ pump thread).

    The shard's registry is single-writer (``thread_safe=False``): only
    the shard's own thread records into it, which keeps counter bumps
    and histogram observations at PR 3 cost.  All external interaction
    goes through :meth:`post` / :meth:`call`.
    """

    def __init__(
        self,
        index: int,
        *,
        fabric_name: str = "fabric",
        clock: Clock | None = None,
        inline: bool = False,
    ) -> None:
        self.index = index
        self.name = f"{fabric_name}.shard{index}"
        self.inline = inline
        self.clock = clock or WallClock()
        self.metrics = MetricsRegistry(clock=self.clock)
        self.bus = EventBus(
            name=f"{self.name}.bus", clock=self.clock, metrics=self.metrics
        )
        self.mailbox = Mailbox(self.name, on_error=self._on_task_error)
        self.task_errors: list[Exception] = []
        #: optional per-shard write-ahead log (see
        #: ShardedRuntime.attach_wal): fabric-routed signals append
        #: here before dispatch.
        self.wal: Any = None
        #: optional ShardDurability (see ShardedRuntime.attach_durability):
        #: the fabric's DurabilityPolicy applied to this shard — owns
        #: ``wal`` plus the per-session effect journals.
        self.durability: Any = None
        self.started = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "Shard":
        if self.started:
            return self
        self.started = True
        if not self.inline:
            self.mailbox.start_pump()
        return self

    def stop(self, *, timeout: float = 5.0) -> "Shard":
        if not self.started:
            return self
        self.started = False
        if self.inline:
            self.mailbox.drain()
            return self
        if not self.mailbox.stop_pump(timeout=timeout):
            raise ShardedRuntimeError(
                f"shard {self.name!r}: pump thread did not stop within "
                f"{timeout}s (wedged task?)"
            )
        # Tasks posted while the pump was winding down still run —
        # deterministic drain, nothing silently dropped.
        self.mailbox.drain()
        return self

    # -- work -------------------------------------------------------------

    def post(self, task: Callable[[], None]) -> None:
        """Enqueue fire-and-forget work on this shard (FIFO).

        Tasks execute with this shard marked as :func:`current_shard`,
        which is how the fabric distinguishes same-shard publishes
        (direct, lock-free) from cross-shard ones (batched channel).
        """
        if not self.started:
            raise ShardedRuntimeError(f"shard {self.name!r} is not started")

        def scoped() -> None:
            previous = getattr(_active, "shard", None)
            _active.shard = self
            try:
                task()
            finally:
                _active.shard = previous

        self.mailbox.post(scoped)

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Enqueue ``fn`` and expose its result as a Future."""
        future: Future = Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - captured in future
                future.set_exception(exc)

        self.post(run)
        return future

    def _on_task_error(self, exc: Exception) -> None:
        # Future-wrapped tasks capture their own exceptions; anything
        # arriving here came from a raw ``post`` and must not kill the
        # pump thread (the shard equivalent of mailbox error routing).
        self.task_errors.append(exc)
        self.metrics.count("fabric.task_errors", self.name)

    def drain(self, *, max_tasks: int | None = None) -> int:
        """Inline mode: synchronously run queued tasks on the caller."""
        return self.mailbox.drain(max_tasks=max_tasks)

    def __repr__(self) -> str:
        return (
            f"Shard({self.index}, started={self.started}, "
            f"pending={self.mailbox.pending})"
        )


class ForwardingChannel:
    """Batched cross-shard signal forwarding.

    Producers on any shard thread call :meth:`forward`; signals are
    buffered per destination shard and flushed as one
    :meth:`EventBus.publish_batch` task posted to the destination's
    mailbox, so the destination bus is only ever touched by its own
    shard thread and a burst of M cross-shard signals to one shard
    costs one mailbox hop and one batched routing pass instead of M.

    Forwarded signals are causal children of the originals
    (``Signal.derive``), so ``trace_id``/``parent_seq`` chains span
    shard boundaries.
    """

    def __init__(self, runtime: "ShardedRuntime", *, batch_size: int = 64) -> None:
        if batch_size < 1:
            raise ShardedRuntimeError("batch_size must be >= 1")
        self.runtime = runtime
        self.batch_size = batch_size
        self._lock = threading.Lock()
        self._buffers: dict[int, list[Signal]] = {}
        self.forwarded = 0
        self.batches = 0

    def forward(
        self, signal: Signal, *, to_shard: int, origin: str | None = None
    ) -> None:
        """Buffer a causal copy of ``signal`` for ``to_shard``."""
        shards = len(self.runtime.shards)
        if not 0 <= to_shard < shards:
            raise ShardedRuntimeError(
                f"no shard {to_shard} (fabric has {shards})"
            )
        child = signal.derive(
            origin=origin if origin is not None else signal.origin
        )
        flush: list[Signal] | None = None
        with self._lock:
            buffer = self._buffers.setdefault(to_shard, [])
            buffer.append(child)
            self.forwarded += 1
            if len(buffer) >= self.batch_size:
                flush = self._buffers.pop(to_shard)
        if flush is not None:
            self._dispatch(to_shard, flush)

    def flush(self, to_shard: int | None = None) -> int:
        """Dispatch buffered signals (all shards by default); returns
        how many signals were flushed."""
        with self._lock:
            if to_shard is None:
                drained = self._buffers
                self._buffers = {}
            else:
                batch = self._buffers.pop(to_shard, None)
                drained = {to_shard: batch} if batch else {}
        total = 0
        for index, batch in drained.items():
            total += len(batch)
            self._dispatch(index, batch)
        return total

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._buffers.values())

    def _dispatch(self, to_shard: int, batch: list[Signal]) -> None:
        shard = self.runtime.shards[to_shard]
        self.batches += 1
        shard.post(lambda: self._deliver(shard, batch))

    @staticmethod
    def _deliver(shard: Shard, batch: list[Signal]) -> None:
        shard.metrics.count("fabric.forwarded_in", shard.name, len(batch))
        shard.bus.publish_batch(batch)

    def stats(self) -> dict[str, Any]:
        return {
            "forwarded": self.forwarded,
            "batches": self.batches,
            "pending": self.pending,
            "batch_size": self.batch_size,
        }


class ShardedRuntime:
    """N worker shards plus the cross-shard forwarding channel.

    ``inline=True`` builds a deterministic single-thread fabric: tasks
    queue in the shard mailboxes and run on the caller inside
    :meth:`drain` — the mode tests and golden-trace benchmark baselines
    use.  Threaded mode (default) pumps every mailbox on its own
    consumer thread.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        name: str = "fabric",
        inline: bool = False,
        clock_factory: Callable[[], Clock] | None = None,
        batch_size: int = 64,
    ) -> None:
        if shards < 1:
            raise ShardedRuntimeError("a fabric needs at least one shard")
        self.name = name
        self.inline = inline
        self.shards = [
            Shard(
                index,
                fabric_name=name,
                clock=clock_factory() if clock_factory is not None else None,
                inline=inline,
            )
            for index in range(shards)
        ]
        self.channel = ForwardingChannel(self, batch_size=batch_size)
        #: session-key -> shard-index overrides written by migration.
        #: Read lock-free on the hot path (CPython dict reads are
        #: atomic; the common case is an empty dict), written under
        #: ``_routes_lock``.
        self._routes: dict[str, int] = {}
        self._routes_lock = threading.Lock()
        self.migrations = 0
        self.started = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ShardedRuntime":
        if self.started:
            return self
        for shard in self.shards:
            shard.start()
        self.started = True
        return self

    def stop(self, *, timeout: float = 5.0) -> "ShardedRuntime":
        """Flush the channel, drain every mailbox, join every pump.

        Deterministic: after ``stop`` returns, all submitted work and
        all forwarded signals have executed and no fabric thread is
        left behind (``threading.enumerate()``-clean).
        """
        if not self.started:
            return self
        # Forwarded batches may enqueue further work; loop until the
        # whole fabric is quiescent.
        if not self.inline:
            self._barrier(timeout=timeout)
        while self.channel.flush() or self._pending:
            if self.inline:
                self.drain()
            else:
                self._barrier(timeout=timeout)
        for shard in self.shards:
            shard.stop(timeout=timeout)
        for shard in self.shards:
            if shard.wal is not None:
                shard.wal.sync()
        self.started = False
        return self

    # -- durability (PR 7) -------------------------------------------------

    def attach_wal(
        self,
        directory: Any,
        *,
        sync_every: int = 64,
        fsync: bool = True,
    ) -> list[Any]:
        """Give every shard a write-ahead log under ``directory``.

        Each shard logs to its own subdirectory (``shard0``, ...), so
        appends never contend across shards and recovery is per-shard
        parallel.  Signals routed through :meth:`route_signal` are
        appended before dispatch.  Returns the logs, shard-ordered.
        """
        from pathlib import Path

        from repro.runtime.wal import WriteAheadLog

        root = Path(directory)
        logs = []
        for shard in self.shards:
            shard.wal = WriteAheadLog(
                root / f"shard{shard.index}",
                name=f"{self.name}-s{shard.index}",
                sync_every=sync_every,
                fsync=fsync,
            )
            logs.append(shard.wal)
        return logs

    def attach_durability(self, policy: Any = None) -> list[Any]:
        """Apply a :class:`~repro.runtime.durability.DurabilityPolicy`
        to every shard (PR 10).

        Each shard gets a :class:`~repro.runtime.durability.ShardDurability`
        — its own ``wal-shard-NN/`` log under the policy's root plus
        per-session effect journals — so every hosted session is
        durable without opting in.  ``shard.wal`` aliases the
        durability log, which keeps :meth:`route_signal`'s write-ahead
        of fabric signals on the same per-shard file.  Returns the
        shard-ordered durability runtimes (empty when the policy is
        ``"off"``).
        """
        from repro.runtime.durability import DurabilityPolicy

        resolved = DurabilityPolicy.resolve(policy)
        if not resolved.enabled:
            return []
        durables = []
        for shard in self.shards:
            durability = resolved.open_shard(
                shard.index, name=f"{self.name}-s{shard.index}"
            )
            shard.durability = durability
            shard.wal = durability.wal
            durables.append(durability)
        return durables

    def close_wals(self) -> None:
        for shard in self.shards:
            if shard.durability is not None:
                shard.durability.close()
                shard.durability = None
                shard.wal = None
            elif shard.wal is not None:
                shard.wal.close()
                shard.wal = None

    def __enter__(self) -> "ShardedRuntime":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def _pending(self) -> int:
        return sum(shard.mailbox.pending for shard in self.shards)

    def _barrier(self, *, timeout: float = 5.0) -> None:
        """Wait until every task posted so far has executed."""
        futures = [shard.call(lambda: None) for shard in self.shards]
        for future in futures:
            future.result(timeout=timeout)

    # -- routing ----------------------------------------------------------

    def shard_for(self, key: str) -> Shard:
        """The shard owning session ``key``: the migration override if
        one exists, otherwise stable CRC-32 affinity."""
        if self._routes:
            index = self._routes.get(str(key))
            if index is not None:
                return self.shards[index]
        return self.shards[shard_index_for(key, len(self.shards))]

    def submit(
        self, key: str, fn: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Future:
        """Run ``fn`` on the shard owning ``key``; FIFO per shard."""
        if not self.started:
            raise ShardedRuntimeError(f"fabric {self.name!r} is not started")
        return self.shard_for(key).call(fn, *args, **kwargs)

    def post(self, key: str, task: Callable[[], None]) -> None:
        """Fire-and-forget variant of :meth:`submit`."""
        if not self.started:
            raise ShardedRuntimeError(f"fabric {self.name!r} is not started")
        self.shard_for(key).post(task)

    def route_signal(
        self, signal: Signal, *, key: str, origin: str | None = None
    ) -> None:
        """Publish ``signal`` on the bus of the shard owning ``key``.

        Same-shard signals (the common case under affinity routing)
        publish directly and stay on the lock-free intra-shard path;
        signals whose topic targets another shard go through the
        batched forwarding channel.  The channel keeps causal chains
        intact either way.
        """
        target = self.shard_for(key)
        if target.wal is not None:
            # Write-ahead: the signal frame (with its causal chain) is
            # durable before any subscriber observes it.  Tolerant
            # encoding — fabric payloads may hold non-JSON values; the
            # fabric log is for recovery *scoping* and time-travel
            # replay, while entry-level exactly-once goes through
            # DurableSession/EffectJournal.
            target.wal.append_entry(signal, session=str(key), strict=False)
        if current_shard() is target:
            target.bus.publish(signal)
            return
        self.channel.forward(signal, to_shard=target.index, origin=origin)

    # -- live migration (PR 5) ---------------------------------------------

    def migrate(
        self,
        key: str,
        to_shard: int,
        *,
        capture: Callable[[], Any],
        restore: Callable[[Any], Any],
        timeout: float = 30.0,
    ) -> Any:
        """Move session ``key`` to ``to_shard`` without losing state.

        Protocol (quiesce → drain → snapshot → transfer → restore →
        re-point):

        1. ``capture`` is posted to the *source* shard's FIFO mailbox,
           so it runs after every previously submitted task for the
           session — the capture itself is the quiesce point, and its
           return value is the state that travels (typically a
           :class:`~repro.middleware.snapshot.SessionSnapshot`).
        2. Cross-shard signals already buffered for the source are
           flushed and delivered on the source bus *before* the
           re-point, so nothing is silently redirected mid-flight.
           (Producers must not target the session concurrently with
           the migration itself; FIFO submits through :meth:`submit`
           simply queue behind it.)
        3. The routing override maps ``key`` to the target shard: every
           subsequent :meth:`submit` / :meth:`route_signal` lands there.
        4. ``restore(snapshot)`` runs on the *target* shard's thread,
           rebuilding the session against the target's bus/clock/
           metrics; its return value is returned to the caller.

        Causal trace chains survive because the snapshot carries model
        documents, not live signals — signals forwarded post-migration
        derive children exactly as before, now toward the new shard.
        """
        if not self.started:
            raise ShardedRuntimeError(f"fabric {self.name!r} is not started")
        if not 0 <= to_shard < len(self.shards):
            raise ShardedRuntimeError(
                f"no shard {to_shard} (fabric has {len(self.shards)})"
            )
        source = self.shard_for(key)
        target = self.shards[to_shard]
        if source is target:
            return None
        # 1. quiesce + snapshot on the source shard thread.
        captured = source.call(capture)
        if self.inline:
            self.drain()
        snapshot = captured.result(timeout=timeout)
        # 2. drain in-flight signals bound for the source shard.
        if self.channel.flush(source.index):
            if self.inline:
                self.drain()
            else:
                source.call(lambda: None).result(timeout=timeout)
        # 3. re-point the route.  A session migrated back to its
        # affinity shard needs no override — storing one anyway would
        # leak a table entry per round-trip for the fabric's lifetime.
        home = shard_index_for(key, len(self.shards))
        with self._routes_lock:
            if to_shard == home:
                self._routes.pop(str(key), None)
            else:
                self._routes[str(key)] = to_shard
        # 4. restore on the target shard thread.
        restored = target.call(restore, snapshot)
        if self.inline:
            self.drain()
        result = restored.result(timeout=timeout)
        # 5. durable fabrics hand the session's log tail (latest full
        # checkpoint + later frames) and truncation floor to the target
        # shard's log, so recovery after the move needs only the
        # target's wal — and the source stops pinning segments for a
        # session it no longer hosts.
        if (
            source.durability is not None
            and target.durability is not None
            and source.durability is not target.durability
        ):
            frames = source.durability.export_session(str(key))
            if frames:
                target.durability.import_session(frames, session=str(key))
            source.durability.forget(str(key))
        self.migrations += 1
        target.metrics.count("fabric.migrations_in", target.name)
        return result

    def migrate_out(
        self,
        key: str,
        *,
        capture: Callable[[], Any],
        transfer: Callable[[Any], Any],
        timeout: float = 30.0,
    ) -> Any:
        """Migrate session ``key`` out of this fabric entirely.

        The cross-process egress half of :meth:`migrate`: the same
        quiesce→capture→flush discipline runs on the source shard, but
        instead of restoring on a sibling shard, ``transfer(snapshot)``
        runs on the *calling* thread and ships the captured state
        elsewhere — typically over a cluster socket to a remote worker
        (:class:`~repro.runtime.cluster.ProcessCluster`).  The local
        route override (if any) is dropped; the caller owns remote
        routing from here on.  Returns ``transfer``'s result.
        """
        if not self.started:
            raise ShardedRuntimeError(f"fabric {self.name!r} is not started")
        source = self.shard_for(key)
        # 1. quiesce + snapshot on the source shard thread (FIFO: runs
        # after everything already submitted for the session).
        captured = source.call(capture)
        if self.inline:
            self.drain()
        snapshot = captured.result(timeout=timeout)
        # 2. deliver in-flight signals bound for the source shard.
        if self.channel.flush(source.index):
            if self.inline:
                self.drain()
            else:
                source.call(lambda: None).result(timeout=timeout)
        # 3. ship the state out; only on success forget local routing.
        result = transfer(snapshot)
        with self._routes_lock:
            self._routes.pop(str(key), None)
        if source.durability is not None:
            # the session now lives behind a remote log; stop pinning
            # local segments for it.
            source.durability.forget(str(key))
        self.migrations += 1
        source.metrics.count("fabric.migrations_out", source.name)
        return result

    def release(self, key: str) -> bool:
        """Forget session ``key``'s migration route override.

        Callers that close sessions must release them, otherwise every
        migrated-then-closed session leaks one ``_routes`` entry for
        the fabric's lifetime.  Safe to call for never-migrated keys;
        returns True when an override was actually dropped.
        """
        with self._routes_lock:
            return self._routes.pop(str(key), None) is not None

    def route_overrides(self) -> dict[str, int]:
        """A copy of the migration routing overlay (key -> shard)."""
        with self._routes_lock:
            return dict(self._routes)

    def drain(self) -> int:
        """Inline mode: run queued tasks (and flushed batches) to
        quiescence on the calling thread; returns tasks executed."""
        if not self.inline:
            raise ShardedRuntimeError(
                "drain() is for inline fabrics; threaded shards pump "
                "their own mailboxes"
            )
        ran = 0
        while True:
            self.channel.flush()
            step = sum(shard.drain() for shard in self.shards)
            if step == 0 and self.channel.pending == 0:
                return ran
            ran += step

    # -- aggregation ------------------------------------------------------

    def merged_metrics(self) -> MetricsRegistry:
        """A thread-safe merged view of every shard's registry."""
        return MetricsRegistry.merged(shard.metrics for shard in self.shards)

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.merged_metrics().snapshot()

    def stats(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "shards": len(self.shards),
            "inline": self.inline,
            "started": self.started,
            "pending": self._pending,
            "processed": sum(s.mailbox.processed for s in self.shards),
            "task_errors": sum(len(s.task_errors) for s in self.shards),
            "published": sum(s.bus.published for s in self.shards),
            "delivered": sum(s.bus.delivered for s in self.shards),
            "channel": self.channel.stats(),
            "migrations": self.migrations,
            "route_overrides": len(self._routes),
        }

    def __repr__(self) -> str:
        return (
            f"ShardedRuntime({self.name!r}, shards={len(self.shards)}, "
            f"inline={self.inline}, started={self.started})"
        )


class ShardRebalancer:
    """Moves hot sessions between shards to even out load (PR 5).

    CRC-32 affinity balances session *counts*, not session *costs*: a
    few heavy sessions can pin one shard at 100% while the rest idle.
    The rebalancer consumes per-session cost estimates (the caller
    derives them from per-shard metrics — e.g. API-call counters or
    mailbox task counts), plans greedy hottest-to-coolest moves until
    the max/min shard load ratio drops under ``imbalance_threshold``,
    and applies the moves with :meth:`ShardedRuntime.migrate`.
    """

    def __init__(
        self,
        runtime: ShardedRuntime,
        *,
        imbalance_threshold: float = 1.25,
        max_moves: int = 64,
    ) -> None:
        if imbalance_threshold < 1.0:
            raise ShardedRuntimeError("imbalance_threshold must be >= 1.0")
        self.runtime = runtime
        self.imbalance_threshold = imbalance_threshold
        self.max_moves = max_moves
        self.moves_applied = 0

    # -- observation --------------------------------------------------------

    def shard_loads(self) -> list[int]:
        """Tasks processed per shard — the fabric-level load signal."""
        return [shard.mailbox.processed for shard in self.runtime.shards]

    def imbalance(self, loads: "Iterable[float]") -> float:
        """max/min load ratio (min clamped to 1 to stay defined)."""
        values = list(loads)
        return max(values) / max(min(values), 1) if values else 1.0

    # -- planning -----------------------------------------------------------

    def plan_from_metrics(
        self,
        sessions: "Iterable[str]",
        *,
        queue_weight: float = 1e-3,
    ) -> list[tuple[str, int]]:
        """Plan moves from *observed* per-shard load instead of
        caller-supplied costs (ROADMAP follow-on from PR 5).

        Per-shard load is read from the shard's own registry — the sum
        of observed latency seconds across its histograms (broker
        call/cycle timings land there through the per-shard platform) —
        plus ``queue_weight`` per pending mailbox task, so a shard with
        a deep backlog counts as hot even before those tasks execute.
        Each shard's load is attributed evenly to the sessions homed on
        it (per-shard registries cannot see individual sessions): under
        the greedy planner that still moves sessions off hot shards
        first, which is the signal that matters.  The explicit
        :meth:`plan` path remains for callers with exact costs (tests,
        cost-model experiments).
        """
        shards = self.runtime.shards
        loads: list[float] = []
        for shard in shards:
            observed = sum(
                histogram.total
                for _name, _label, histogram in shard.metrics.histograms()
            )
            loads.append(observed + queue_weight * shard.mailbox.pending)
        homed: dict[int, list[str]] = {shard.index: [] for shard in shards}
        for key in sorted(set(sessions)):
            homed[self.runtime.shard_for(key).index].append(key)
        costs: dict[str, float] = {}
        for index, keys in homed.items():
            if not keys:
                continue
            share = loads[index] / len(keys)
            for key in keys:
                costs[key] = share
        return self.plan(costs)

    def plan(self, session_costs: dict[str, float]) -> list[tuple[str, int]]:
        """Greedy hottest-to-coolest move plan.

        ``session_costs`` maps session keys to a load estimate in any
        consistent unit.  Repeatedly moves the most expensive session
        off the most loaded shard onto the least loaded one, as long as
        the move strictly shrinks the max-min spread and the fabric is
        above the imbalance threshold.  Deterministic: ties break on
        session key.
        """
        shards = len(self.runtime.shards)
        if shards < 2 or not session_costs:
            return []
        loads = [0.0] * shards
        by_shard: dict[int, list[str]] = {i: [] for i in range(shards)}
        for key in sorted(session_costs):
            index = self.runtime.shard_for(key).index
            loads[index] += session_costs[key]
            by_shard[index].append(key)
        moves: list[tuple[str, int]] = []
        while len(moves) < self.max_moves:
            hottest = max(range(shards), key=lambda i: (loads[i], -i))
            coolest = min(range(shards), key=lambda i: (loads[i], i))
            spread = loads[hottest] - loads[coolest]
            if (
                hottest == coolest
                or not by_shard[hottest]
                or loads[hottest] <= self.imbalance_threshold * max(loads[coolest], 1e-12)
            ):
                break
            candidate = max(
                by_shard[hottest], key=lambda k: (session_costs[k], k)
            )
            cost = session_costs[candidate]
            if cost >= spread:
                # Moving it would overshoot; try the cheapest instead.
                candidate = min(
                    by_shard[hottest], key=lambda k: (session_costs[k], k)
                )
                cost = session_costs[candidate]
                if cost >= spread:
                    break  # no move improves the spread
            by_shard[hottest].remove(candidate)
            by_shard[coolest].append(candidate)
            loads[hottest] -= cost
            loads[coolest] += cost
            moves.append((candidate, coolest))
        return moves

    # -- execution ---------------------------------------------------------

    def apply(
        self,
        moves: "Iterable[tuple[str, int]]",
        *,
        capture: Callable[[str], Any],
        restore: Callable[[str, Any], Any],
        timeout: float = 30.0,
    ) -> int:
        """Execute a plan via live migration.

        ``capture(key)`` runs on the session's source shard and returns
        the travelling state; ``restore(key, snapshot)`` runs on the
        target shard.  Returns the number of sessions moved.
        """
        applied = 0
        for key, to_shard in moves:
            self.runtime.migrate(
                key,
                to_shard,
                capture=lambda k=key: capture(k),
                restore=lambda snapshot, k=key: restore(k, snapshot),
                timeout=timeout,
            )
            applied += 1
        self.moves_applied += applied
        return applied


class RebalanceTrigger:
    """Periodic load-driven rebalancing (PR 9, folded PR 5 follow-on).

    Every ``interval`` seconds: plan moves from *live* observed load
    (:meth:`ShardRebalancer.plan_from_metrics` — per-shard latency
    histogram totals plus mailbox queue depth) over the caller's
    current session set, and apply them through the migration protocol.
    No caller-supplied cost model: the metrics registry *is* the cost
    model.

    Timer discipline mirrors ``CheckpointScheduler``: on clocks with a
    timer queue (``VirtualClock``) ticks self-schedule through
    ``clock.call_later`` with epoch fencing (``stop()``/``start()``
    bump the epoch so a stale timer from a previous life fires as a
    no-op); on plain wall clocks the owner drives :meth:`tick`
    explicitly between workload steps.
    """

    def __init__(
        self,
        rebalancer: ShardRebalancer,
        *,
        sessions: Callable[[], "Iterable[str]"],
        capture: Callable[[str], Any],
        restore: Callable[[str, Any], Any],
        clock: Clock,
        interval: float = 1.0,
        queue_weight: float = 1e-3,
        min_moves: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise ShardedRuntimeError("rebalance interval must be > 0")
        self.rebalancer = rebalancer
        self.sessions = sessions
        self.capture = capture
        self.restore = restore
        self.clock = clock
        self.interval = interval
        self.queue_weight = queue_weight
        self.min_moves = min_moves
        self.timeout = timeout
        self.ticks = 0
        self.moves_applied = 0
        self.errors = 0
        self.last_error: Exception | None = None
        self.last_plan: list[tuple[str, int]] = []
        self._running = False
        self._epoch = 0
        self._timer: Any = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "RebalanceTrigger":
        if self._running:
            return self
        self._running = True
        self._epoch += 1
        self._schedule()
        return self

    def stop(self) -> "RebalanceTrigger":
        self._running = False
        self._epoch += 1
        timer, self._timer = self._timer, None
        if timer is not None and hasattr(timer, "cancel"):
            timer.cancel()
        return self

    @property
    def running(self) -> bool:
        return self._running

    def _schedule(self) -> None:
        schedule = getattr(self.clock, "call_later", None)
        if callable(schedule):
            epoch = self._epoch
            self._timer = schedule(self.interval, lambda: self._fire(epoch))

    def _fire(self, epoch: int | None = None) -> None:
        if not self._running:
            return
        if epoch is not None and epoch != self._epoch:
            return  # stale timer from a previous start(); do not double-arm
        try:
            self.tick()
        except Exception as exc:  # noqa: BLE001 - trigger must not die
            self.errors += 1
            self.last_error = exc
        finally:
            if self._running and (epoch is None or epoch == self._epoch):
                self._schedule()

    # -- one rebalance round ----------------------------------------------

    def tick(self) -> list[tuple[str, int]]:
        """Plan from live metrics and apply; returns the moves made."""
        self.ticks += 1
        moves = self.rebalancer.plan_from_metrics(
            list(self.sessions()), queue_weight=self.queue_weight
        )
        if len(moves) < self.min_moves:
            moves = []  # not worth paying migration cost this round
        self.last_plan = list(moves)
        if moves:
            self.moves_applied += self.rebalancer.apply(
                moves,
                capture=self.capture,
                restore=self.restore,
                timeout=self.timeout,
            )
        return moves

    def stats(self) -> dict[str, Any]:
        return {
            "running": self._running,
            "interval": self.interval,
            "ticks": self.ticks,
            "moves_applied": self.moves_applied,
            "errors": self.errors,
            "last_plan": list(self.last_plan),
        }
