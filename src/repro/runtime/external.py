"""State externalization protocol (PR 5).

Every mutable-state surface in the middleware — state manager,
synthesis interpreter, controller layer, broker layer, circuit
breakers — implements the same two-method contract so a whole session
can be captured as a JSON-serializable document and restored
byte-for-byte elsewhere:

``externalize() -> dict``
    Return a deterministic, JSON-serializable snapshot of the
    component's mutable state.  Deterministic means: same logical
    state, same document — dict key order is insertion order and
    collections are emitted in a stable order, so two captures of an
    identical session compare equal.

``restore_external(doc) -> None``
    Apply a previously externalized document onto this (compatible)
    instance.  Restore is *quiet*: it must not fire watchers, emit
    signals, or otherwise re-run side effects that already happened in
    the source session — the external world has already seen them.

The documents compose: a :class:`~repro.middleware.snapshot.SessionSnapshot`
is just the per-layer documents stitched under a versioned envelope
(see ``modeling/serialize.py``).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["ExternalizeError", "StateExternalizer"]


class ExternalizeError(Exception):
    """Raised when a state document cannot be captured or applied."""


@runtime_checkable
class StateExternalizer(Protocol):
    """Contract for components whose mutable state can be shipped."""

    def externalize(self) -> dict[str, Any]:
        """Capture mutable state as a JSON-serializable document."""
        ...

    def restore_external(self, doc: dict[str, Any]) -> None:
        """Apply a captured document onto this instance, quietly."""
        ...
