"""Component factory: middleware-model metadata -> live components.

Paper Sec. V-A: the generic runtime environment "generates and executes
the appropriate middleware components defined in the model ... with a
component factory that generates each middleware component based on
code templates that are parameterized with metadata from the middleware
model."

The factory resolves each model element's *template name* through a
:class:`~repro.runtime.registry.TypeRegistry`, renders any textual
parameter templates against the element's metadata, instantiates the
component, configures it, and wires its ports.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.modeling.model import MObject
from repro.modeling.templates import render
from repro.runtime.clock import Clock, WallClock
from repro.runtime.component import Component
from repro.runtime.events import EventBus
from repro.runtime.registry import Registry, RegistryError, TypeRegistry

__all__ = ["FactoryError", "ComponentSpec", "ComponentFactory"]


class FactoryError(Exception):
    """Raised when a model element cannot be realized as a component."""


class ComponentSpec:
    """A realizable component description extracted from a model element.

    Attributes:
        name: unique instance name.
        template: template name resolved via the type registry.
        parameters: configuration metadata (template-rendered strings).
        wiring: port name -> component name to connect after creation.
    """

    def __init__(
        self,
        name: str,
        template: str,
        *,
        parameters: Mapping[str, Any] | None = None,
        wiring: Mapping[str, str] | None = None,
    ) -> None:
        if not name:
            raise FactoryError("component spec requires a name")
        if not template:
            raise FactoryError(f"component spec {name!r} requires a template")
        self.name = name
        self.template = template
        self.parameters = dict(parameters or {})
        self.wiring = dict(wiring or {})

    @classmethod
    def from_model(cls, element: MObject) -> "ComponentSpec":
        """Build a spec from a middleware-model ``ComponentDef`` element.

        The element must offer ``name`` and ``template`` attributes; an
        optional many-valued ``parameters`` containment of ``Parameter``
        (key/value) elements and ``wires`` of ``Wire`` (port/target).
        """
        name = element.get("name")
        template = element.get("template")
        if not name or not template:
            raise FactoryError(
                f"model element {element!r} lacks name/template attributes"
            )
        parameters: dict[str, Any] = {}
        if element.meta.find_feature("parameters") is not None:
            for param in element.get("parameters"):
                parameters[param.get("key")] = param.get("value")
        wiring: dict[str, str] = {}
        if element.meta.find_feature("wires") is not None:
            for wire in element.get("wires"):
                wiring[wire.get("port")] = wire.get("target")
        return cls(name, template, parameters=parameters, wiring=wiring)

    def __repr__(self) -> str:
        return f"ComponentSpec({self.name!r} <- {self.template!r})"


class ComponentFactory:
    """Creates, configures and wires components from specs.

    The factory renders every string parameter as a template against
    the provided ``context`` plus the spec's own parameters, so model
    metadata can reference deployment-time values, e.g.
    ``endpoint = "node-${node_id}"``.
    """

    def __init__(
        self,
        types: TypeRegistry,
        *,
        registry: Registry | None = None,
        bus: EventBus | None = None,
        clock: Clock | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> None:
        self.types = types
        self.registry = registry if registry is not None else Registry()
        self.bus = bus or EventBus()
        self.clock = clock or WallClock()
        self.context = dict(context or {})

    def realize(self, spec: ComponentSpec) -> Component:
        """Instantiate and configure (but not start) one component."""
        try:
            component = self.types.create(
                spec.template, spec.name, bus=self.bus, clock=self.clock
            )
        except RegistryError as exc:
            raise FactoryError(str(exc)) from exc
        metadata = self._render_parameters(spec.parameters)
        metadata.setdefault("template", spec.template)
        component.configure(metadata)
        self.registry.register(component)
        return component

    def realize_all(self, specs: list[ComponentSpec]) -> list[Component]:
        """Realize a set of specs, then wire all ports, then return them.

        Wiring happens after all components exist so specs may reference
        each other in any order; dangling wire targets raise.
        """
        components = [self.realize(spec) for spec in specs]
        for spec, component in zip(specs, components):
            for port, target_name in spec.wiring.items():
                target = self.registry.lookup_or_none(target_name)
                if target is None:
                    raise FactoryError(
                        f"component {spec.name!r}: wire {port!r} -> unknown "
                        f"component {target_name!r}"
                    )
                component.wire(port, target)
        return components

    def realize_model(self, elements: list[MObject]) -> list[Component]:
        return self.realize_all([ComponentSpec.from_model(e) for e in elements])

    def start_all(self) -> None:
        self.registry.start_all()

    def stop_all(self) -> None:
        self.registry.stop_all()

    def _render_parameters(self, parameters: Mapping[str, Any]) -> dict[str, Any]:
        env = dict(self.context)
        env.update(parameters)
        rendered: dict[str, Any] = {}
        for key, value in parameters.items():
            if isinstance(value, str) and ("${" in value or "%" in value):
                rendered[key] = render(value, env)
            else:
                rendered[key] = value
        return rendered
