"""Named registries for components and component types.

:class:`Registry` is the runtime's service locator: components register
under unique names and can look one another up without hard wiring.
:class:`TypeRegistry` maps *template names* (strings appearing in
middleware models) to Python component classes; the component factory
resolves through it, which is how model metadata chooses
implementations without importing them.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Type

from repro.runtime.component import Component, ComponentError

__all__ = ["RegistryError", "Registry", "TypeRegistry"]


class RegistryError(Exception):
    """Raised on duplicate registrations or failed lookups."""


class Registry:
    """A flat namespace of live component instances."""

    def __init__(self, *, name: str = "registry") -> None:
        self.name = name
        self._components: dict[str, Component] = {}

    def register(self, component: Component) -> Component:
        if component.name in self._components:
            raise RegistryError(
                f"registry {self.name!r}: duplicate component {component.name!r}"
            )
        self._components[component.name] = component
        component.registry = self
        return component

    def deregister(self, name: str) -> Component:
        component = self._components.pop(name, None)
        if component is None:
            raise RegistryError(f"registry {self.name!r}: no component {name!r}")
        component.registry = None
        return component

    def lookup(self, name: str) -> Component:
        component = self._components.get(name)
        if component is None:
            raise RegistryError(f"registry {self.name!r}: no component {name!r}")
        return component

    def lookup_or_none(self, name: str) -> Component | None:
        return self._components.get(name)

    def by_type(self, component_type: Type[Component]) -> list[Component]:
        return [
            c for c in self._components.values() if isinstance(c, component_type)
        ]

    def start_all(self) -> None:
        for component in self._components.values():
            if not component.running:
                component.start()

    def stop_all(self) -> None:
        """Stop all running components, last-registered first."""
        for component in reversed(list(self._components.values())):
            if component.running:
                component.stop()

    def __contains__(self, name: object) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[Component]:
        return iter(list(self._components.values()))

    def __len__(self) -> int:
        return len(self._components)

    def __repr__(self) -> str:
        return f"Registry({self.name!r}, components={len(self)})"


class TypeRegistry:
    """Maps model-level template names to component classes/factories."""

    def __init__(self) -> None:
        self._types: dict[str, Callable[..., Component]] = {}

    def register(
        self, template_name: str, factory: Callable[..., Component]
    ) -> None:
        if template_name in self._types:
            raise RegistryError(f"duplicate template {template_name!r}")
        self._types[template_name] = factory

    def component_type(
        self, template_name: str
    ) -> Callable[[Callable[..., Component]], Callable[..., Component]]:
        """Decorator form of :meth:`register`."""

        def decorator(factory: Callable[..., Component]) -> Callable[..., Component]:
            self.register(template_name, factory)
            return factory

        return decorator

    def resolve(self, template_name: str) -> Callable[..., Component]:
        factory = self._types.get(template_name)
        if factory is None:
            raise RegistryError(f"unknown component template {template_name!r}")
        return factory

    def create(self, template_name: str, name: str, **kwargs: Any) -> Component:
        component = self.resolve(template_name)(name, **kwargs)
        if not isinstance(component, Component):
            raise RegistryError(
                f"template {template_name!r} produced {type(component).__name__}, "
                f"not a Component"
            )
        return component

    def known_templates(self) -> list[str]:
        return sorted(self._types)

    def __contains__(self, template_name: object) -> bool:
        return template_name in self._types
