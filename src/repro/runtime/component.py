"""Component model: lifecycle, ports, and wiring.

Middleware models are realized as graphs of components (paper Sec. V-A:
"the runtime environment is used to generate and execute the
appropriate middleware components defined in the model").  A
:class:`Component` has a lifecycle (``CREATED → CONFIGURED → STARTED →
STOPPED``), named *ports* for explicit wiring to other components, and
access to the shared :class:`~repro.runtime.events.EventBus` and
:class:`~repro.runtime.clock.Clock`.
"""

from __future__ import annotations

from typing import Any, Mapping, TYPE_CHECKING

from repro.runtime.clock import Clock, WallClock
from repro.runtime.events import EventBus
from repro.runtime.metrics import MetricsRegistry, default_registry

if TYPE_CHECKING:
    from repro.runtime.registry import Registry

__all__ = ["ComponentError", "LifecycleState", "Component"]


class ComponentError(Exception):
    """Raised on lifecycle violations or bad wiring."""


class LifecycleState:
    CREATED = "created"
    CONFIGURED = "configured"
    STARTED = "started"
    STOPPED = "stopped"

    _TRANSITIONS = {
        CREATED: {CONFIGURED},
        CONFIGURED: {STARTED},
        STARTED: {STOPPED},
        STOPPED: {STARTED},  # restart allowed
    }

    @classmethod
    def check(cls, current: str, target: str) -> None:
        if target not in cls._TRANSITIONS.get(current, set()):
            raise ComponentError(
                f"illegal lifecycle transition {current!r} -> {target!r}"
            )


class Component:
    """Base class for all generated and handwritten middleware components.

    Subclasses override ``on_configure``, ``on_start``, ``on_stop``.
    Configuration arrives as a metadata mapping extracted from the
    middleware model by the component factory.
    """

    #: Port names this component requires before it can start.
    required_ports: tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        *,
        bus: EventBus | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.name = name
        self.clock = clock or WallClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.bus = bus or EventBus(
            name=f"{name}.bus", clock=self.clock, metrics=self.metrics
        )
        self.lifecycle = LifecycleState.CREATED
        self.metadata: dict[str, Any] = {}
        self._ports: dict[str, Any] = {}
        self.registry: "Registry | None" = None

    # -- lifecycle -------------------------------------------------------

    def configure(self, metadata: Mapping[str, Any] | None = None) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.CONFIGURED)
        self.metadata = dict(metadata or {})
        self.on_configure()
        self.lifecycle = LifecycleState.CONFIGURED
        return self

    def start(self) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.STARTED)
        missing = [p for p in self.required_ports if p not in self._ports]
        if missing:
            raise ComponentError(
                f"component {self.name!r} cannot start: unwired ports {missing!r}"
            )
        self.on_start()
        self.lifecycle = LifecycleState.STARTED
        return self

    def stop(self) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.STOPPED)
        self.on_stop()
        self.lifecycle = LifecycleState.STOPPED
        return self

    @property
    def running(self) -> bool:
        return self.lifecycle == LifecycleState.STARTED

    def require_running(self) -> None:
        if not self.running:
            raise ComponentError(f"component {self.name!r} is not started")

    # -- hooks -------------------------------------------------------------

    def on_configure(self) -> None:
        """Subclass hook: interpret ``self.metadata``."""

    def on_start(self) -> None:
        """Subclass hook: acquire resources, subscribe to topics."""

    def on_stop(self) -> None:
        """Subclass hook: release resources."""

    # -- ports ---------------------------------------------------------------

    def wire(self, port: str, target: Any) -> "Component":
        """Connect ``port`` to ``target`` (usually another component)."""
        if self.lifecycle == LifecycleState.STARTED:
            raise ComponentError(
                f"component {self.name!r}: cannot rewire port {port!r} while running"
            )
        self._ports[port] = target
        return self

    def port(self, name: str) -> Any:
        if name not in self._ports:
            raise ComponentError(f"component {self.name!r}: port {name!r} unwired")
        return self._ports[name]

    def port_or_none(self, name: str) -> Any:
        return self._ports.get(name)

    @property
    def ports(self) -> dict[str, Any]:
        return dict(self._ports)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.lifecycle}>"
