"""Component model: lifecycle, ports, and wiring.

Middleware models are realized as graphs of components (paper Sec. V-A:
"the runtime environment is used to generate and execute the
appropriate middleware components defined in the model").  A
:class:`Component` has a lifecycle (``CREATED → CONFIGURED → STARTED →
STOPPED``), named *ports* for explicit wiring to other components, and
access to the shared :class:`~repro.runtime.events.EventBus` and
:class:`~repro.runtime.clock.Clock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING

from repro.runtime.clock import Clock, WallClock
from repro.runtime.events import EventBus
from repro.runtime.metrics import MetricsRegistry, default_registry

if TYPE_CHECKING:
    from repro.runtime.registry import Registry

__all__ = ["ComponentError", "LifecycleState", "Component", "Supervisor"]


class ComponentError(Exception):
    """Raised on lifecycle violations or bad wiring."""


class LifecycleState:
    CREATED = "created"
    CONFIGURED = "configured"
    STARTED = "started"
    STOPPED = "stopped"

    _TRANSITIONS = {
        CREATED: {CONFIGURED},
        CONFIGURED: {STARTED},
        STARTED: {STOPPED},
        STOPPED: {STARTED},  # restart allowed
    }

    @classmethod
    def check(cls, current: str, target: str) -> None:
        if target not in cls._TRANSITIONS.get(current, set()):
            raise ComponentError(
                f"illegal lifecycle transition {current!r} -> {target!r}"
            )


class Component:
    """Base class for all generated and handwritten middleware components.

    Subclasses override ``on_configure``, ``on_start``, ``on_stop``.
    Configuration arrives as a metadata mapping extracted from the
    middleware model by the component factory.
    """

    #: Port names this component requires before it can start.
    required_ports: tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        *,
        bus: EventBus | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.name = name
        self.clock = clock or WallClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.bus = bus or EventBus(
            name=f"{name}.bus", clock=self.clock, metrics=self.metrics
        )
        self.lifecycle = LifecycleState.CREATED
        self.metadata: dict[str, Any] = {}
        self._ports: dict[str, Any] = {}
        self.registry: "Registry | None" = None

    # -- lifecycle -------------------------------------------------------

    def configure(self, metadata: Mapping[str, Any] | None = None) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.CONFIGURED)
        self.metadata = dict(metadata or {})
        self.on_configure()
        self.lifecycle = LifecycleState.CONFIGURED
        return self

    def start(self) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.STARTED)
        missing = [p for p in self.required_ports if p not in self._ports]
        if missing:
            raise ComponentError(
                f"component {self.name!r} cannot start: unwired ports {missing!r}"
            )
        self.on_start()
        self.lifecycle = LifecycleState.STARTED
        return self

    def stop(self) -> "Component":
        LifecycleState.check(self.lifecycle, LifecycleState.STOPPED)
        self.on_stop()
        self.lifecycle = LifecycleState.STOPPED
        return self

    @property
    def running(self) -> bool:
        return self.lifecycle == LifecycleState.STARTED

    def require_running(self) -> None:
        if not self.running:
            raise ComponentError(f"component {self.name!r} is not started")

    # -- hooks -------------------------------------------------------------

    def on_configure(self) -> None:
        """Subclass hook: interpret ``self.metadata``."""

    def on_start(self) -> None:
        """Subclass hook: acquire resources, subscribe to topics."""

    def on_stop(self) -> None:
        """Subclass hook: release resources."""

    # -- ports ---------------------------------------------------------------

    def wire(self, port: str, target: Any) -> "Component":
        """Connect ``port`` to ``target`` (usually another component)."""
        if self.lifecycle == LifecycleState.STARTED:
            raise ComponentError(
                f"component {self.name!r}: cannot rewire port {port!r} while running"
            )
        self._ports[port] = target
        return self

    def port(self, name: str) -> Any:
        if name not in self._ports:
            raise ComponentError(f"component {self.name!r}: port {name!r} unwired")
        return self._ports[name]

    def port_or_none(self, name: str) -> Any:
        return self._ports.get(name)

    @property
    def ports(self) -> dict[str, Any]:
        return dict(self._ports)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.lifecycle}>"


# -- supervision -----------------------------------------------------------


@dataclass
class _SupervisionEntry:
    component: Component
    restarts: int = 0
    last_crash: float = field(default=float("-inf"))
    gave_up: bool = False


class Supervisor:
    """Restarts crashed components with exponential backoff.

    A crash is *reported* (:meth:`report_crash`) by whatever detects
    it — a mailbox error handler, a layer catching an escaped
    exception — and the supervisor schedules a restart after
    ``base_delay * multiplier**n`` seconds (capped at ``max_delay``),
    where ``n`` counts crashes inside the current instability episode.
    ``reset_after`` seconds without a crash close the episode and
    restore the full restart budget; ``max_restarts`` crashes within
    one episode make the supervisor give up on the component.

    Scheduling uses the clock's timer queue when it has one
    (:class:`~repro.runtime.clock.VirtualClock`), so deterministic
    tests drive restarts by advancing virtual time; on a wall clock the
    supervisor sleeps the backoff inline.

    Lifecycle events are published on the bus (when one is wired) as
    ``supervisor.<component>.crashed`` / ``restarted`` / ``gave_up``.
    """

    def __init__(
        self,
        *,
        clock: Clock | None = None,
        bus: EventBus | None = None,
        metrics: MetricsRegistry | None = None,
        max_restarts: int = 5,
        base_delay: float = 0.1,
        multiplier: float = 2.0,
        max_delay: float = 30.0,
        reset_after: float = 60.0,
    ) -> None:
        self.clock = clock or WallClock()
        self.bus = bus
        self.metrics = metrics if metrics is not None else default_registry()
        self.max_restarts = max_restarts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.reset_after = reset_after
        self._entries: dict[str, _SupervisionEntry] = {}
        self.restarts = 0
        self.crashes = 0
        #: optional hook fired after every successful restart with the
        #: restarted component — checkpoint/recovery machinery (PR 5)
        #: uses it to re-apply the last session snapshot so the
        #: component resumes warm instead of cold.
        self.on_restarted: "Any | None" = None

    # -- registration ------------------------------------------------------

    def watch(self, component: Component) -> Component:
        """Place a component under supervision."""
        self._entries[component.name] = _SupervisionEntry(component)
        return component

    def entry(self, name: str) -> _SupervisionEntry | None:
        return self._entries.get(name)

    def guard(self, component: Component):
        """An error callback (``exc -> None``) reporting crashes of
        ``component`` — plugs straight into ``Mailbox(on_error=...)``."""
        self.watch(component)
        return lambda exc: self.report_crash(component.name, exc)

    # -- crash handling ----------------------------------------------------

    def report_crash(self, name: str, error: BaseException) -> bool:
        """Handle a crash; returns True when a restart was scheduled."""
        entry = self._entries.get(name)
        if entry is None:
            raise ComponentError(f"component {name!r} is not supervised")
        now = self.clock.now()
        if now - entry.last_crash > self.reset_after:
            entry.restarts = 0          # quiet period: budget restored
            entry.gave_up = False
        entry.last_crash = now
        self.crashes += 1
        self.metrics.count("supervisor.crashes", name)
        self._emit(name, "crashed", error=str(error))
        if entry.restarts >= self.max_restarts:
            entry.gave_up = True
            self.metrics.count("supervisor.gave_up", name)
            self._emit(name, "gave_up", restarts=entry.restarts)
            return False
        delay = min(
            self.base_delay * self.multiplier ** entry.restarts, self.max_delay
        )
        entry.restarts += 1
        schedule = getattr(self.clock, "call_later", None)
        if callable(schedule):
            schedule(delay, lambda: self._restart(entry, delay))
        else:
            self.clock.sleep(delay)
            self._restart(entry, delay)
        return True

    def _restart(self, entry: _SupervisionEntry, delay: float) -> None:
        component = entry.component
        try:
            if component.lifecycle == LifecycleState.STARTED:
                component.stop()
            component.start()
        except Exception as exc:  # noqa: BLE001 - crash during restart
            self.report_crash(component.name, exc)
            return
        self.restarts += 1
        self.metrics.count("supervisor.restarts", component.name)
        if self.on_restarted is not None:
            try:
                self.on_restarted(component)
            except Exception as exc:  # noqa: BLE001 - recovery must not crash
                self.metrics.count("supervisor.recovery_errors", component.name)
                self._emit(component.name, "recovery_failed", error=str(exc))
        self._emit(
            component.name, "restarted",
            restarts=entry.restarts, delay=delay,
        )

    def _emit(self, name: str, what: str, **payload: Any) -> None:
        if self.bus is None:
            return
        from repro.runtime.events import Event

        merged = dict(payload)
        merged.setdefault("component", name)
        self.bus.publish(
            Event(topic=f"supervisor.{name}.{what}", payload=merged,
                  origin="supervisor")
        )

    def stats(self) -> dict[str, Any]:
        return {
            "watched": len(self._entries),
            "crashes": self.crashes,
            "restarts": self.restarts,
            "gave_up": sorted(
                n for n, e in self._entries.items() if e.gave_up
            ),
        }
